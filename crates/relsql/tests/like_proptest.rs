//! Property test: the SQL LIKE implementation agrees with a simple
//! reference matcher over random patterns and inputs.

use proptest::prelude::*;
use relsql::Database;

/// Reference LIKE matcher (straightforward backtracking over chars).
fn reference_like(pattern: &str, value: &str) -> bool {
    fn rec(p: &[u8], v: &[u8]) -> bool {
        match p.first() {
            None => v.is_empty(),
            Some(b'%') => (0..=v.len()).any(|i| rec(&p[1..], &v[i..])),
            Some(b'_') => !v.is_empty() && rec(&p[1..], &v[1..]),
            Some(c) => {
                v.first().is_some_and(|x| x.eq_ignore_ascii_case(c)) && rec(&p[1..], &v[1..])
            }
        }
    }
    rec(pattern.as_bytes(), value.as_bytes())
}

proptest! {
    #[test]
    fn like_matches_reference(
        values in proptest::collection::vec("[a-c%_]{0,8}", 1..12),
        pattern in "[a-c%_]{0,6}",
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, s TEXT)").unwrap();
        for (i, v) in values.iter().enumerate() {
            db.execute(&format!("INSERT INTO t VALUES ({i}, '{v}')")).unwrap();
        }
        let r = db
            .execute(&format!("SELECT id FROM t WHERE s LIKE '{pattern}'"))
            .unwrap();
        let got: Vec<i64> = r
            .rows
            .iter()
            .map(|row| row[0].as_number().unwrap() as i64)
            .collect();
        let expected: Vec<i64> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| reference_like(&pattern, v))
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(&got, &expected);
        // NOT LIKE is the exact complement.
        let r = db
            .execute(&format!("SELECT COUNT(*) FROM t WHERE s NOT LIKE '{pattern}'"))
            .unwrap();
        let n_not = r.rows[0][0].as_number().unwrap() as usize;
        prop_assert_eq!(n_not, values.len() - expected.len());
    }
}
