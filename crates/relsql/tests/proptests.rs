//! Property-based tests for the relational engine.

use proptest::prelude::*;
use relsql::{Database, SqlValue};

fn setup(rows: &[(i64, f64, String)]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE m (id INT PRIMARY KEY, v REAL, tag TEXT)")
        .unwrap();
    for (id, v, tag) in rows {
        let tag = tag.replace('\'', "''");
        db.execute(&format!("INSERT INTO m VALUES ({id}, {v}, '{tag}')"))
            .unwrap();
    }
    db
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, f64, String)>> {
    proptest::collection::vec(
        (
            0i64..1000,
            -100.0f64..100.0,
            "[a-z]{1,5}".prop_map(String::from),
        ),
        0..30,
    )
    .prop_map(|mut v| {
        // Unique ids (primary key).
        v.sort_by_key(|r| r.0);
        v.dedup_by_key(|r| r.0);
        v
    })
}

proptest! {
    /// An indexed point query returns the same rows as an unindexed scan
    /// of an equivalent predicate.
    #[test]
    fn index_equals_scan(rows in arb_rows(), probe in 0i64..1000) {
        let mut db = setup(&rows);
        let indexed = db
            .execute(&format!("SELECT * FROM m WHERE id = {probe}"))
            .unwrap();
        // Force a scan with a tautological extra disjunct that the probe
        // can't use.
        let scanned = db
            .execute(&format!("SELECT * FROM m WHERE id <= {probe} AND id >= {probe}"))
            .unwrap();
        prop_assert_eq!(indexed.rows.clone(), scanned.rows);
        prop_assert!(indexed.used_index || rows.is_empty());
    }

    /// COUNT(*) equals the number of rows SELECT * returns, for a variety
    /// of predicates.
    #[test]
    fn count_matches_select(rows in arb_rows(), threshold in -100.0f64..100.0) {
        let mut db = setup(&rows);
        let pred = format!("v >= {threshold}");
        let count = db
            .execute(&format!("SELECT COUNT(*) FROM m WHERE {pred}"))
            .unwrap();
        let select = db
            .execute(&format!("SELECT * FROM m WHERE {pred}"))
            .unwrap();
        prop_assert_eq!(
            count.rows[0][0].clone(),
            SqlValue::Int(select.rows.len() as i64)
        );
    }

    /// ORDER BY really sorts; LIMIT truncates to a prefix of the sort.
    #[test]
    fn order_by_sorts(rows in arb_rows(), limit in 0usize..10) {
        let mut db = setup(&rows);
        let all = db.execute("SELECT v FROM m ORDER BY v").unwrap();
        let vals: Vec<f64> = all
            .rows
            .iter()
            .map(|r| r[0].as_number().unwrap())
            .collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let lim = db
            .execute(&format!("SELECT v FROM m ORDER BY v LIMIT {limit}"))
            .unwrap();
        prop_assert_eq!(lim.rows.len(), limit.min(vals.len()));
        for (a, b) in lim.rows.iter().zip(all.rows.iter()) {
            prop_assert_eq!(a.clone(), b.clone());
        }
    }

    /// DELETE removes exactly the rows the same predicate selects, and the
    /// table shrinks accordingly.
    #[test]
    fn delete_complements_select(rows in arb_rows(), threshold in -100.0f64..100.0) {
        let mut db = setup(&rows);
        let selected = db
            .execute(&format!("SELECT COUNT(*) FROM m WHERE v < {threshold}"))
            .unwrap();
        let n_sel = match selected.rows[0][0] {
            SqlValue::Int(n) => n as usize,
            _ => unreachable!(),
        };
        let deleted = db
            .execute(&format!("DELETE FROM m WHERE v < {threshold}"))
            .unwrap();
        prop_assert_eq!(deleted.affected, n_sel);
        let remaining = db.execute("SELECT COUNT(*) FROM m").unwrap();
        prop_assert_eq!(
            remaining.rows[0][0].clone(),
            SqlValue::Int((rows.len() - n_sel) as i64)
        );
        // No survivor matches the predicate.
        let still = db
            .execute(&format!("SELECT COUNT(*) FROM m WHERE v < {threshold}"))
            .unwrap();
        prop_assert_eq!(still.rows[0][0].clone(), SqlValue::Int(0));
    }

    /// UPDATE touches exactly the matching rows.
    #[test]
    fn update_affects_matches(rows in arb_rows(), lo in 0i64..500) {
        let mut db = setup(&rows);
        let n = db
            .execute(&format!("UPDATE m SET tag = 'hit' WHERE id >= {lo}"))
            .unwrap()
            .affected;
        let hits = db
            .execute("SELECT COUNT(*) FROM m WHERE tag = 'hit'")
            .unwrap();
        prop_assert_eq!(hits.rows[0][0].clone(), SqlValue::Int(n as i64));
    }
}
