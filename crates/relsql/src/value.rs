//! SQL values.

use std::cmp::Ordering;
use std::fmt;

/// A SQL runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    Null,
    Int(i64),
    Real(f64),
    Text(String),
}

impl SqlValue {
    pub fn type_name(&self) -> &'static str {
        match self {
            SqlValue::Null => "NULL",
            SqlValue::Int(_) => "INT",
            SqlValue::Real(_) => "REAL",
            SqlValue::Text(_) => "TEXT",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    pub fn as_number(&self) -> Option<f64> {
        match self {
            SqlValue::Int(i) => Some(*i as f64),
            SqlValue::Real(r) => Some(*r),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            SqlValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison semantics: NULL compares as unknown (`None`);
    /// numbers compare across INT/REAL; strings compare with strings.
    /// Cross-type comparisons are `None` (treated as no match).
    pub fn compare(&self, other: &SqlValue) -> Option<Ordering> {
        match (self, other) {
            (SqlValue::Null, _) | (_, SqlValue::Null) => None,
            (SqlValue::Text(a), SqlValue::Text(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_number()?, other.as_number()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Key form for indexing/sorting: a total order (NULL first, then
    /// numbers, then text).
    pub fn sort_key(&self) -> SortKey<'_> {
        match self {
            SqlValue::Null => SortKey::Null,
            SqlValue::Int(i) => SortKey::Num(*i as f64),
            SqlValue::Real(r) => SortKey::Num(*r),
            SqlValue::Text(s) => SortKey::Text(s),
        }
    }

    /// Estimated size on the wire (textual form), counted through a
    /// length-only `fmt::Write` — wire accounting runs per value per
    /// message, and must not allocate the rendering it measures.
    pub fn wire_size(&self) -> u64 {
        struct Counter(u64);
        impl fmt::Write for Counter {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                self.0 += s.len() as u64;
                Ok(())
            }
        }
        let mut c = Counter(0);
        let _ = fmt::Write::write_fmt(&mut c, format_args!("{self}"));
        c.0
    }
}

/// Totally ordered key view of a value.
#[derive(Debug, PartialEq)]
pub enum SortKey<'a> {
    Null,
    Num(f64),
    Text(&'a str),
}

impl PartialOrd for SortKey<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.total_cmp(other))
    }
}

impl SortKey<'_> {
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        use SortKey::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Num(a), Num(b)) => a.total_cmp(b),
            (Num(_), Text(_)) => Ordering::Less,
            (Text(_), Num(_)) => Ordering::Greater,
            (Text(a), Text(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => write!(f, "NULL"),
            SqlValue::Int(i) => write!(f, "{i}"),
            SqlValue::Real(r) => {
                if r.fract() == 0.0 && r.abs() < 1e15 {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
            SqlValue::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons() {
        assert_eq!(
            SqlValue::Int(2).compare(&SqlValue::Real(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            SqlValue::Int(1).compare(&SqlValue::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            SqlValue::Text("a".into()).compare(&SqlValue::Text("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(SqlValue::Null.compare(&SqlValue::Int(1)), None);
        assert_eq!(SqlValue::Text("1".into()).compare(&SqlValue::Int(1)), None);
    }

    #[test]
    fn sort_key_total_order() {
        let vals = [
            SqlValue::Null,
            SqlValue::Int(1),
            SqlValue::Real(2.5),
            SqlValue::Text("x".into()),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                let ord = a.sort_key().total_cmp(&b.sort_key());
                if i == j {
                    assert_eq!(ord, Ordering::Equal);
                }
            }
        }
        assert_eq!(
            SqlValue::Null
                .sort_key()
                .total_cmp(&SqlValue::Int(0).sort_key()),
            Ordering::Less
        );
        assert_eq!(
            SqlValue::Int(9)
                .sort_key()
                .total_cmp(&SqlValue::Text("a".into()).sort_key()),
            Ordering::Less
        );
    }

    #[test]
    fn display_and_quote_escaping() {
        assert_eq!(SqlValue::Int(5).to_string(), "5");
        assert_eq!(SqlValue::Real(3.0).to_string(), "3.0");
        assert_eq!(SqlValue::Text("o'brien".into()).to_string(), "'o''brien'");
        assert_eq!(SqlValue::Null.to_string(), "NULL");
    }

    #[test]
    fn accessors() {
        assert!(SqlValue::Null.is_null());
        assert_eq!(SqlValue::Int(3).as_number(), Some(3.0));
        assert_eq!(SqlValue::Text("t".into()).as_text(), Some("t"));
        assert_eq!(SqlValue::Int(3).as_text(), None);
        assert!(SqlValue::Real(1.0).wire_size() > 0);
    }
}
