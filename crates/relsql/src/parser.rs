//! SQL parser for the supported subset.
//!
//! ```text
//! stmt   := create | insert | select | update | delete | drop
//! create := CREATE TABLE name '(' coldef (',' coldef)* ')'
//! coldef := name type [PRIMARY KEY]
//! insert := INSERT INTO name ['(' cols ')'] VALUES '(' literals ')'
//! select := SELECT ('*' | COUNT '(' '*' ')' | cols) FROM name
//!           [WHERE pred] [ORDER BY col [ASC|DESC]] [LIMIT n]
//! update := UPDATE name SET col '=' lit (',' col '=' lit)* [WHERE pred]
//! delete := DELETE FROM name [WHERE pred]
//! drop   := DROP TABLE name
//! pred   := conj (OR conj)*
//! conj   := unit (AND unit)*
//! unit   := NOT unit | '(' pred ')' | col [NOT] LIKE 'pat' | col IS [NOT] NULL
//!         | operand cmp operand
//! ```

use crate::ast::{CmpOp, Operand, OrderBy, Pred, SelectCols, Stmt};
use crate::lexer::{lex_sql, SqlLexError, Tok};
use crate::table::{ColType, Column};
use crate::value::SqlValue;
use std::fmt;

/// Parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlParseError(pub String);

impl fmt::Display for SqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error: {}", self.0)
    }
}

impl std::error::Error for SqlParseError {}

impl From<SqlLexError> for SqlParseError {
    fn from(e: SqlLexError) -> Self {
        SqlParseError(e.to_string())
    }
}

/// Parse one statement.
pub fn parse_stmt(sql: &str) -> Result<Stmt, SqlParseError> {
    let toks = lex_sql(sql)?;
    let mut p = P { toks, pos: 0 };
    let stmt = p.stmt()?;
    if p.pos != p.toks.len() {
        return Err(SqlParseError(format!(
            "trailing tokens starting at '{}'",
            p.toks[p.pos]
        )));
    }
    Ok(stmt)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_word(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlParseError(format!(
                "expected {kw}, found {}",
                self.peek().map_or("end".into(), |t| t.to_string())
            )))
        }
    }

    fn eat_tok(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, t: &Tok) -> Result<(), SqlParseError> {
        if self.eat_tok(t) {
            Ok(())
        } else {
            Err(SqlParseError(format!(
                "expected '{t}', found {}",
                self.peek().map_or("end".into(), |x| x.to_string())
            )))
        }
    }

    fn ident(&mut self) -> Result<String, SqlParseError> {
        match self.bump() {
            Some(Tok::Word(w)) => Ok(w.to_ascii_lowercase()),
            other => Err(SqlParseError(format!(
                "expected identifier, found {}",
                other.map_or("end".into(), |t| t.to_string())
            ))),
        }
    }

    fn literal(&mut self) -> Result<SqlValue, SqlParseError> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(SqlValue::Int(i)),
            Some(Tok::Real(r)) => Ok(SqlValue::Real(r)),
            Some(Tok::Str(s)) => Ok(SqlValue::Text(s)),
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("null") => Ok(SqlValue::Null),
            other => Err(SqlParseError(format!(
                "expected literal, found {}",
                other.map_or("end".into(), |t| t.to_string())
            ))),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, SqlParseError> {
        if self.eat_kw("CREATE") {
            return self.create();
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("SELECT") {
            return self.select();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            return Ok(Stmt::DropTable { name });
        }
        Err(SqlParseError(format!(
            "unknown statement start: {}",
            self.peek().map_or("end".into(), |t| t.to_string())
        )))
    }

    fn create(&mut self) -> Result<Stmt, SqlParseError> {
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        self.expect_tok(&Tok::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = None;
        loop {
            let cname = self.ident()?;
            let ty = match self.ident()?.as_str() {
                "int" | "integer" | "bigint" => ColType::Int,
                "real" | "float" | "double" => ColType::Real,
                "text" | "varchar" | "char" | "string" => ColType::Text,
                other => return Err(SqlParseError(format!("unknown column type {other:?}"))),
            };
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                if primary_key.is_some() {
                    return Err(SqlParseError("multiple primary keys".into()));
                }
                primary_key = Some(columns.len());
            }
            columns.push(Column {
                name: gintern::intern(&cname),
                ty,
            });
            if self.eat_tok(&Tok::RParen) {
                break;
            }
            self.expect_tok(&Tok::Comma)?;
        }
        Ok(Stmt::CreateTable {
            name,
            columns,
            primary_key,
        })
    }

    fn insert(&mut self) -> Result<Stmt, SqlParseError> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat_tok(&Tok::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if self.eat_tok(&Tok::RParen) {
                    break;
                }
                self.expect_tok(&Tok::Comma)?;
            }
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        self.expect_tok(&Tok::LParen)?;
        let mut values = Vec::new();
        loop {
            values.push(self.literal()?);
            if self.eat_tok(&Tok::RParen) {
                break;
            }
            self.expect_tok(&Tok::Comma)?;
        }
        Ok(Stmt::Insert {
            table,
            columns,
            values,
        })
    }

    fn select(&mut self) -> Result<Stmt, SqlParseError> {
        let cols = if self.eat_tok(&Tok::Star) {
            SelectCols::Star
        } else if self.peek().is_some_and(|t| t.is_word("COUNT")) {
            self.pos += 1;
            self.expect_tok(&Tok::LParen)?;
            self.expect_tok(&Tok::Star)?;
            self.expect_tok(&Tok::RParen)?;
            SelectCols::CountStar
        } else {
            let mut cols = vec![self.ident()?];
            while self.eat_tok(&Tok::Comma) {
                cols.push(self.ident()?);
            }
            SelectCols::Columns(cols)
        };
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_ = if self.eat_kw("WHERE") {
            Some(self.pred()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let column = self.ident()?;
            let desc = if self.eat_kw("DESC") {
                true
            } else {
                let _ = self.eat_kw("ASC");
                false
            };
            Some(OrderBy { column, desc })
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                Some(Tok::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlParseError(format!(
                        "expected LIMIT count, found {}",
                        other.map_or("end".into(), |t| t.to_string())
                    )))
                }
            }
        } else {
            None
        };
        Ok(Stmt::Select {
            cols,
            table,
            where_,
            order_by,
            limit,
        })
    }

    fn update(&mut self) -> Result<Stmt, SqlParseError> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_tok(&Tok::Eq)?;
            let v = self.literal()?;
            sets.push((col, v));
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        let where_ = if self.eat_kw("WHERE") {
            Some(self.pred()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            where_,
        })
    }

    fn delete(&mut self) -> Result<Stmt, SqlParseError> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_ = if self.eat_kw("WHERE") {
            Some(self.pred()?)
        } else {
            None
        };
        Ok(Stmt::Delete { table, where_ })
    }

    fn pred(&mut self) -> Result<Pred, SqlParseError> {
        let mut lhs = self.conj()?;
        while self.eat_kw("OR") {
            let rhs = self.conj()?;
            lhs = Pred::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn conj(&mut self) -> Result<Pred, SqlParseError> {
        let mut lhs = self.unit()?;
        while self.eat_kw("AND") {
            let rhs = self.unit()?;
            lhs = Pred::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unit(&mut self) -> Result<Pred, SqlParseError> {
        if self.eat_kw("NOT") {
            return Ok(Pred::Not(Box::new(self.unit()?)));
        }
        if self.eat_tok(&Tok::LParen) {
            let p = self.pred()?;
            self.expect_tok(&Tok::RParen)?;
            return Ok(p);
        }
        let lhs = self.operand()?;
        // [NOT] LIKE only applies to columns.
        let negated_like = {
            let save = self.pos;
            if self.eat_kw("NOT") {
                if self.peek().is_some_and(|t| t.is_word("LIKE")) {
                    Some(true)
                } else {
                    self.pos = save;
                    None
                }
            } else if self.peek().is_some_and(|t| t.is_word("LIKE")) {
                Some(false)
            } else {
                None
            }
        };
        if let Some(negated) = negated_like {
            self.expect_kw("LIKE")?;
            let Operand::Column(column) = lhs else {
                return Err(SqlParseError("LIKE requires a column".into()));
            };
            let pattern = match self.bump() {
                Some(Tok::Str(s)) => s,
                other => {
                    return Err(SqlParseError(format!(
                        "LIKE needs a string pattern, found {}",
                        other.map_or("end".into(), |t| t.to_string())
                    )))
                }
            };
            return Ok(Pred::Like {
                column,
                pattern,
                negated,
            });
        }
        // IS [NOT] NULL only applies to columns.
        if self.peek().is_some_and(|t| t.is_word("IS")) {
            let Operand::Column(c) = lhs else {
                return Err(SqlParseError("IS NULL requires a column".into()));
            };
            self.pos += 1;
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                return Ok(Pred::IsNotNull(c));
            }
            self.expect_kw("NULL")?;
            return Ok(Pred::IsNull(c));
        }
        let op = match self.bump() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            other => {
                return Err(SqlParseError(format!(
                    "expected comparison operator, found {}",
                    other.map_or("end".into(), |t| t.to_string())
                )))
            }
        };
        let rhs = self.operand()?;
        Ok(Pred::Cmp(lhs, op, rhs))
    }

    fn operand(&mut self) -> Result<Operand, SqlParseError> {
        match self.peek() {
            Some(Tok::Word(w)) if !w.eq_ignore_ascii_case("null") => {
                let c = self.ident()?;
                Ok(Operand::Column(c))
            }
            _ => Ok(Operand::Lit(self.literal()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create() {
        let s =
            parse_stmt("CREATE TABLE producers (url TEXT PRIMARY KEY, tablename TEXT, host TEXT)")
                .unwrap();
        match s {
            Stmt::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                assert_eq!(name, "producers");
                assert_eq!(columns.len(), 3);
                assert_eq!(primary_key, Some(0));
                assert_eq!(columns[0].ty, ColType::Text);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_insert_positional_and_named() {
        let s = parse_stmt("INSERT INTO t VALUES (1, 'a', 2.5, NULL)").unwrap();
        match s {
            Stmt::Insert {
                columns, values, ..
            } => {
                assert!(columns.is_none());
                assert_eq!(values.len(), 4);
                assert_eq!(values[3], SqlValue::Null);
            }
            _ => panic!(),
        }
        let s = parse_stmt("INSERT INTO t (a, b) VALUES (1, 2)").unwrap();
        match s {
            Stmt::Insert { columns, .. } => {
                assert_eq!(columns, Some(vec!["a".into(), "b".into()]))
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_select_full() {
        let s = parse_stmt(
            "SELECT host, load FROM cpu WHERE (load >= 1.5 OR host = 'lucky3') AND load IS NOT NULL ORDER BY load DESC LIMIT 10",
        )
        .unwrap();
        match s {
            Stmt::Select {
                cols,
                table,
                where_,
                order_by,
                limit,
            } => {
                assert_eq!(
                    cols,
                    SelectCols::Columns(vec!["host".into(), "load".into()])
                );
                assert_eq!(table, "cpu");
                assert!(where_.is_some());
                let ob = order_by.unwrap();
                assert_eq!(ob.column, "load");
                assert!(ob.desc);
                assert_eq!(limit, Some(10));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_count_star() {
        let s = parse_stmt("SELECT COUNT(*) FROM t").unwrap();
        assert!(matches!(
            s,
            Stmt::Select {
                cols: SelectCols::CountStar,
                ..
            }
        ));
    }

    #[test]
    fn parse_update_delete_drop() {
        let s = parse_stmt("UPDATE t SET a = 1, b = 'x' WHERE c < 3").unwrap();
        assert!(matches!(s, Stmt::Update { ref sets, .. } if sets.len() == 2));
        let s = parse_stmt("DELETE FROM t WHERE a = 1").unwrap();
        assert!(matches!(s, Stmt::Delete { .. }));
        let s = parse_stmt("DELETE FROM t").unwrap();
        assert!(matches!(s, Stmt::Delete { where_: None, .. }));
        let s = parse_stmt("DROP TABLE t").unwrap();
        assert!(matches!(s, Stmt::DropTable { .. }));
    }

    #[test]
    fn predicate_precedence_and_not() {
        // a=1 OR b=2 AND c=3  =>  a=1 OR (b=2 AND c=3)
        let s = parse_stmt("SELECT * FROM t WHERE a=1 OR b=2 AND c=3").unwrap();
        let Stmt::Select {
            where_: Some(p), ..
        } = s
        else {
            panic!()
        };
        assert!(matches!(p, Pred::Or(_, ref rhs) if matches!(**rhs, Pred::And(_, _))));
        let s = parse_stmt("SELECT * FROM t WHERE NOT a = 1").unwrap();
        let Stmt::Select {
            where_: Some(p), ..
        } = s
        else {
            panic!()
        };
        assert!(matches!(p, Pred::Not(_)));
    }

    #[test]
    fn column_to_column_comparison() {
        let s = parse_stmt("SELECT * FROM t WHERE a < b").unwrap();
        let Stmt::Select {
            where_: Some(p), ..
        } = s
        else {
            panic!()
        };
        assert_eq!(
            p,
            Pred::Cmp(
                Operand::Column("a".into()),
                CmpOp::Lt,
                Operand::Column("b".into())
            )
        );
    }

    #[test]
    fn errors() {
        assert!(parse_stmt("SELECT FROM t").is_err());
        assert!(parse_stmt("SELECT * FROM").is_err());
        assert!(parse_stmt("INSERT INTO t VALUES 1").is_err());
        assert!(parse_stmt("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse_stmt("SELECT * FROM t WHERE").is_err());
        assert!(parse_stmt("SELECT * FROM t LIMIT x").is_err());
        assert!(parse_stmt("BOGUS").is_err());
        assert!(parse_stmt("SELECT * FROM t extra").is_err());
        assert!(parse_stmt("CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)").is_err());
    }
}
