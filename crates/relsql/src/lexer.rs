//! SQL tokenizer.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword or identifier, uppercased for keywords check; original kept.
    Word(String),
    Int(i64),
    Real(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Tok {
    pub fn is_word(&self, kw: &str) -> bool {
        matches!(self, Tok::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "{w}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Real(r) => write!(f, "{r}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Star => write!(f, "*"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "<>"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
        }
    }
}

/// Tokenization error.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlLexError(pub String);

impl fmt::Display for SqlLexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL lex error: {}", self.0)
    }
}

impl std::error::Error for SqlLexError {}

/// Tokenize a SQL string.
pub fn lex_sql(input: &str) -> Result<Vec<Tok>, SqlLexError> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '<' => match b.get(i + 1) {
                Some(b'=') => {
                    out.push(Tok::Le);
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Tok::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Tok::Lt);
                    i += 1;
                }
            },
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ne);
                    i += 2;
                } else {
                    return Err(SqlLexError(format!("stray '!' at byte {i}")));
                }
            }
            '\'' => {
                // SQL string with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    match b.get(i) {
                        None => return Err(SqlLexError("unterminated string".into())),
                        Some(b'\'') => {
                            if b.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            let ch = input[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && b.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                let mut is_real = false;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' {
                    is_real = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let mut j = i + 1;
                    if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                        j += 1;
                    }
                    if j < b.len() && b[j].is_ascii_digit() {
                        is_real = true;
                        i = j;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_real {
                    out.push(Tok::Real(
                        text.parse()
                            .map_err(|e| SqlLexError(format!("bad real {text:?}: {e}")))?,
                    ));
                } else {
                    out.push(Tok::Int(
                        text.parse()
                            .map_err(|e| SqlLexError(format!("bad int {text:?}: {e}")))?,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len()
                    && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                out.push(Tok::Word(input[start..i].to_string()));
            }
            _ => {
                return Err(SqlLexError(format!(
                    "unexpected character {c:?} at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_select() {
        let toks = lex_sql("SELECT a, b FROM t WHERE a >= 2.5 AND b <> 'x''y'").unwrap();
        assert!(toks.iter().any(|t| t.is_word("select")));
        assert!(toks.contains(&Tok::Ge));
        assert!(toks.contains(&Tok::Ne));
        assert!(toks.contains(&Tok::Real(2.5)));
        assert!(toks.contains(&Tok::Str("x'y".into())));
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(lex_sql("-5").unwrap(), vec![Tok::Int(-5)]);
        assert_eq!(lex_sql("1e2").unwrap(), vec![Tok::Real(100.0)]);
        assert_eq!(lex_sql("3.25").unwrap(), vec![Tok::Real(3.25)]);
    }

    #[test]
    fn bang_equals() {
        assert_eq!(lex_sql("a != 1").unwrap()[1], Tok::Ne);
        assert!(lex_sql("a ! 1").is_err());
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(lex_sql("'oops").is_err());
        assert!(lex_sql("a $ b").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = lex_sql("select SELECT SeLeCt").unwrap();
        assert!(toks.iter().all(|t| t.is_word("SELECT")));
    }
}
