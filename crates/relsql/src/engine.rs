//! Statement execution.

use crate::ast::{CmpOp, Operand, Pred, SelectCols, Stmt};
use crate::parser::{parse_stmt, SqlParseError};
use crate::table::{Row, SharedRow, Table, TableError, TableSchema};
use crate::value::SqlValue;
use gintern::Sym;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;

/// Execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    Parse(String),
    NoSuchTable(String),
    TableExists(String),
    NoSuchColumn(String),
    Table(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "{m}"),
            SqlError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            SqlError::TableExists(t) => write!(f, "table already exists: {t}"),
            SqlError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            SqlError::Table(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<SqlParseError> for SqlError {
    fn from(e: SqlParseError) -> Self {
        SqlError::Parse(e.to_string())
    }
}

impl From<TableError> for SqlError {
    fn from(e: TableError) -> Self {
        SqlError::Table(e.to_string())
    }
}

/// Result of executing a statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Column names for SELECT results.
    pub columns: Vec<Sym>,
    /// Selected rows, shared with the table store (`SELECT *` clones an
    /// `Rc` per hit instead of the cells).
    pub rows: Vec<SharedRow>,
    /// Rows inserted/updated/deleted.
    pub affected: usize,
    /// Rows examined while evaluating the statement — the cost driver for
    /// the simulated registry.
    pub scanned: usize,
    /// Whether an index satisfied the lookup.
    pub used_index: bool,
}

impl QueryResult {
    /// Approximate wire size of the result set in bytes.
    pub fn wire_size(&self) -> u64 {
        let header: u64 = self.columns.iter().map(|c| c.len() as u64 + 2).sum();
        let body: u64 = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.wire_size() + 2).sum::<u64>())
            .sum();
        64 + header + body
    }
}

/// Upper bound on cached parsed statements; a backstop against a
/// workload that generates unbounded distinct query texts.
const STMT_CACHE_CAP: usize = 1024;

/// A named collection of tables.  `Sym` keys order by their resolved
/// strings, so `table_names` iteration matches the old `String`-keyed
/// map exactly.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<Sym, Table>,
    /// Parsed-statement cache for `SELECT`s, keyed by the exact query
    /// text.  The simulated services re-issue the same handful of
    /// query strings millions of times (consumer queries, stream-batch
    /// reads, COUNT(*) probes); a hit skips the lexer and parser
    /// entirely.  Only `SELECT`s are cached: DML texts embed fresh
    /// values on every call, so caching them would just grow the map.
    stmt_cache: HashMap<String, Rc<Stmt>>,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse and execute one statement.  Repeated `SELECT` texts hit
    /// the statement cache and skip parsing.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, SqlError> {
        if let Some(stmt) = self.stmt_cache.get(sql) {
            let stmt = Rc::clone(stmt);
            return self.run(&stmt);
        }
        let stmt = parse_stmt(sql)?;
        if matches!(stmt, Stmt::Select { .. }) && self.stmt_cache.len() < STMT_CACHE_CAP {
            let stmt = Rc::new(stmt);
            self.stmt_cache.insert(sql.to_owned(), Rc::clone(&stmt));
            return self.run(&stmt);
        }
        self.run(&stmt)
    }

    /// Insert one row (schema order) without going through SQL text —
    /// exactly `INSERT INTO table VALUES (...)`, minus the `format!`,
    /// lexing and parsing.  The high-rate publish loops build their
    /// rows directly.
    pub fn insert_row(&mut self, table: &str, row: Row) -> Result<(), SqlError> {
        self.table_mut(table)?.insert(row)?;
        Ok(())
    }

    /// Delete the rows where `column = value` without going through SQL
    /// text — exactly `DELETE FROM table WHERE column = 'value'` (same
    /// candidate selection, same index probe), minus the `format!`,
    /// lexing and parsing.  Returns the number of rows deleted.
    pub fn delete_where_eq(
        &mut self,
        table: &str,
        column: &str,
        value: &SqlValue,
    ) -> Result<usize, SqlError> {
        let t = self.table(table)?;
        let ci = t
            .schema
            .column_index(column)
            .ok_or_else(|| SqlError::NoSuchColumn(column.into()))?;
        // Same candidate selection as the parsed `WHERE column = value`
        // would make: index probe with a re-filter when the column is
        // indexed, full scan otherwise — without building a `Pred` (two
        // heap clones) per call.
        let rids: Vec<usize> = match t.index_ids(ci, value) {
            Some(ids) => ids
                .iter()
                .copied()
                .filter(|&rid| {
                    t.get_row(rid)
                        .is_some_and(|row| row[ci].compare(value) == Some(Ordering::Equal))
                })
                .collect(),
            None => t
                .iter()
                .filter(|(_, row)| row[ci].compare(value) == Some(Ordering::Equal))
                .map(|(rid, _)| rid)
                .collect(),
        };
        let t = self.table_mut(table)?;
        let mut affected = 0;
        for rid in rids {
            if t.delete_row(rid) {
                affected += 1;
            }
        }
        Ok(affected)
    }

    /// Execute a pre-parsed statement.
    pub fn run(&mut self, stmt: &Stmt) -> Result<QueryResult, SqlError> {
        match stmt {
            Stmt::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                let key = gintern::intern(name);
                if self.tables.contains_key(&key) {
                    return Err(SqlError::TableExists(name.clone()));
                }
                let schema = TableSchema {
                    name: key,
                    columns: columns.clone(),
                    primary_key: *primary_key,
                };
                self.tables.insert(key, Table::new(schema));
                Ok(QueryResult::default())
            }
            Stmt::DropTable { name } => {
                let existed =
                    gintern::lookup(name).is_some_and(|key| self.tables.remove(&key).is_some());
                if !existed {
                    return Err(SqlError::NoSuchTable(name.clone()));
                }
                Ok(QueryResult::default())
            }
            Stmt::Insert {
                table,
                columns,
                values,
            } => {
                let t = self.table_mut(table)?;
                let row = match columns {
                    None => values.clone(),
                    Some(cols) => {
                        // Reorder named values into schema order; missing
                        // columns become NULL.
                        if cols.len() != values.len() {
                            return Err(SqlError::Parse(format!(
                                "{} columns but {} values",
                                cols.len(),
                                values.len()
                            )));
                        }
                        let mut row = vec![SqlValue::Null; t.schema.columns.len()];
                        for (c, v) in cols.iter().zip(values) {
                            let i = t
                                .schema
                                .column_index(c)
                                .ok_or_else(|| SqlError::NoSuchColumn(c.clone()))?;
                            row[i] = v.clone();
                        }
                        row
                    }
                };
                t.insert(row)?;
                Ok(QueryResult {
                    affected: 1,
                    ..Default::default()
                })
            }
            Stmt::Select {
                cols,
                table,
                where_,
                order_by,
                limit,
            } => {
                let t = self.table(table)?;
                let (mut rids, scanned, used_index) = candidate_rows(t, where_.as_ref())?;
                // Order.
                if let Some(ob) = order_by {
                    let ci = t
                        .schema
                        .column_index(&ob.column)
                        .ok_or_else(|| SqlError::NoSuchColumn(ob.column.clone()))?;
                    rids.sort_by(|&a, &b| {
                        let ra = &t.get_row(a).unwrap()[ci];
                        let rb = &t.get_row(b).unwrap()[ci];
                        let ord = ra.sort_key().total_cmp(&rb.sort_key());
                        if ob.desc {
                            ord.reverse()
                        } else {
                            ord
                        }
                    });
                }
                if let Some(n) = limit {
                    rids.truncate(*n);
                }
                // Project.
                match cols {
                    SelectCols::CountStar => Ok(QueryResult {
                        columns: vec![gintern::intern("count(*)")],
                        rows: vec![Rc::new(vec![SqlValue::Int(rids.len() as i64)])],
                        scanned,
                        used_index,
                        ..Default::default()
                    }),
                    SelectCols::Star => Ok(QueryResult {
                        columns: t.schema.column_names(),
                        // Share the stored rows: an `Rc` bump per hit.
                        rows: rids
                            .iter()
                            .map(|&r| Rc::clone(t.get_row(r).unwrap()))
                            .collect(),
                        scanned,
                        used_index,
                        ..Default::default()
                    }),
                    SelectCols::Columns(names) => {
                        let idxs: Vec<usize> = names
                            .iter()
                            .map(|n| {
                                t.schema
                                    .column_index(n)
                                    .ok_or_else(|| SqlError::NoSuchColumn(n.clone()))
                            })
                            .collect::<Result<_, _>>()?;
                        Ok(QueryResult {
                            columns: names.iter().map(|n| gintern::intern(n)).collect(),
                            rows: rids
                                .iter()
                                .map(|&r| {
                                    let row = t.get_row(r).unwrap();
                                    Rc::new(idxs.iter().map(|&i| row[i].clone()).collect())
                                })
                                .collect(),
                            scanned,
                            used_index,
                            ..Default::default()
                        })
                    }
                }
            }
            Stmt::Update {
                table,
                sets,
                where_,
            } => {
                let t = self.table(table)?;
                let (rids, scanned, used_index) = candidate_rows(t, where_.as_ref())?;
                let set_idx: Vec<(usize, SqlValue)> = sets
                    .iter()
                    .map(|(c, v)| {
                        t.schema
                            .column_index(c)
                            .map(|i| (i, v.clone()))
                            .ok_or_else(|| SqlError::NoSuchColumn(c.clone()))
                    })
                    .collect::<Result<_, _>>()?;
                let t = self.table_mut(table)?;
                for &rid in &rids {
                    for (ci, v) in &set_idx {
                        t.update_cell(rid, *ci, v.clone())?;
                    }
                }
                Ok(QueryResult {
                    affected: rids.len(),
                    scanned,
                    used_index,
                    ..Default::default()
                })
            }
            Stmt::Delete { table, where_ } => {
                let t = self.table(table)?;
                let (rids, scanned, used_index) = candidate_rows(t, where_.as_ref())?;
                let t = self.table_mut(table)?;
                let mut affected = 0;
                for rid in rids {
                    if t.delete_row(rid) {
                        affected += 1;
                    }
                }
                Ok(QueryResult {
                    affected,
                    scanned,
                    used_index,
                    ..Default::default()
                })
            }
        }
    }

    /// Resolve a table name to its `Sym` key without interning (a name
    /// never interned anywhere names no table).
    fn table_key(name: &str) -> Option<Sym> {
        if name.bytes().any(|b| b.is_ascii_uppercase()) {
            gintern::lookup(&name.to_ascii_lowercase())
        } else {
            gintern::lookup(name)
        }
    }

    pub fn table(&self, name: &str) -> Result<&Table, SqlError> {
        Self::table_key(name)
            .and_then(|k| self.tables.get(&k))
            .ok_or_else(|| SqlError::NoSuchTable(name.into()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, SqlError> {
        match Self::table_key(name) {
            Some(k) if self.tables.contains_key(&k) => Ok(self.tables.get_mut(&k).unwrap()),
            _ => Err(SqlError::NoSuchTable(name.into())),
        }
    }

    pub fn has_table(&self, name: &str) -> bool {
        Self::table_key(name).is_some_and(|k| self.tables.contains_key(&k))
    }

    pub fn table_names(&self) -> Vec<Sym> {
        self.tables.keys().copied().collect()
    }
}

/// Find candidate row ids for a predicate: `(rows, scanned, used_index)`.
/// An equality comparison of an indexed column against a literal (at the
/// top level or on the left spine of ANDs) short-circuits to an index
/// probe; everything else scans.
fn candidate_rows(t: &Table, where_: Option<&Pred>) -> Result<(Vec<usize>, usize, bool), SqlError> {
    validate_pred_columns(t, where_)?;
    if let Some(p) = where_ {
        if let Some((col, val)) = index_probe(t, p) {
            if let Some(ids) = t.index_ids(col, val) {
                // Probe then re-filter with the full predicate (the probe
                // may be one conjunct of a larger AND).
                let rows: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&rid| {
                        t.get_row(rid)
                            .is_some_and(|row| eval_pred(p, t, row) == Some(true))
                    })
                    .collect();
                let scanned = rows.len().max(1);
                return Ok((rows, scanned, true));
            }
        }
    }
    // Full scan.
    let mut rows = Vec::new();
    let mut scanned = 0;
    for (rid, row) in t.iter() {
        scanned += 1;
        let keep = match where_ {
            None => true,
            Some(p) => eval_pred(p, t, row) == Some(true),
        };
        if keep {
            rows.push(rid);
        }
    }
    Ok((rows, scanned, false))
}

/// Extract an indexable `col = literal` conjunct, borrowing the
/// literal from the predicate.
fn index_probe<'p>(t: &Table, p: &'p Pred) -> Option<(usize, &'p SqlValue)> {
    match p {
        Pred::Cmp(Operand::Column(c), CmpOp::Eq, Operand::Lit(v))
        | Pred::Cmp(Operand::Lit(v), CmpOp::Eq, Operand::Column(c)) => {
            let ci = t.schema.column_index(c)?;
            t.has_index(ci).then_some((ci, v))
        }
        Pred::And(a, b) => index_probe(t, a).or_else(|| index_probe(t, b)),
        _ => None,
    }
}

fn validate_pred_columns(t: &Table, p: Option<&Pred>) -> Result<(), SqlError> {
    let Some(p) = p else { return Ok(()) };
    let check = |c: &String| -> Result<(), SqlError> {
        t.schema
            .column_index(c)
            .map(|_| ())
            .ok_or_else(|| SqlError::NoSuchColumn(c.clone()))
    };
    match p {
        Pred::Cmp(a, _, b) => {
            if let Operand::Column(c) = a {
                check(c)?;
            }
            if let Operand::Column(c) = b {
                check(c)?;
            }
            Ok(())
        }
        Pred::Like { column, .. } => check(column),
        Pred::IsNull(c) | Pred::IsNotNull(c) => check(c),
        Pred::And(a, b) | Pred::Or(a, b) => {
            validate_pred_columns(t, Some(a))?;
            validate_pred_columns(t, Some(b))
        }
        Pred::Not(q) => validate_pred_columns(t, Some(q)),
    }
}

/// Three-valued predicate evaluation (`None` = unknown, from NULLs).
fn eval_pred(p: &Pred, t: &Table, row: &Row) -> Option<bool> {
    match p {
        Pred::Cmp(a, op, b) => {
            let va = operand_value(a, t, row);
            let vb = operand_value(b, t, row);
            let ord = va.compare(vb)?;
            Some(match op {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => !ord.is_eq(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
            })
        }
        Pred::Like {
            column,
            pattern,
            negated,
        } => {
            let ci = t.schema.column_index(column)?;
            match &row[ci] {
                SqlValue::Null => None,
                SqlValue::Text(s) => Some(like_match(pattern, s) != *negated),
                // Non-text values match LIKE via their textual form, as
                // most SQL dialects coerce.
                v => Some(like_match(pattern, &v.to_string()) != *negated),
            }
        }
        Pred::IsNull(c) => {
            let ci = t.schema.column_index(c)?;
            Some(row[ci].is_null())
        }
        Pred::IsNotNull(c) => {
            let ci = t.schema.column_index(c)?;
            Some(!row[ci].is_null())
        }
        Pred::And(a, b) => match (eval_pred(a, t, row), eval_pred(b, t, row)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Pred::Or(a, b) => match (eval_pred(a, t, row), eval_pred(b, t, row)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Pred::Not(q) => eval_pred(q, t, row).map(|b| !b),
    }
}

/// SQL LIKE matching: `%` = any run (including empty), `_` = exactly one
/// character; case-insensitive like our text comparisons elsewhere.
fn like_match(pattern: &str, value: &str) -> bool {
    fn rec(p: &[char], v: &[char]) -> bool {
        match p.split_first() {
            None => v.is_empty(),
            Some(('%', rest)) => (0..=v.len()).any(|i| rec(rest, &v[i..])),
            Some(('_', rest)) => !v.is_empty() && rec(rest, &v[1..]),
            Some((c, rest)) => {
                v.first().is_some_and(|x| x.eq_ignore_ascii_case(c)) && rec(rest, &v[1..])
            }
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let v: Vec<char> = value.chars().collect();
    rec(&p, &v)
}

/// Borrowed operand resolution: predicate evaluation runs once per
/// scanned row per query, so it must not clone cell values (a `Text`
/// clone is a heap allocation per row).
fn operand_value<'a>(o: &'a Operand, t: &Table, row: &'a Row) -> &'a SqlValue {
    const NULL: &SqlValue = &SqlValue::Null;
    match o {
        Operand::Lit(v) => v,
        Operand::Column(c) => t.schema.column_index(c).map(|i| &row[i]).unwrap_or(NULL),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE cpu (host TEXT PRIMARY KEY, site TEXT, load REAL)")
            .unwrap();
        for (h, s, l) in [
            ("lucky0", "anl", 0.2),
            ("lucky3", "anl", 1.5),
            ("lucky4", "anl", 0.9),
            ("uc01", "uc", 2.5),
            ("uc02", "uc", 0.1),
        ] {
            db.execute(&format!("INSERT INTO cpu VALUES ('{h}', '{s}', {l})"))
                .unwrap();
        }
        db
    }

    #[test]
    fn select_star_and_projection() {
        let mut d = db();
        let r = d.execute("SELECT * FROM cpu").unwrap();
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.columns, vec!["host", "site", "load"]);
        let r = d.execute("SELECT host FROM cpu WHERE load > 1.0").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.columns, vec!["host"]);
    }

    #[test]
    fn where_with_and_or_not() {
        let mut d = db();
        let r = d
            .execute("SELECT host FROM cpu WHERE site = 'anl' AND load < 1.0")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = d
            .execute("SELECT host FROM cpu WHERE site = 'uc' OR load >= 1.5")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        let r = d
            .execute("SELECT host FROM cpu WHERE NOT site = 'anl'")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn order_by_and_limit() {
        let mut d = db();
        let r = d
            .execute("SELECT host FROM cpu ORDER BY load DESC LIMIT 2")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], SqlValue::Text("uc01".into()));
        assert_eq!(r.rows[1][0], SqlValue::Text("lucky3".into()));
        let r = d.execute("SELECT host FROM cpu ORDER BY host").unwrap();
        assert_eq!(r.rows[0][0], SqlValue::Text("lucky0".into()));
    }

    #[test]
    fn count_star() {
        let mut d = db();
        let r = d
            .execute("SELECT COUNT(*) FROM cpu WHERE site = 'anl'")
            .unwrap();
        assert_eq!(r.rows[0][0], SqlValue::Int(3));
    }

    #[test]
    fn index_probe_on_primary_key() {
        let mut d = db();
        let r = d
            .execute("SELECT load FROM cpu WHERE host = 'lucky3'")
            .unwrap();
        assert!(r.used_index);
        assert_eq!(r.rows.len(), 1);
        assert!(r.scanned <= 1);
        // Non-indexed column scans.
        let r = d.execute("SELECT host FROM cpu WHERE load = 0.9").unwrap();
        assert!(!r.used_index);
        assert_eq!(r.scanned, 5);
        // Index probe inside an AND still applies the full predicate.
        let r = d
            .execute("SELECT host FROM cpu WHERE host = 'lucky3' AND load < 1.0")
            .unwrap();
        assert!(r.used_index);
        assert_eq!(r.rows.len(), 0);
    }

    #[test]
    fn update_and_delete() {
        let mut d = db();
        let r = d
            .execute("UPDATE cpu SET load = 9.9 WHERE site = 'uc'")
            .unwrap();
        assert_eq!(r.affected, 2);
        let r = d
            .execute("SELECT COUNT(*) FROM cpu WHERE load = 9.9")
            .unwrap();
        assert_eq!(r.rows[0][0], SqlValue::Int(2));
        let r = d.execute("DELETE FROM cpu WHERE site = 'anl'").unwrap();
        assert_eq!(r.affected, 3);
        let r = d.execute("SELECT COUNT(*) FROM cpu").unwrap();
        assert_eq!(r.rows[0][0], SqlValue::Int(2));
    }

    #[test]
    fn insert_named_columns_fills_nulls() {
        let mut d = db();
        d.execute("INSERT INTO cpu (host) VALUES ('bare')").unwrap();
        let r = d
            .execute("SELECT site FROM cpu WHERE host = 'bare'")
            .unwrap();
        assert_eq!(r.rows[0][0], SqlValue::Null);
        // NULL never matches comparisons.
        let r = d
            .execute("SELECT host FROM cpu WHERE site = 'anl' OR site <> 'anl'")
            .unwrap();
        assert_eq!(r.rows.len(), 5); // 'bare' excluded
        let r = d
            .execute("SELECT host FROM cpu WHERE site IS NULL")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn errors() {
        let mut d = db();
        assert!(matches!(
            d.execute("SELECT * FROM nope"),
            Err(SqlError::NoSuchTable(_))
        ));
        assert!(matches!(
            d.execute("SELECT nope FROM cpu"),
            Err(SqlError::NoSuchColumn(_))
        ));
        assert!(matches!(
            d.execute("SELECT * FROM cpu WHERE nope = 1"),
            Err(SqlError::NoSuchColumn(_))
        ));
        assert!(matches!(
            d.execute("CREATE TABLE cpu (a INT)"),
            Err(SqlError::TableExists(_))
        ));
        assert!(matches!(
            d.execute("INSERT INTO cpu VALUES ('lucky0', 'anl', 0.0)"),
            Err(SqlError::Table(_)) // duplicate pk
        ));
        assert!(d.execute("DROP TABLE cpu").is_ok());
        assert!(matches!(
            d.execute("DROP TABLE cpu"),
            Err(SqlError::NoSuchTable(_))
        ));
    }

    #[test]
    fn wire_size_grows_with_rows() {
        let mut d = db();
        let small = d.execute("SELECT * FROM cpu LIMIT 1").unwrap().wire_size();
        let big = d.execute("SELECT * FROM cpu").unwrap().wire_size();
        assert!(big > small);
    }

    #[test]
    fn like_patterns() {
        let mut d = db();
        let r = d
            .execute("SELECT host FROM cpu WHERE host LIKE 'lucky%'")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        let r = d
            .execute("SELECT host FROM cpu WHERE host LIKE 'uc0_'")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = d
            .execute("SELECT host FROM cpu WHERE host NOT LIKE 'lucky%'")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = d
            .execute("SELECT host FROM cpu WHERE host LIKE '%ck%' AND site = 'anl'")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        // Case-insensitive; no match is empty, not an error.
        let r = d
            .execute("SELECT host FROM cpu WHERE host LIKE 'LUCKY3'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let r = d
            .execute("SELECT host FROM cpu WHERE host LIKE 'z%'")
            .unwrap();
        assert_eq!(r.rows.len(), 0);
        // Bad usage is rejected.
        assert!(d.execute("SELECT host FROM cpu WHERE host LIKE 5").is_err());
        assert!(d
            .execute("SELECT host FROM cpu WHERE nosuch LIKE 'x'")
            .is_err());
    }

    #[test]
    fn direct_row_apis_match_sql() {
        // The same upsert round through SQL text and through the direct
        // APIs leaves both databases observably identical.
        let mut via_sql = db();
        let mut direct = db();
        for (h, l) in [("lucky3", 7.5), ("new01", 0.3), ("uc01", 1.1)] {
            via_sql
                .execute(&format!("DELETE FROM cpu WHERE host = '{h}'"))
                .unwrap();
            via_sql
                .execute(&format!("INSERT INTO cpu VALUES ('{h}', 'x', {l})"))
                .unwrap();
            direct
                .delete_where_eq("cpu", "host", &SqlValue::Text(h.into()))
                .unwrap();
            direct
                .insert_row(
                    "cpu",
                    vec![
                        SqlValue::Text(h.into()),
                        SqlValue::Text("x".into()),
                        SqlValue::Real(l),
                    ],
                )
                .unwrap();
        }
        let a = via_sql.execute("SELECT * FROM cpu").unwrap();
        let b = direct.execute("SELECT * FROM cpu").unwrap();
        assert_eq!(a, b);
        // Error surfaces match the SQL path's.
        assert!(matches!(
            direct.insert_row("nope", vec![]),
            Err(SqlError::NoSuchTable(_))
        ));
        assert!(matches!(
            direct.delete_where_eq("cpu", "nope", &SqlValue::Int(1)),
            Err(SqlError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn select_cache_reuses_parsed_statements() {
        let mut d = db();
        let a = d.execute("SELECT host FROM cpu WHERE load > 1.0").unwrap();
        // Mutate between identical queries: the cached plan re-executes
        // against current data, never stale results.
        d.execute("INSERT INTO cpu VALUES ('hot1', 'anl', 9.0)")
            .unwrap();
        let b = d.execute("SELECT host FROM cpu WHERE load > 1.0").unwrap();
        assert_eq!(a.rows.len() + 1, b.rows.len());
    }

    #[test]
    fn column_to_column_predicates() {
        let mut d = Database::new();
        d.execute("CREATE TABLE p (a INT, b INT)").unwrap();
        d.execute("INSERT INTO p VALUES (1, 2)").unwrap();
        d.execute("INSERT INTO p VALUES (3, 3)").unwrap();
        d.execute("INSERT INTO p VALUES (5, 4)").unwrap();
        let r = d.execute("SELECT * FROM p WHERE a < b").unwrap();
        assert_eq!(r.rows.len(), 1);
        let r = d.execute("SELECT * FROM p WHERE a = b").unwrap();
        assert_eq!(r.rows.len(), 1);
    }
}
