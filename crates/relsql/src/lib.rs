//! # relsql — an in-memory relational engine with a SQL subset
//!
//! R-GMA presents the Grid monitoring data as one virtual relational
//! database: Producers advertise tables, the Registry stores producer
//! metadata in an RDBMS, and Consumers pose SQL queries.  This crate
//! implements the relational substrate:
//!
//! * typed tables with optional primary keys and secondary indexes;
//! * a SQL subset: `CREATE TABLE`, `INSERT`, `SELECT` (projection,
//!   `WHERE` with `AND`/`OR`/`NOT` and comparisons, `ORDER BY`, `LIMIT`,
//!   `COUNT(*)`), `UPDATE` and `DELETE`;
//! * an executor that uses an index for equality lookups and otherwise
//!   scans, reporting the rows examined (the simulated CPU cost of a
//!   query).
//!
//! ```
//! use relsql::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE cpu (host TEXT PRIMARY KEY, load REAL)").unwrap();
//! db.execute("INSERT INTO cpu VALUES ('lucky3', 0.7)").unwrap();
//! db.execute("INSERT INTO cpu VALUES ('lucky4', 1.9)").unwrap();
//! let r = db.execute("SELECT host FROM cpu WHERE load > 1.0").unwrap();
//! assert_eq!(r.rows.len(), 1);
//! assert_eq!(r.rows[0][0].to_string(), "'lucky4'");
//! ```

pub mod ast;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod table;
pub mod value;

pub use ast::{Pred, SelectCols, Stmt};
pub use engine::{Database, QueryResult, SqlError};
pub use gintern::Sym;
pub use parser::parse_stmt;
pub use table::{ColType, Column, Row, SharedRow, Table, TableSchema};
pub use value::SqlValue;
