//! SQL abstract syntax.

use crate::table::{ColType, Column};
use crate::value::SqlValue;
use std::fmt;

/// Comparison operators in WHERE predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    Column(String),
    Lit(SqlValue),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Column(c) => write!(f, "{c}"),
            Operand::Lit(v) => write!(f, "{v}"),
        }
    }
}

/// A WHERE predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    Cmp(Operand, CmpOp, Operand),
    /// `col LIKE 'pattern'` (`%` any run, `_` one char; negated form for
    /// NOT LIKE).
    Like {
        column: String,
        pattern: String,
        negated: bool,
    },
    IsNull(String),
    IsNotNull(String),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Cmp(a, op, b) => write!(f, "{a} {} {b}", op.symbol()),
            Pred::Like {
                column,
                pattern,
                negated,
            } => write!(
                f,
                "{column} {}LIKE '{}'",
                if *negated { "NOT " } else { "" },
                pattern.replace('\'', "''")
            ),
            Pred::IsNull(c) => write!(f, "{c} IS NULL"),
            Pred::IsNotNull(c) => write!(f, "{c} IS NOT NULL"),
            Pred::And(a, b) => write!(f, "({a} AND {b})"),
            Pred::Or(a, b) => write!(f, "({a} OR {b})"),
            Pred::Not(p) => write!(f, "(NOT {p})"),
        }
    }
}

/// SELECT column list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectCols {
    Star,
    CountStar,
    Columns(Vec<String>),
}

/// ORDER BY clause.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    pub column: String,
    pub desc: bool,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    CreateTable {
        name: String,
        columns: Vec<Column>,
        primary_key: Option<usize>,
    },
    Insert {
        table: String,
        /// Explicit column list, or None for positional.
        columns: Option<Vec<String>>,
        values: Vec<SqlValue>,
    },
    Select {
        cols: SelectCols,
        table: String,
        where_: Option<Pred>,
        order_by: Option<OrderBy>,
        limit: Option<usize>,
    },
    Update {
        table: String,
        sets: Vec<(String, SqlValue)>,
        where_: Option<Pred>,
    },
    Delete {
        table: String,
        where_: Option<Pred>,
    },
    DropTable {
        name: String,
    },
}

impl Stmt {
    /// The table this statement touches.
    pub fn table(&self) -> &str {
        match self {
            Stmt::CreateTable { name, .. } | Stmt::DropTable { name } => name,
            Stmt::Insert { table, .. }
            | Stmt::Select { table, .. }
            | Stmt::Update { table, .. }
            | Stmt::Delete { table, .. } => table,
        }
    }
}

/// Helper for building column definitions.
pub fn col(name: &str, ty: ColType) -> Column {
    Column {
        name: gintern::intern(&name.to_ascii_lowercase()),
        ty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_display() {
        let p = Pred::And(
            Box::new(Pred::Cmp(
                Operand::Column("a".into()),
                CmpOp::Ge,
                Operand::Lit(SqlValue::Int(5)),
            )),
            Box::new(Pred::IsNotNull("b".into())),
        );
        assert_eq!(p.to_string(), "(a >= 5 AND b IS NOT NULL)");
    }

    #[test]
    fn stmt_table_accessor() {
        let s = Stmt::Delete {
            table: "t".into(),
            where_: None,
        };
        assert_eq!(s.table(), "t");
    }
}
