//! Tables, schemas and indexes.
//!
//! Table and column names are interned [`Sym`]s, and rows live behind
//! `Rc` ([`SharedRow`]): a `SELECT *` result shares the stored rows
//! instead of deep-cloning every cell, and in-place cell updates go
//! through `Rc::make_mut` so outstanding result sets keep their
//! snapshot.

use crate::value::SqlValue;
use gintern::Sym;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    Int,
    Real,
    Text,
}

impl ColType {
    /// Does `v` fit this column (NULL fits everything; INT widens to REAL)?
    pub fn accepts(&self, v: &SqlValue) -> bool {
        matches!(
            (self, v),
            (_, SqlValue::Null)
                | (ColType::Int, SqlValue::Int(_))
                | (ColType::Real, SqlValue::Real(_))
                | (ColType::Real, SqlValue::Int(_))
                | (ColType::Text, SqlValue::Text(_))
        )
    }
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColType::Int => write!(f, "INT"),
            ColType::Real => write!(f, "REAL"),
            ColType::Text => write!(f, "TEXT"),
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Lowercased name.
    pub name: Sym,
    pub ty: ColType,
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Lowercased table name.
    pub name: Sym,
    pub columns: Vec<Column>,
    /// Index of the primary-key column, if any.
    pub primary_key: Option<usize>,
}

impl TableSchema {
    pub fn column_index(&self, name: &str) -> Option<usize> {
        // Probe via `gintern::lookup`: a name never interned anywhere
        // cannot be a column, and the already-lowercase common case
        // (parsed statements) does not allocate.
        let key = if name.bytes().any(|b| b.is_ascii_uppercase()) {
            gintern::lookup(&name.to_ascii_lowercase())?
        } else {
            gintern::lookup(name)?
        };
        self.columns.iter().position(|c| c.name == key)
    }

    pub fn column_names(&self) -> Vec<Sym> {
        self.columns.iter().map(|c| c.name).collect()
    }
}

/// A row is one value per column.
pub type Row = Vec<SqlValue>;

/// A reference-counted row: cloning a result set shares storage with the
/// table instead of copying cells.
pub type SharedRow = Rc<Row>;

/// Index key: a normalised, allocation-free form of a value for the
/// per-column equality indexes.  Numbers key by their `f64` bit
/// pattern so `2` and `2.0` (both `2.0f64`) share a key, exactly like
/// the old `format!("n:{}")` string normalisation: float `Display` is
/// shortest-roundtrip, hence injective over distinct non-NaN bit
/// patterns, and all NaNs collapse to one canonical key here as they
/// all rendered `"NaN"` there.  Text keys are interned symbols.  The
/// index maps are only ever probed, never iterated, so key *ordering*
/// is unobservable — only equality must match the old behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum IndexKey {
    Num(u64),
    Text(Sym),
}

fn num_key(r: f64) -> IndexKey {
    IndexKey::Num(if r.is_nan() { f64::NAN } else { r }.to_bits())
}

/// Probe form of a key: text resolves through [`gintern::lookup`]
/// without interning — a string this thread never interned cannot
/// have been stored as a key (storing interns it), so a miss means
/// "not present".  `None` means the value cannot be in any index.
fn probe_key(v: &SqlValue) -> Option<IndexKey> {
    match v {
        SqlValue::Null => None,
        SqlValue::Int(i) => Some(num_key(*i as f64)),
        SqlValue::Real(r) => Some(num_key(*r)),
        SqlValue::Text(s) => gintern::lookup(s).map(IndexKey::Text),
    }
}

/// Store form of a key: interns text (allocating only the first time
/// a distinct string is seen on this thread) so the key can live in
/// the map.
fn store_key(v: &SqlValue) -> Option<IndexKey> {
    match v {
        SqlValue::Text(s) => Some(IndexKey::Text(gintern::intern(s))),
        _ => probe_key(v),
    }
}

/// A table: schema, row store and optional per-column equality indexes.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    rows: Vec<Option<SharedRow>>, // tombstoned on delete
    live: usize,
    /// column index -> (key -> row ids)
    indexes: BTreeMap<usize, BTreeMap<IndexKey, Vec<usize>>>,
}

/// Errors raised by table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    Arity { expected: usize, got: usize },
    TypeMismatch { column: String, value: String },
    DuplicateKey(String),
    NoSuchColumn(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Arity { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            TableError::TypeMismatch { column, value } => {
                write!(f, "value {value} does not fit column {column}")
            }
            TableError::DuplicateKey(k) => write!(f, "duplicate primary key {k}"),
            TableError::NoSuchColumn(c) => write!(f, "no such column {c}"),
        }
    }
}

impl std::error::Error for TableError {}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        let mut t = Table {
            schema,
            rows: Vec::new(),
            live: 0,
            indexes: BTreeMap::new(),
        };
        if let Some(pk) = t.schema.primary_key {
            t.indexes.insert(pk, BTreeMap::new());
        }
        t
    }

    /// Add a secondary equality index on a column.
    pub fn create_index(&mut self, column: &str) -> Result<(), TableError> {
        let col = self
            .schema
            .column_index(column)
            .ok_or_else(|| TableError::NoSuchColumn(column.into()))?;
        let mut idx: BTreeMap<IndexKey, Vec<usize>> = BTreeMap::new();
        for (rid, row) in self.rows.iter().enumerate() {
            if let Some(row) = row {
                if let Some(k) = store_key(&row[col]) {
                    idx.entry(k).or_default().push(rid);
                }
            }
        }
        self.indexes.insert(col, idx);
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a full row.
    pub fn insert(&mut self, row: Row) -> Result<usize, TableError> {
        if row.len() != self.schema.columns.len() {
            return Err(TableError::Arity {
                expected: self.schema.columns.len(),
                got: row.len(),
            });
        }
        for (col, v) in self.schema.columns.iter().zip(&row) {
            if !col.ty.accepts(v) {
                return Err(TableError::TypeMismatch {
                    column: col.name.to_string(),
                    value: v.to_string(),
                });
            }
        }
        if let Some(pk) = self.schema.primary_key {
            // Probe form suffices: a duplicate key is by definition
            // already stored, hence already interned.
            if let Some(k) = probe_key(&row[pk]) {
                if self.indexes[&pk].get(&k).is_some_and(|v| !v.is_empty()) {
                    return Err(TableError::DuplicateKey(row[pk].to_string()));
                }
            }
        }
        let rid = self.rows.len();
        for (&col, idx) in self.indexes.iter_mut() {
            if let Some(k) = store_key(&row[col]) {
                idx.entry(k).or_default().push(rid);
            }
        }
        self.rows.push(Some(Rc::new(row)));
        self.live += 1;
        Ok(rid)
    }

    /// Row ids matching `value` on `col` via an index, borrowed from
    /// the index itself: `None` if the column has no index or the
    /// value is NULL (caller must scan), `Some(&[])` if indexed with
    /// no match.
    pub fn index_ids(&self, col: usize, value: &SqlValue) -> Option<&[usize]> {
        let idx = self.indexes.get(&col)?;
        if value.is_null() {
            return None;
        }
        Some(
            probe_key(value)
                .and_then(|k| idx.get(&k))
                .map(Vec::as_slice)
                .unwrap_or(&[]),
        )
    }

    /// Owned form of [`Table::index_ids`].
    pub fn index_lookup(&self, col: usize, value: &SqlValue) -> Option<Vec<usize>> {
        self.index_ids(col, value).map(<[usize]>::to_vec)
    }

    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.contains_key(&col)
    }

    pub fn get_row(&self, rid: usize) -> Option<&SharedRow> {
        self.rows.get(rid).and_then(Option::as_ref)
    }

    /// Delete a row by id; returns whether it was live.
    pub fn delete_row(&mut self, rid: usize) -> bool {
        let Some(slot) = self.rows.get_mut(rid) else {
            return false;
        };
        let Some(row) = slot.take() else {
            return false;
        };
        self.live -= 1;
        for (&col, idx) in self.indexes.iter_mut() {
            // Probe form: a stored row's keys were interned on insert.
            if let Some(k) = probe_key(&row[col]) {
                if let Some(ids) = idx.get_mut(&k) {
                    ids.retain(|&r| r != rid);
                }
            }
        }
        true
    }

    /// Overwrite one column of a row (re-indexing as needed).
    pub fn update_cell(&mut self, rid: usize, col: usize, v: SqlValue) -> Result<(), TableError> {
        let ty = self.schema.columns[col].ty;
        if !ty.accepts(&v) {
            return Err(TableError::TypeMismatch {
                column: self.schema.columns[col].name.to_string(),
                value: v.to_string(),
            });
        }
        let Some(Some(row)) = self.rows.get_mut(rid) else {
            return Ok(());
        };
        // Copy-on-write: result sets holding this row keep their snapshot.
        let old = std::mem::replace(&mut Rc::make_mut(row)[col], v.clone());
        if let Some(idx) = self.indexes.get_mut(&col) {
            if let Some(k) = probe_key(&old) {
                if let Some(ids) = idx.get_mut(&k) {
                    ids.retain(|&r| r != rid);
                }
            }
            if let Some(k) = store_key(&v) {
                idx.entry(k).or_default().push(rid);
            }
        }
        Ok(())
    }

    /// Iterate `(row_id, row)` over live rows.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &SharedRow)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (i, row)))
    }

    /// Total number of row slots (live + tombstones): the scan length.
    pub fn scan_len(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema {
            name: "cpu".into(),
            columns: vec![
                Column {
                    name: "host".into(),
                    ty: ColType::Text,
                },
                Column {
                    name: "load".into(),
                    ty: ColType::Real,
                },
            ],
            primary_key: Some(0),
        }
    }

    fn row(host: &str, load: f64) -> Row {
        vec![SqlValue::Text(host.into()), SqlValue::Real(load)]
    }

    #[test]
    fn insert_and_iterate() {
        let mut t = Table::new(schema());
        t.insert(row("a", 1.0)).unwrap();
        t.insert(row("b", 2.0)).unwrap();
        assert_eq!(t.len(), 2);
        let hosts: Vec<&str> = t.iter().map(|(_, r)| r[0].as_text().unwrap()).collect();
        assert_eq!(hosts, vec!["a", "b"]);
    }

    #[test]
    fn primary_key_enforced() {
        let mut t = Table::new(schema());
        t.insert(row("a", 1.0)).unwrap();
        assert!(matches!(
            t.insert(row("a", 9.0)),
            Err(TableError::DuplicateKey(_))
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn type_checking() {
        let mut t = Table::new(schema());
        assert!(matches!(
            t.insert(vec![SqlValue::Int(1), SqlValue::Real(0.0)]),
            Err(TableError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.insert(vec![SqlValue::Text("x".into())]),
            Err(TableError::Arity { .. })
        ));
        // INT accepted into REAL column; NULL accepted anywhere.
        t.insert(vec![SqlValue::Text("y".into()), SqlValue::Int(3)])
            .unwrap();
        t.insert(vec![SqlValue::Text("z".into()), SqlValue::Null])
            .unwrap();
    }

    #[test]
    fn index_lookup_matches_scan() {
        let mut t = Table::new(schema());
        for i in 0..20 {
            t.insert(row(&format!("h{i}"), i as f64)).unwrap();
        }
        let ids = t
            .index_lookup(0, &SqlValue::Text("h7".into()))
            .expect("pk is indexed");
        assert_eq!(ids.len(), 1);
        assert_eq!(t.get_row(ids[0]).unwrap()[1], SqlValue::Real(7.0));
        // Unindexed column.
        assert!(t.index_lookup(1, &SqlValue::Real(7.0)).is_none());
        // Secondary index.
        let mut t2 = t.clone();
        t2.create_index("load").unwrap();
        let ids = t2.index_lookup(1, &SqlValue::Real(7.0)).unwrap();
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn int_real_share_index_key() {
        let mut s = schema();
        s.primary_key = Some(1);
        let mut t = Table::new(s);
        t.insert(vec![SqlValue::Text("a".into()), SqlValue::Int(2)])
            .unwrap();
        // 2.0 collides with 2 under numeric key normalisation.
        assert!(matches!(
            t.insert(vec![SqlValue::Text("b".into()), SqlValue::Real(2.0)]),
            Err(TableError::DuplicateKey(_))
        ));
    }

    #[test]
    fn delete_and_update_maintain_indexes() {
        let mut t = Table::new(schema());
        let rid = t.insert(row("a", 1.0)).unwrap();
        t.insert(row("b", 2.0)).unwrap();
        assert!(t.delete_row(rid));
        assert!(!t.delete_row(rid));
        assert_eq!(t.len(), 1);
        assert!(t
            .index_lookup(0, &SqlValue::Text("a".into()))
            .unwrap()
            .is_empty());
        // Now the pk "a" is free again.
        let rid2 = t.insert(row("a", 5.0)).unwrap();
        t.update_cell(rid2, 0, SqlValue::Text("c".into())).unwrap();
        assert!(t
            .index_lookup(0, &SqlValue::Text("a".into()))
            .unwrap()
            .is_empty());
        assert_eq!(
            t.index_lookup(0, &SqlValue::Text("c".into()))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn null_pk_not_indexed() {
        let mut t = Table::new(schema());
        t.insert(vec![SqlValue::Null, SqlValue::Real(0.1)]).unwrap();
        t.insert(vec![SqlValue::Null, SqlValue::Real(0.2)]).unwrap(); // no dup error
        assert_eq!(t.len(), 2);
    }
}
