//! Three-valued ClassAd expression evaluation.
//!
//! Evaluation happens relative to an *evaluating* ad (`MY`) and an optional
//! *candidate* ad (`TARGET`), as during matchmaking.  Unscoped attribute
//! references resolve in `MY` first, then `TARGET`; unresolved references
//! evaluate to `UNDEFINED`.  Circular attribute definitions evaluate to
//! `UNDEFINED` as in Condor (e.g. `a = b; b = a`).

use crate::ad::ClassAd;
use crate::expr::{BinOp, Expr, Scope, UnOp};
use crate::value::Value;
use gintern::Sym;

/// Evaluation context: the two ads and the in-progress reference stack for
/// cycle detection.
pub struct EvalCtx<'a> {
    pub my: &'a ClassAd,
    pub target: Option<&'a ClassAd>,
    visiting: Vec<(bool, Sym)>, // (is_target_scope, name)
}

impl<'a> EvalCtx<'a> {
    pub fn new(my: &'a ClassAd, target: Option<&'a ClassAd>) -> Self {
        EvalCtx {
            my,
            target,
            visiting: Vec::new(),
        }
    }

    /// A context with one reference already on the cycle stack — used when
    /// an attribute's *body* is evaluated directly (e.g. a pre-compiled
    /// `Requirements`) so circular definitions behave exactly as if the
    /// evaluation had entered through the attribute reference.
    pub fn seeded(my: &'a ClassAd, target: Option<&'a ClassAd>, visiting: (bool, Sym)) -> Self {
        EvalCtx {
            my,
            target,
            visiting: vec![visiting],
        }
    }
}

/// Evaluate `expr` in the context of `my` (and optionally `target`).
pub fn eval(expr: &Expr, my: &ClassAd, target: Option<&ClassAd>) -> Value {
    let mut cx = EvalCtx::new(my, target);
    eval_in(expr, &mut cx)
}

/// Evaluate with an explicit context (used recursively).
pub fn eval_in(expr: &Expr, cx: &mut EvalCtx) -> Value {
    match expr {
        Expr::Lit(v) => v.clone(),
        Expr::Attr { scope, name, .. } => eval_attr(*scope, *name, cx),
        Expr::Unary(op, e) => eval_unary(*op, eval_in(e, cx)),
        Expr::Binary(op, a, b) => eval_binary(*op, a, b, cx),
        Expr::Cond(c, t, e) => match eval_in(c, cx) {
            Value::Bool(true) => eval_in(t, cx),
            Value::Bool(false) => eval_in(e, cx),
            Value::Undefined => Value::Undefined,
            _ => Value::Error,
        },
        Expr::Call(name, args) => eval_call(name, args, cx),
    }
}

pub(crate) fn eval_attr(scope: Scope, name: Sym, cx: &mut EvalCtx) -> Value {
    // Resolve which ad the reference lands in.
    let candidates: &[(bool, &ClassAd)] = match scope {
        Scope::My => &[(false, cx.my)],
        Scope::Target => match cx.target {
            Some(t) => &[(true, t)],
            None => return Value::Undefined,
        },
        Scope::None => match cx.target {
            Some(t) => &[(false, cx.my), (true, t)],
            None => &[(false, cx.my)],
        },
    };
    // `Expr::Attr` names are interned lowercase, so the cycle stack
    // compares symbol ids — no per-resolution lowercasing or allocation.
    let in_visiting = |cx: &EvalCtx, is_target: bool| {
        cx.visiting
            .iter()
            .any(|(t, n)| *t == is_target && *n == name)
    };
    // Work around the borrow of cx inside the loop: find the expression
    // first.
    let mut found: Option<(bool, Expr)> = None;
    for &(is_target, ad) in candidates {
        if let Some(e) = ad.get(&name) {
            // A literal body cannot recurse, so the cycle bookkeeping
            // below is unobservable for it: answer without cloning the
            // expression — unless this very reference is already in
            // flight, which the bookkeeping would report as a cycle.
            if let Expr::Lit(v) = e {
                if !in_visiting(cx, is_target) {
                    return v.clone();
                }
            }
            found = Some((is_target, e.clone()));
            break;
        }
    }
    let Some((is_target, e)) = found else {
        return Value::Undefined;
    };
    if in_visiting(cx, is_target) {
        // Circular reference.
        return Value::Undefined;
    }
    cx.visiting.push((is_target, name));
    // Inside the referenced ad, unscoped references resolve relative to
    // *that* ad: swap MY/TARGET when we crossed into the target.
    let v = if is_target {
        let mut swapped = EvalCtx {
            my: cx.target.unwrap(),
            target: Some(cx.my),
            visiting: std::mem::take(&mut cx.visiting),
        };
        let v = eval_in(&e, &mut swapped);
        cx.visiting = swapped.visiting;
        v
    } else {
        eval_in(&e, cx)
    };
    cx.visiting.pop();
    v
}

pub(crate) fn eval_unary(op: UnOp, v: Value) -> Value {
    match op {
        UnOp::Not => match v {
            Value::Bool(b) => Value::Bool(!b),
            Value::Undefined => Value::Undefined,
            _ => Value::Error,
        },
        UnOp::Neg => match v {
            Value::Int(i) => Value::Int(-i),
            Value::Real(r) => Value::Real(-r),
            Value::Undefined => Value::Undefined,
            _ => Value::Error,
        },
        UnOp::Plus => match v {
            Value::Int(_) | Value::Real(_) => v,
            Value::Undefined => Value::Undefined,
            _ => Value::Error,
        },
    }
}

fn eval_binary(op: BinOp, a: &Expr, b: &Expr, cx: &mut EvalCtx) -> Value {
    match op {
        BinOp::And | BinOp::Or => {
            // Non-strict three-valued connectives.
            let va = eval_in(a, cx);
            if connective_shortcircuits(op, &va) {
                return va;
            }
            let vb = eval_in(b, cx);
            connective_tail(op, va, vb)
        }
        BinOp::MetaEq => {
            let va = eval_in(a, cx);
            let vb = eval_in(b, cx);
            Value::Bool(va.meta_eq(&vb))
        }
        BinOp::MetaNe => {
            let va = eval_in(a, cx);
            let vb = eval_in(b, cx);
            Value::Bool(!va.meta_eq(&vb))
        }
        _ => {
            let va = eval_in(a, cx);
            let vb = eval_in(b, cx);
            strict_binary(op, va, vb)
        }
    }
}

/// Does the left operand alone decide an `&&`/`||`?  (`false && _`,
/// `true || _`.)  Shared with the compiled evaluator's branch ops.
pub(crate) fn connective_shortcircuits(op: BinOp, va: &Value) -> bool {
    match op {
        BinOp::And => matches!(va, Value::Bool(false)),
        BinOp::Or => matches!(va, Value::Bool(true)),
        _ => unreachable!(),
    }
}

/// Combine both operands of a non-short-circuited `&&`/`||` — the
/// three-valued tail shared by the tree-walking and compiled evaluators.
pub(crate) fn connective_tail(op: BinOp, va: Value, vb: Value) -> Value {
    if connective_shortcircuits(op, &vb) {
        return vb;
    }
    // Neither operand decides: Error dominates, then Undefined.
    if matches!(va, Value::Error) || matches!(vb, Value::Error) {
        return Value::Error;
    }
    if !matches!(va, Value::Bool(_)) && !va.is_exceptional() {
        return Value::Error; // non-boolean operand
    }
    if !matches!(vb, Value::Bool(_)) && !vb.is_exceptional() {
        return Value::Error;
    }
    if matches!(va, Value::Undefined) || matches!(vb, Value::Undefined) {
        return Value::Undefined;
    }
    // Both plain booleans, not short-circuited.
    short_complement(op)
}

fn short_complement(op: BinOp) -> Value {
    // Reaching here means both operands are booleans and the short-circuit
    // value did not occur: a && b with neither false => true; a || b with
    // neither true => false.
    match op {
        BinOp::And => Value::Bool(true),
        BinOp::Or => Value::Bool(false),
        _ => unreachable!(),
    }
}

pub(crate) fn strict_binary(op: BinOp, a: Value, b: Value) -> Value {
    // Strict exceptional propagation: ERROR beats UNDEFINED.
    if matches!(a, Value::Error) || matches!(b, Value::Error) {
        return Value::Error;
    }
    if matches!(a, Value::Undefined) || matches!(b, Value::Undefined) {
        return Value::Undefined;
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, a, b),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => cmp(op, a, b),
        _ => unreachable!("non-strict ops handled earlier"),
    }
}

fn arith(op: BinOp, a: Value, b: Value) -> Value {
    // Integer arithmetic stays integral; any real operand promotes.
    if let (Value::Int(x), Value::Int(y)) = (&a, &b) {
        let (x, y) = (*x, *y);
        return match op {
            BinOp::Add => Value::Int(x.wrapping_add(y)),
            BinOp::Sub => Value::Int(x.wrapping_sub(y)),
            BinOp::Mul => Value::Int(x.wrapping_mul(y)),
            BinOp::Div => {
                if y == 0 {
                    Value::Error
                } else {
                    Value::Int(x.wrapping_div(y))
                }
            }
            BinOp::Mod => {
                if y == 0 {
                    Value::Error
                } else {
                    Value::Int(x.wrapping_rem(y))
                }
            }
            _ => unreachable!(),
        };
    }
    let (Some(x), Some(y)) = (a.as_number(), b.as_number()) else {
        return Value::Error;
    };
    match op {
        BinOp::Add => Value::Real(x + y),
        BinOp::Sub => Value::Real(x - y),
        BinOp::Mul => Value::Real(x * y),
        BinOp::Div => {
            if y == 0.0 {
                Value::Error
            } else {
                Value::Real(x / y)
            }
        }
        BinOp::Mod => {
            if y == 0.0 {
                Value::Error
            } else {
                Value::Real(x % y)
            }
        }
        _ => unreachable!(),
    }
}

fn cmp(op: BinOp, a: Value, b: Value) -> Value {
    // Strings compare with other strings (case-insensitively, as in classic
    // ClassAds); numbers/booleans compare numerically; mixing is an error.
    let ord = match (&a, &b) {
        (Value::Str(x), Value::Str(y)) => {
            // Byte-wise lowercase comparison without building lowered
            // copies — identical ordering to comparing the lowercased
            // strings.
            x.bytes()
                .map(|c| c.to_ascii_lowercase())
                .cmp(y.bytes().map(|c| c.to_ascii_lowercase()))
        }
        _ => {
            let (Some(x), Some(y)) = (a.as_number(), b.as_number()) else {
                return Value::Error;
            };
            match x.partial_cmp(&y) {
                Some(o) => o,
                None => return Value::Error, // NaN
            }
        }
    };
    let r = match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::Ne => !ord.is_eq(),
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!(),
    };
    Value::Bool(r)
}

fn eval_call(name: &str, args: &[Expr], cx: &mut EvalCtx) -> Value {
    let vals: Vec<Value> = args.iter().map(|a| eval_in(a, cx)).collect();
    call_builtin(name, &vals)
}

/// Builtin dispatch over already-evaluated arguments — shared by the
/// tree-walking and compiled evaluators.
pub(crate) fn call_builtin(name: &str, vals: &[Value]) -> Value {
    // Strict builtins: propagate exceptional arguments.
    if vals.iter().any(|v| matches!(v, Value::Error)) {
        return Value::Error;
    }
    match (name, vals) {
        ("floor", [v]) => num_fn(v, f64::floor),
        ("ceiling", [v]) => num_fn(v, f64::ceil),
        ("round", [v]) => num_fn(v, f64::round),
        ("int", [v]) => match v.as_number() {
            Some(x) => Value::Int(x as i64),
            None => exceptional_or_error(v),
        },
        ("real", [v]) => match v.as_number() {
            Some(x) => Value::Real(x),
            None => exceptional_or_error(v),
        },
        ("string", [v]) => match v {
            Value::Undefined => Value::Undefined,
            Value::Str(s) => Value::Str(s.clone()),
            v => Value::Str(v.to_string()),
        },
        ("strcat", vs) => {
            let mut s = String::new();
            for v in vs {
                match v {
                    Value::Undefined => return Value::Undefined,
                    Value::Str(x) => s.push_str(x),
                    v => s.push_str(&v.to_string()),
                }
            }
            Value::Str(s)
        }
        ("toupper", [Value::Str(s)]) => Value::Str(s.to_ascii_uppercase()),
        ("tolower", [Value::Str(s)]) => Value::Str(s.to_ascii_lowercase()),
        ("size", [Value::Str(s)]) => Value::Int(s.len() as i64),
        ("isundefined", [v]) => Value::Bool(matches!(v, Value::Undefined)),
        ("iserror", [_v]) => Value::Bool(false), // errors already propagated
        // Case-SENSITIVE string comparison (unlike ==), as in Condor.
        ("strcmp", [Value::Str(a), Value::Str(b)]) => Value::Int(match a.cmp(b) {
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => 1,
        }),
        // Membership in a comma/space separated string list.
        ("stringlistmember", [Value::Str(item), Value::Str(list)]) => Value::Bool(
            list.split([',', ' '])
                .map(str::trim)
                .any(|x| !x.is_empty() && x.eq_ignore_ascii_case(item)),
        ),
        ("stringlistsize", [Value::Str(list)]) => Value::Int(
            list.split([',', ' '])
                .map(str::trim)
                .filter(|x| !x.is_empty())
                .count() as i64,
        ),
        // ifThenElse with ClassAd semantics: undefined condition is
        // undefined (unlike ?: this is a function, but Condor implements
        // the same tri-state behaviour).
        ("ifthenelse", [c, t, e]) => match c {
            Value::Bool(true) => t.clone(),
            Value::Bool(false) => e.clone(),
            Value::Undefined => Value::Undefined,
            _ => Value::Error,
        },
        ("min", [a, b]) => match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    a.clone()
                } else {
                    b.clone()
                }
            }
            _ => exceptional_or_error(if a.as_number().is_none() { a } else { b }),
        },
        ("max", [a, b]) => match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => {
                if x >= y {
                    a.clone()
                } else {
                    b.clone()
                }
            }
            _ => exceptional_or_error(if a.as_number().is_none() { a } else { b }),
        },
        _ => Value::Error,
    }
}

fn num_fn(v: &Value, f: impl Fn(f64) -> f64) -> Value {
    match v.as_number() {
        Some(x) => Value::Int(f(x) as i64),
        None => exceptional_or_error(v),
    }
}

fn exceptional_or_error(v: &Value) -> Value {
    if matches!(v, Value::Undefined) {
        Value::Undefined
    } else {
        Value::Error
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn ev(src: &str) -> Value {
        let ad = ClassAd::new();
        eval(&parse_expr(src).unwrap(), &ad, None)
    }

    fn ev_in(src: &str, my: &str) -> Value {
        let ad = ClassAd::parse(my).unwrap();
        eval(&parse_expr(src).unwrap(), &ad, None)
    }

    #[test]
    fn arithmetic_int_and_real() {
        assert_eq!(ev("1 + 2 * 3"), Value::Int(7));
        assert_eq!(ev("7 / 2"), Value::Int(3));
        assert_eq!(ev("7.0 / 2"), Value::Real(3.5));
        assert_eq!(ev("7 % 3"), Value::Int(1));
        assert_eq!(ev("1 / 0"), Value::Error);
        assert_eq!(ev("1 % 0"), Value::Error);
        assert_eq!(ev("-(3 - 5)"), Value::Int(2));
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev("2 < 3"), Value::Bool(true));
        assert_eq!(ev("2.5 >= 2.5"), Value::Bool(true));
        assert_eq!(ev("\"abc\" == \"ABC\""), Value::Bool(true)); // case-insensitive
        assert_eq!(ev("\"abc\" < \"abd\""), Value::Bool(true));
        assert_eq!(ev("\"abc\" == 3"), Value::Error); // type mismatch
        assert_eq!(ev("TRUE == 1"), Value::Bool(true)); // bool coerces numerically
    }

    #[test]
    fn undefined_propagation() {
        assert_eq!(ev("missing + 1"), Value::Undefined);
        assert_eq!(ev("missing > 5"), Value::Undefined);
        assert_eq!(ev("!missing"), Value::Undefined);
        assert_eq!(ev("-missing"), Value::Undefined);
    }

    #[test]
    fn three_valued_connectives() {
        assert_eq!(ev("FALSE && missing"), Value::Bool(false));
        assert_eq!(ev("missing && FALSE"), Value::Bool(false));
        assert_eq!(ev("TRUE || missing"), Value::Bool(true));
        assert_eq!(ev("missing || TRUE"), Value::Bool(true));
        assert_eq!(ev("TRUE && missing"), Value::Undefined);
        assert_eq!(ev("missing || FALSE"), Value::Undefined);
        assert_eq!(ev("ERROR && TRUE"), Value::Error);
        assert_eq!(ev("FALSE && ERROR"), Value::Bool(false));
        assert_eq!(ev("TRUE || ERROR"), Value::Bool(true));
        assert_eq!(ev("1 && TRUE"), Value::Error); // non-boolean operand
    }

    #[test]
    fn meta_equality_total() {
        assert_eq!(ev("missing =?= UNDEFINED"), Value::Bool(true));
        assert_eq!(ev("missing =!= UNDEFINED"), Value::Bool(false));
        assert_eq!(ev("5 =?= 5.0"), Value::Bool(true));
        assert_eq!(ev("ERROR =?= ERROR"), Value::Bool(true));
        assert_eq!(ev("\"A\" =?= \"a\""), Value::Bool(true));
    }

    #[test]
    fn conditional() {
        assert_eq!(ev("2 > 1 ? 10 : 20"), Value::Int(10));
        assert_eq!(ev("2 < 1 ? 10 : 20"), Value::Int(20));
        assert_eq!(ev("missing ? 10 : 20"), Value::Undefined);
        assert_eq!(ev("5 ? 10 : 20"), Value::Error);
    }

    #[test]
    fn attribute_resolution_and_chaining() {
        let my = "a = 5\nb = a * 2\nc = b + a\n";
        assert_eq!(ev_in("c", my), Value::Int(15));
        assert_eq!(ev_in("MY.b", my), Value::Int(10));
        assert_eq!(ev_in("TARGET.b", my), Value::Undefined); // no target
    }

    #[test]
    fn circular_references_are_undefined() {
        let my = "a = b\nb = a\n";
        assert_eq!(ev_in("a", my), Value::Undefined);
        let my2 = "x = x + 1\n";
        assert_eq!(ev_in("x", my2), Value::Undefined);
    }

    #[test]
    fn cross_ad_resolution() {
        let my = ClassAd::parse("req = TARGET.load > MY.threshold\nthreshold = 50\n").unwrap();
        let target = ClassAd::parse("load = 75\n").unwrap();
        let v = eval(&parse_expr("req").unwrap(), &my, Some(&target));
        assert_eq!(v, Value::Bool(true));
        let cold = ClassAd::parse("load = 10\n").unwrap();
        let v = eval(&parse_expr("req").unwrap(), &my, Some(&cold));
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn unscoped_falls_through_to_target() {
        let my = ClassAd::parse("threshold = 50\n").unwrap();
        let target = ClassAd::parse("load = 99\n").unwrap();
        // `load` not in MY -> found in TARGET; inside TARGET it is a
        // literal.
        let v = eval(&parse_expr("load > threshold").unwrap(), &my, Some(&target));
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn target_scope_swaps_perspective() {
        // TARGET.req refers into the target ad; inside it, MY means the
        // target itself.
        let my = ClassAd::parse("mem = 100\n").unwrap();
        let target = ClassAd::parse("req = MY.mem > 500\nmem = 1000\n").unwrap();
        let v = eval(&parse_expr("TARGET.req").unwrap(), &my, Some(&target));
        assert_eq!(v, Value::Bool(true)); // target's own mem (1000) > 500
    }

    #[test]
    fn builtins() {
        assert_eq!(ev("floor(2.9)"), Value::Int(2));
        assert_eq!(ev("ceiling(2.1)"), Value::Int(3));
        assert_eq!(ev("round(2.5)"), Value::Int(3));
        assert_eq!(ev("int(2.9)"), Value::Int(2));
        assert_eq!(ev("real(3)"), Value::Real(3.0));
        assert_eq!(ev("size(\"hello\")"), Value::Int(5));
        assert_eq!(ev("toUpper(\"aBc\")"), Value::Str("ABC".into()));
        assert_eq!(ev("toLower(\"aBc\")"), Value::Str("abc".into()));
        assert_eq!(
            ev("strcat(\"a\", 1, \"-\", 2.0)"),
            Value::Str("a1-2.0".into())
        );
        assert_eq!(ev("isUndefined(missing)"), Value::Bool(true));
        assert_eq!(ev("isUndefined(1)"), Value::Bool(false));
        assert_eq!(ev("nosuchfn(1)"), Value::Error);
        assert_eq!(ev("floor(\"x\")"), Value::Error);
        assert_eq!(ev("floor(missing)"), Value::Undefined);
    }

    #[test]
    fn condor_builtins() {
        assert_eq!(ev("strcmp(\"a\", \"b\")"), Value::Int(-1));
        assert_eq!(ev("strcmp(\"b\", \"a\")"), Value::Int(1));
        // strcmp is case-sensitive, unlike ==.
        assert_eq!(ev("strcmp(\"A\", \"a\")"), Value::Int(-1));
        assert_eq!(ev("\"A\" == \"a\""), Value::Bool(true));
        assert_eq!(
            ev("stringListMember(\"vanilla\", \"standard, vanilla, java\")"),
            Value::Bool(true)
        );
        assert_eq!(
            ev("stringListMember(\"mpi\", \"standard, vanilla\")"),
            Value::Bool(false)
        );
        assert_eq!(ev("stringListSize(\"a, b c,,d\")"), Value::Int(4));
        assert_eq!(
            ev("ifThenElse(2 > 1, \"y\", \"n\")"),
            Value::Str("y".into())
        );
        assert_eq!(ev("ifThenElse(missing, 1, 2)"), Value::Undefined);
        assert_eq!(ev("ifThenElse(5, 1, 2)"), Value::Error);
        assert_eq!(ev("min(3, 2.5)"), Value::Real(2.5));
        assert_eq!(ev("max(3, 2.5)"), Value::Int(3));
        assert_eq!(ev("min(\"x\", 1)"), Value::Error);
    }
}
