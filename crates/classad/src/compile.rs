//! Pre-compiled ClassAd expressions.
//!
//! The Hawkeye Manager evaluates the *same* constraint or `Requirements`
//! expression against every ad in the pool on every query.  Walking the
//! AST per evaluation re-dispatches on node tags and re-boxes operands;
//! [`CompiledExpr`] flattens the tree once into a postfix op vector with
//! explicit jumps for the non-strict operators, evaluated by a small
//! stack machine with no recursion over the compiled expression itself.
//!
//! Attribute references still resolve through [`crate::eval::eval_attr`]
//! (referenced attribute *bodies* are evaluated by the tree walker, with
//! the same MY/TARGET swap and cycle detection), and all value semantics
//! are delegated to the helpers the tree walker itself uses
//! ([`strict_binary`], [`connective_tail`], [`call_builtin`], ...), so a
//! compiled evaluation is bit-for-bit identical to [`crate::eval::eval`]
//! on the same expression — a property the gridmon-diff suite asserts
//! over randomly generated expressions and ads.

use crate::ad::ClassAd;
use crate::eval::{
    call_builtin, connective_shortcircuits, connective_tail, eval_attr, eval_unary, strict_binary,
    EvalCtx,
};
use crate::expr::{BinOp, Expr, Scope, UnOp};
use crate::value::Value;
use gintern::Sym;

/// One instruction of the flattened expression.
#[derive(Debug, Clone)]
enum Op {
    /// Push a literal value.
    Lit(Value),
    /// Resolve an attribute reference (index into the name table).
    Attr { scope: Scope, name: u32 },
    /// Pop one value, apply a unary operator.
    Unary(UnOp),
    /// Pop two values, apply a strict binary operator (also `=?=`/`=!=`,
    /// which always evaluate both sides).
    Strict(BinOp),
    /// `&&`/`||` after the left operand: if it short-circuits, leave it as
    /// the result and jump to `skip` (past the combine op).
    Check { op: BinOp, skip: u32 },
    /// `&&`/`||` after both operands: pop both, combine three-valued.
    Combine(BinOp),
    /// `?:` after the condition: pop it; `true` falls through into the
    /// then-branch, `false` jumps to `else_at`, `UNDEFINED`/non-boolean
    /// push their result and jump to `end_at`.
    Branch { else_at: u32, end_at: u32 },
    /// Unconditional jump (end of the then-branch).
    Jmp { to: u32 },
    /// Pop `argc` arguments (in order), call a builtin by name index.
    Call { name: u32, argc: u32 },
}

/// A ClassAd expression compiled to a flat postfix program with an
/// interned attribute/builtin name table.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    ops: Vec<Op>,
    names: Vec<Sym>,
}

impl CompiledExpr {
    /// Flatten `expr`.  Compilation never fails: every AST shape has a
    /// direct op sequence.
    pub fn compile(expr: &Expr) -> CompiledExpr {
        let mut c = CompiledExpr {
            ops: Vec::new(),
            names: Vec::new(),
        };
        c.emit(expr);
        c
    }

    /// Number of instructions (diagnostics).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn intern(&mut self, name: Sym) -> u32 {
        match self.names.iter().position(|&n| n == name) {
            Some(i) => i as u32,
            None => {
                self.names.push(name);
                (self.names.len() - 1) as u32
            }
        }
    }

    fn emit(&mut self, expr: &Expr) {
        match expr {
            Expr::Lit(v) => self.ops.push(Op::Lit(v.clone())),
            Expr::Attr { scope, name, .. } => {
                let name = self.intern(*name);
                self.ops.push(Op::Attr {
                    scope: *scope,
                    name,
                });
            }
            Expr::Unary(op, e) => {
                self.emit(e);
                self.ops.push(Op::Unary(*op));
            }
            Expr::Binary(op @ (BinOp::And | BinOp::Or), a, b) => {
                self.emit(a);
                let check_at = self.ops.len();
                self.ops.push(Op::Check { op: *op, skip: 0 });
                self.emit(b);
                self.ops.push(Op::Combine(*op));
                let end = self.ops.len() as u32;
                let Op::Check { skip, .. } = &mut self.ops[check_at] else {
                    unreachable!()
                };
                *skip = end;
            }
            Expr::Binary(op, a, b) => {
                self.emit(a);
                self.emit(b);
                self.ops.push(Op::Strict(*op));
            }
            Expr::Cond(c, t, e) => {
                self.emit(c);
                let branch_at = self.ops.len();
                self.ops.push(Op::Branch {
                    else_at: 0,
                    end_at: 0,
                });
                self.emit(t);
                let jmp_at = self.ops.len();
                self.ops.push(Op::Jmp { to: 0 });
                let else_pos = self.ops.len() as u32;
                self.emit(e);
                let end_pos = self.ops.len() as u32;
                let Op::Branch { else_at, end_at } = &mut self.ops[branch_at] else {
                    unreachable!()
                };
                (*else_at, *end_at) = (else_pos, end_pos);
                let Op::Jmp { to } = &mut self.ops[jmp_at] else {
                    unreachable!()
                };
                *to = end_pos;
            }
            Expr::Call(name, args) => {
                for a in args {
                    self.emit(a);
                }
                let name = self.intern(*name);
                self.ops.push(Op::Call {
                    name,
                    argc: args.len() as u32,
                });
            }
        }
    }

    /// Run the program in an existing context (shares cycle-detection
    /// state with any enclosing tree-walking evaluation).
    pub fn eval_in(&self, cx: &mut EvalCtx) -> Value {
        let mut stack: Vec<Value> = Vec::with_capacity(8);
        let mut pc = 0usize;
        while pc < self.ops.len() {
            match &self.ops[pc] {
                Op::Lit(v) => stack.push(v.clone()),
                Op::Attr { scope, name } => {
                    let v = eval_attr(*scope, self.names[*name as usize], cx);
                    stack.push(v);
                }
                Op::Unary(op) => {
                    let v = stack.pop().expect("operand");
                    stack.push(eval_unary(*op, v));
                }
                Op::Strict(op) => {
                    let b = stack.pop().expect("rhs");
                    let a = stack.pop().expect("lhs");
                    let v = match op {
                        BinOp::MetaEq => Value::Bool(a.meta_eq(&b)),
                        BinOp::MetaNe => Value::Bool(!a.meta_eq(&b)),
                        _ => strict_binary(*op, a, b),
                    };
                    stack.push(v);
                }
                Op::Check { op, skip } => {
                    if connective_shortcircuits(*op, stack.last().expect("lhs")) {
                        pc = *skip as usize;
                        continue;
                    }
                }
                Op::Combine(op) => {
                    let vb = stack.pop().expect("rhs");
                    let va = stack.pop().expect("lhs");
                    stack.push(connective_tail(*op, va, vb));
                }
                Op::Branch { else_at, end_at } => match stack.pop().expect("condition") {
                    Value::Bool(true) => {}
                    Value::Bool(false) => {
                        pc = *else_at as usize;
                        continue;
                    }
                    Value::Undefined => {
                        stack.push(Value::Undefined);
                        pc = *end_at as usize;
                        continue;
                    }
                    _ => {
                        stack.push(Value::Error);
                        pc = *end_at as usize;
                        continue;
                    }
                },
                Op::Jmp { to } => {
                    pc = *to as usize;
                    continue;
                }
                Op::Call { name, argc } => {
                    let at = stack.len() - *argc as usize;
                    let vals: Vec<Value> = stack.split_off(at);
                    stack.push(call_builtin(&self.names[*name as usize], &vals));
                }
            }
            pc += 1;
        }
        stack.pop().expect("result")
    }

    /// Evaluate against `my` (and optionally `target`) — the compiled
    /// counterpart of [`crate::eval::eval`].
    pub fn eval(&self, my: &ClassAd, target: Option<&ClassAd>) -> Value {
        let mut cx = EvalCtx::new(my, target);
        self.eval_in(&mut cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::parser::parse_expr;

    fn agree(src: &str, my: &ClassAd, target: Option<&ClassAd>) {
        let e = parse_expr(src).unwrap();
        let c = CompiledExpr::compile(&e);
        assert_eq!(c.eval(my, target), eval(&e, my, target), "{src}");
    }

    #[test]
    fn compiled_agrees_with_tree_walker() {
        let my = ClassAd::parse(
            "a = 5\nb = a * 2\nname = \"lucky7\"\nload = 62.5\n\
             cyc = cyc2\ncyc2 = cyc\n",
        )
        .unwrap();
        let target = ClassAd::parse("load = 10\nreq = MY.load < 50\n").unwrap();
        for src in [
            "1 + 2 * 3",
            "7 / 0",
            "b + a",
            "missing + 1",
            "cyc",
            "FALSE && missing",
            "missing && FALSE",
            "TRUE || ERROR",
            "1 && TRUE",
            "missing =?= UNDEFINED",
            "load > 50 ? \"hot\" : \"cold\"",
            "missing ? 1 : 2",
            "5 ? 1 : 2",
            "floor(load / 10)",
            "strcat(name, \"-\", a)",
            "stringListMember(\"x\", \"a, x, b\")",
            "TARGET.req",
            "TARGET.load < load",
            "nosuchfn(1)",
            "!(load > 50) || missing",
            "-(a - b)",
            "min(a, load)",
        ] {
            agree(src, &my, Some(&target));
            agree(src, &my, None);
        }
    }

    #[test]
    fn short_circuit_skips_rhs_attr_resolution() {
        // `FALSE && x` must not even resolve x; equality with the tree
        // walker (which also short-circuits) is checked via a cycle that
        // would otherwise surface as UNDEFINED vs the literal result.
        let my = ClassAd::parse("flag = FALSE\n").unwrap();
        agree("flag && nosuch", &my, None);
        agree("!flag || nosuch", &my, None);
    }

    #[test]
    fn name_table_interns_repeats() {
        let e = parse_expr("x + x + x > y").unwrap();
        let c = CompiledExpr::compile(&e);
        assert_eq!(c.names.len(), 2);
    }

    #[test]
    fn nested_conditionals_jump_correctly() {
        let my = ClassAd::parse("x = 2\n").unwrap();
        for src in [
            "x > 1 ? (x > 3 ? 1 : 2) : 3",
            "x > 3 ? 1 : x > 1 ? 2 : 3",
            "(x ? 1 : 2) + 10",
        ] {
            agree(src, &my, None);
        }
    }
}
