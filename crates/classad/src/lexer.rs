//! Tokenizer for the classic ClassAd expression language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Int(i64),
    Real(f64),
    Str(String),
    /// Identifier (attribute name, TRUE/FALSE/UNDEFINED/ERROR keywords are
    /// resolved by the parser, as are MY/TARGET scopes).
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Question,
    Colon,
    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Not,
    And,
    Or,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    MetaEq,
    MetaNe,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(i) => write!(f, "{i}"),
            Token::Real(r) => write!(f, "{r}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Ident(s) => write!(f, "{s}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Question => write!(f, "?"),
            Token::Colon => write!(f, ":"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Not => write!(f, "!"),
            Token::And => write!(f, "&&"),
            Token::Or => write!(f, "||"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::MetaEq => write!(f, "=?="),
            Token::MetaNe => write!(f, "=!="),
        }
    }
}

/// Lexing error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize an expression string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let err = |i: usize, m: &str| LexError {
        offset: i,
        message: m.to_string(),
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '?' => {
                out.push(Token::Question);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push(Token::And);
                    i += 2;
                } else {
                    return Err(err(i, "expected '&&'"));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Token::Or);
                    i += 2;
                } else {
                    return Err(err(i, "expected '||'"));
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Not);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => match (bytes.get(i + 1), bytes.get(i + 2)) {
                (Some(b'='), _) => {
                    out.push(Token::Eq);
                    i += 2;
                }
                (Some(b'?'), Some(b'=')) => {
                    out.push(Token::MetaEq);
                    i += 3;
                }
                (Some(b'!'), Some(b'=')) => {
                    out.push(Token::MetaNe);
                    i += 3;
                }
                _ => return Err(err(i, "expected '==', '=?=' or '=!='")),
            },
            '"' => {
                let (s, next) = lex_string(input, i)?;
                out.push(Token::Str(s));
                i = next;
            }
            '.' => {
                // Leading-dot real like `.5` or the scope dot `MY.Attr`
                // (the parser handles Dot after an ident).
                if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let (t, next) = lex_number(input, i)?;
                    out.push(t);
                    i = next;
                } else {
                    out.push(Token::Dot);
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let (t, next) = lex_number(input, i)?;
                out.push(t);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            _ => return Err(err(i, &format!("unexpected character '{c}'"))),
        }
    }
    Ok(out)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize), LexError> {
    let bytes = input.as_bytes();
    let mut s = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((s, i + 1)),
            b'\\' => {
                let Some(&esc) = bytes.get(i + 1) else {
                    return Err(LexError {
                        offset: i,
                        message: "dangling escape".into(),
                    });
                };
                match esc {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    c => s.push(c as char),
                }
                i += 2;
            }
            _ => {
                // Multi-byte UTF-8 passthrough.
                let ch = input[i..].chars().next().unwrap();
                s.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    Err(LexError {
        offset: start,
        message: "unterminated string".into(),
    })
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut is_real = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        is_real = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    } else if i < bytes.len() && bytes[i] == b'.' && i > start {
        // `5.` style real.
        is_real = true;
        i += 1;
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_real = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    if is_real {
        text.parse::<f64>()
            .map(|r| (Token::Real(r), i))
            .map_err(|e| LexError {
                offset: start,
                message: format!("bad real literal: {e}"),
            })
    } else {
        text.parse::<i64>()
            .map(|n| (Token::Int(n), i))
            .map_err(|e| LexError {
                offset: start,
                message: format!("bad integer literal: {e}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_operators() {
        let toks = lex("a && b || !c =?= d =!= e == f != g <= h >= i").unwrap();
        assert!(toks.contains(&Token::And));
        assert!(toks.contains(&Token::Or));
        assert!(toks.contains(&Token::Not));
        assert!(toks.contains(&Token::MetaEq));
        assert!(toks.contains(&Token::MetaNe));
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ge));
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(lex("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(lex("2.5").unwrap(), vec![Token::Real(2.5)]);
        assert_eq!(lex("1e3").unwrap(), vec![Token::Real(1000.0)]);
        assert_eq!(lex("2.5e-1").unwrap(), vec![Token::Real(0.25)]);
        assert_eq!(lex(".5").unwrap(), vec![Token::Real(0.5)]);
    }

    #[test]
    fn lex_strings_with_escapes() {
        assert_eq!(
            lex("\"hi \\\"there\\\"\"").unwrap(),
            vec![Token::Str("hi \"there\"".into())]
        );
        assert_eq!(lex("\"a\\nb\"").unwrap(), vec![Token::Str("a\nb".into())]);
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn lex_scoped_attr() {
        let toks = lex("MY.CpuLoad > TARGET.Threshold").unwrap();
        assert_eq!(toks[0], Token::Ident("MY".into()));
        assert_eq!(toks[1], Token::Dot);
        assert_eq!(toks[2], Token::Ident("CpuLoad".into()));
    }

    #[test]
    fn lex_rejects_garbage() {
        assert!(lex("a # b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a = b").is_err()); // bare '=' is not an operator
    }

    #[test]
    fn lex_whitespace_insensitive() {
        assert_eq!(lex(" 1+2 ").unwrap(), lex("1 + 2").unwrap());
    }
}
