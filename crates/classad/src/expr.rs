//! ClassAd expression AST and pretty-printing.
//!
//! Attribute and builtin names are interned [`Sym`]s: constructing,
//! cloning and comparing references costs no allocation, and scope
//! resolution in the evaluator compares symbol ids instead of strings.

use crate::value::Value;
use gintern::Sym;
use std::fmt;

/// Attribute-reference scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Unscoped: look up in the evaluating ad first, then the target.
    None,
    /// `MY.attr` — only the evaluating ad.
    My,
    /// `TARGET.attr` — only the candidate ad.
    Target,
}

/// Binary operators, in the classic ClassAd grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    MetaEq,
    MetaNe,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    /// Binding strength (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::MetaEq | BinOp::MetaNe => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::MetaEq => "=?=",
            BinOp::MetaNe => "=!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
    Plus,
}

/// A ClassAd expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Lit(Value),
    /// Attribute reference; the name is stored lowercase (ClassAd names
    /// are case-insensitive) with the original case kept for printing.
    Attr {
        scope: Scope,
        name: Sym,
        printed: Sym,
    },
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? then : else`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Builtin function call.
    Call(Sym, Vec<Expr>),
}

/// Intern a name's lowercase form without allocating when it is already
/// lowercase.
pub(crate) fn intern_lower(name: &str) -> Sym {
    if name.bytes().any(|b| b.is_ascii_uppercase()) {
        gintern::intern(&name.to_ascii_lowercase())
    } else {
        gintern::intern(name)
    }
}

impl Expr {
    pub fn attr(name: &str) -> Expr {
        Expr::Attr {
            scope: Scope::None,
            name: intern_lower(name),
            printed: gintern::intern(name),
        }
    }

    pub fn scoped_attr(scope: Scope, name: &str) -> Expr {
        Expr::Attr {
            scope,
            name: intern_lower(name),
            printed: gintern::intern(name),
        }
    }

    pub fn int(i: i64) -> Expr {
        Expr::Lit(Value::Int(i))
    }

    pub fn real(r: f64) -> Expr {
        Expr::Lit(Value::Real(r))
    }

    pub fn string(s: &str) -> Expr {
        Expr::Lit(Value::Str(s.to_string()))
    }

    pub fn boolean(b: bool) -> Expr {
        Expr::Lit(Value::Bool(b))
    }

    /// Canonical form: fold unary negation of numeric literals (the parser
    /// produces this form; `normalize` lets externally built ASTs compare
    /// equal after a print/parse cycle).
    pub fn normalize(self) -> Expr {
        match self {
            Expr::Unary(UnOp::Neg, e) => match e.normalize() {
                Expr::Lit(Value::Int(i)) => Expr::Lit(Value::Int(-i)),
                Expr::Lit(Value::Real(r)) => Expr::Lit(Value::Real(-r)),
                e => Expr::Unary(UnOp::Neg, Box::new(e)),
            },
            Expr::Unary(op, e) => Expr::Unary(op, Box::new(e.normalize())),
            Expr::Binary(op, a, b) => {
                Expr::Binary(op, Box::new(a.normalize()), Box::new(b.normalize()))
            }
            Expr::Cond(c, t, e) => Expr::Cond(
                Box::new(c.normalize()),
                Box::new(t.normalize()),
                Box::new(e.normalize()),
            ),
            Expr::Call(n, args) => Expr::Call(n, args.into_iter().map(Expr::normalize).collect()),
            e => e,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Attr { scope, printed, .. } => match scope {
                Scope::None => write!(f, "{printed}"),
                Scope::My => write!(f, "MY.{printed}"),
                Scope::Target => write!(f, "TARGET.{printed}"),
            },
            Expr::Unary(op, e) => {
                let sym = match op {
                    UnOp::Not => "!",
                    UnOp::Neg => "-",
                    UnOp::Plus => "+",
                };
                write!(f, "{sym}")?;
                // Unary binds tighter than everything binary.
                e.fmt_prec(f, 7)
            }
            Expr::Binary(op, a, b) => {
                let prec = op.precedence();
                let need_parens = prec < parent_prec;
                if need_parens {
                    write!(f, "(")?;
                }
                a.fmt_prec(f, prec)?;
                write!(f, " {} ", op.symbol())?;
                // Left-associative: the right child needs parens at equal
                // precedence.
                b.fmt_prec(f, prec + 1)?;
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Cond(c, t, e) => {
                let need_parens = parent_prec > 0;
                if need_parens {
                    write!(f, "(")?;
                }
                c.fmt_prec(f, 1)?;
                write!(f, " ? ")?;
                t.fmt_prec(f, 0)?;
                write!(f, " : ")?;
                e.fmt_prec(f, 0)?;
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn display_parenthesises_correctly() {
        // (1 + 2) * 3 keeps parens; 1 + 2 * 3 doesn't add them.
        let e = Expr::Binary(
            BinOp::Mul,
            Box::new(Expr::Binary(
                BinOp::Add,
                Box::new(Expr::int(1)),
                Box::new(Expr::int(2)),
            )),
            Box::new(Expr::int(3)),
        );
        assert_eq!(e.to_string(), "(1 + 2) * 3");
        let e2 = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::int(1)),
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::int(2)),
                Box::new(Expr::int(3)),
            )),
        );
        assert_eq!(e2.to_string(), "1 + 2 * 3");
    }

    #[test]
    fn attr_names_lowercased_but_printed_as_written() {
        let e = Expr::scoped_attr(Scope::Target, "CpuLoad");
        match &e {
            Expr::Attr { name, printed, .. } => {
                assert_eq!(name.as_str(), "cpuload");
                assert_eq!(printed.as_str(), "CpuLoad");
            }
            _ => unreachable!(),
        }
        assert_eq!(e.to_string(), "TARGET.CpuLoad");
    }

    #[test]
    fn display_cond_and_call() {
        let e = Expr::Cond(
            Box::new(Expr::attr("x")),
            Box::new(Expr::int(1)),
            Box::new(Expr::int(2)),
        );
        assert_eq!(e.to_string(), "x ? 1 : 2");
        let c = Expr::Call("floor".into(), vec![Expr::real(2.5)]);
        assert_eq!(c.to_string(), "floor(2.5)");
    }
}
