//! # classad — the Condor classic ClassAd language
//!
//! Hawkeye is built on Condor's ClassAd (classified advertisement)
//! technology: every resource describes itself as a set of
//! `Attribute = Expression` pairs, and the Manager matches *Trigger*
//! ClassAds against *Startd* ClassAds to detect problems ("CPU load is
//! greater than 50").  This crate implements the classic ClassAd language
//! as used by Condor ~7.x / Hawkeye 0.1.4:
//!
//! * the expression grammar (ternary conditional, boolean, comparison —
//!   including the meta-operators `=?=`/`=!=` — arithmetic, unary
//!   operators, attribute references with optional `MY.`/`TARGET.` scopes,
//!   and a small set of builtin functions);
//! * three-valued evaluation semantics with `UNDEFINED` and `ERROR`
//!   propagation;
//! * [`ClassAd`] records with case-insensitive attribute names and classic
//!   newline-separated serialization;
//! * two-way (gang) [`matchmaking`](matchmaker::symmetric_match) of
//!   `Requirements`/`Rank` pairs, the operation at the heart of the
//!   Hawkeye Manager.
//!
//! ```
//! use classad::{ClassAd, matchmaker};
//!
//! let machine = ClassAd::parse("
//!     Machine = \"lucky4.mcs.anl.gov\"\n\
//!     OpSys = \"LINUX\"\n\
//!     CpuLoad = 62.5\n\
//!     Requirements = TRUE\n").unwrap();
//! let trigger = ClassAd::parse("
//!     Requirements = TARGET.CpuLoad > 50 && TARGET.OpSys == \"linux\"\n").unwrap();
//! assert!(matchmaker::symmetric_match(&trigger, &machine));
//! ```

pub mod ad;
pub mod compile;
pub mod eval;
pub mod expr;
pub mod lexer;
pub mod matchmaker;
pub mod parser;
pub mod value;

pub use ad::ClassAd;
pub use compile::CompiledExpr;
pub use eval::{eval, EvalCtx};
pub use expr::{BinOp, Expr, Scope, UnOp};
pub use parser::{parse_expr, ParseError};
pub use value::Value;

/// Differential-oracle aliases: the tree-walking evaluator *is* the
/// reference implementation the compiled kernel is checked against (it
/// stays the default path for nested attribute bodies, so it is always
/// compiled in; the feature only makes the oracle role explicit for the
/// gridmon-diff suite).
#[cfg(feature = "reference-kernel")]
pub mod reference {
    pub use crate::eval::eval as eval_reference;
    pub use crate::matchmaker::matches_constraint as matches_constraint_reference;
    pub use crate::matchmaker::requirements_met as requirements_met_reference;
    pub use crate::matchmaker::symmetric_match as symmetric_match_reference;
}
