//! ClassAd runtime values and the three-valued logic primitives.
//!
//! Classic ClassAds extend the usual scalar types with two distinguished
//! values: `UNDEFINED` (an attribute reference that does not resolve) and
//! `ERROR` (a type mismatch or arithmetic fault).  Most operators are
//! *strict*: they propagate `ERROR` and then `UNDEFINED`.  The boolean
//! connectives and the meta-equality operators are the deliberate
//! exceptions, implemented in [`mod@crate::eval`].

use std::fmt;

/// A ClassAd runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Undefined,
    Error,
    Bool(bool),
    Int(i64),
    Real(f64),
    Str(String),
}

impl Value {
    /// Classify for type checks.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Error => "error",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Real(_) => "real",
            Value::Str(_) => "string",
        }
    }

    pub fn is_exceptional(&self) -> bool {
        matches!(self, Value::Undefined | Value::Error)
    }

    /// Numeric view (ints and reals; booleans coerce as in classic
    /// ClassAds: TRUE=1, FALSE=0).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Strict three-valued boolean view: numbers are *not* booleans in
    /// conditionals (classic ClassAds require a boolean), but comparison
    /// results are.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The `=?=` meta-equality: total, never raises.  Same type and equal
    /// value; `UNDEFINED =?= UNDEFINED` is true.  String comparison is
    /// case-insensitive, numbers compare across int/real.
    pub fn meta_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undefined, Value::Undefined) => true,
            (Value::Error, Value::Error) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => a == b,
            (Value::Int(a), Value::Real(b)) | (Value::Real(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Str(a), Value::Str(b)) => a.eq_ignore_ascii_case(b),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Undefined => write!(f, "UNDEFINED"),
            Value::Error => write!(f, "ERROR"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.abs() < 1e15 {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
            Value::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::Undefined.type_name(), "undefined");
        assert_eq!(Value::Int(1).type_name(), "integer");
        assert_eq!(Value::Str("x".into()).type_name(), "string");
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_number(), Some(3.0));
        assert_eq!(Value::Real(2.5).as_number(), Some(2.5));
        assert_eq!(Value::Bool(true).as_number(), Some(1.0));
        assert_eq!(Value::Str("3".into()).as_number(), None);
        assert_eq!(Value::Undefined.as_number(), None);
    }

    #[test]
    fn meta_eq_semantics() {
        assert!(Value::Undefined.meta_eq(&Value::Undefined));
        assert!(!Value::Undefined.meta_eq(&Value::Error));
        assert!(Value::Int(2).meta_eq(&Value::Real(2.0)));
        assert!(Value::Str("Linux".into()).meta_eq(&Value::Str("LINUX".into())));
        assert!(!Value::Int(1).meta_eq(&Value::Bool(true)));
    }

    #[test]
    fn display_round_trippable_forms() {
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Real(2.0).to_string(), "2.0");
        assert_eq!(Value::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
        assert_eq!(Value::Undefined.to_string(), "UNDEFINED");
    }
}
