//! ClassAd matchmaking.
//!
//! Condor's central operation: two ads *match* when each ad's
//! `Requirements` expression evaluates to `TRUE` with the other ad as
//! `TARGET`.  `Rank` orders multiple matches (higher is better; a missing
//! or non-numeric rank counts as 0).  The Hawkeye Manager uses one-sided
//! trigger matching (the trigger's `Requirements` against each Startd ad)
//! and the full symmetric form for job placement.

use crate::ad::ClassAd;
use crate::compile::CompiledExpr;
use crate::eval::{eval, EvalCtx};
use crate::expr::Expr;
use crate::value::Value;

/// Evaluate `ad`'s `Requirements` against `target`.  A missing
/// `Requirements` attribute counts as `TRUE` (Condor semantics for ads
/// that don't constrain their matches).
pub fn requirements_met(ad: &ClassAd, target: &ClassAd) -> bool {
    match ad.get("requirements") {
        None => true,
        Some(_) => matches!(
            eval(&Expr::attr("requirements"), ad, Some(target)),
            Value::Bool(true)
        ),
    }
}

/// Two-way match: both ads' requirements hold against each other.
pub fn symmetric_match(a: &ClassAd, b: &ClassAd) -> bool {
    requirements_met(a, b) && requirements_met(b, a)
}

/// One-sided constraint evaluation (e.g. `condor_status -constraint`):
/// evaluate an arbitrary expression against `ad` (no target).
pub fn matches_constraint(ad: &ClassAd, constraint: &Expr) -> bool {
    matches!(eval(constraint, ad, None), Value::Bool(true))
}

/// Compile an ad's `Requirements` once for repeated matching (`None` when
/// the ad has none — which [`requirements_met_compiled`] treats as
/// permissive, like [`requirements_met`]).
pub fn compile_requirements(ad: &ClassAd) -> Option<CompiledExpr> {
    ad.get("requirements").map(CompiledExpr::compile)
}

/// [`requirements_met`] with the requirements pre-compiled.  The context
/// is seeded with the `requirements` reference itself so circular
/// definitions resolve exactly as in the tree-walking form.
pub fn requirements_met_compiled(
    ad: &ClassAd,
    req: Option<&CompiledExpr>,
    target: &ClassAd,
) -> bool {
    match req {
        None => true,
        Some(c) => {
            let mut cx =
                EvalCtx::seeded(ad, Some(target), (false, gintern::intern("requirements")));
            matches!(c.eval_in(&mut cx), Value::Bool(true))
        }
    }
}

/// [`symmetric_match`] with both sides' requirements pre-compiled.
pub fn symmetric_match_compiled(
    a: &ClassAd,
    a_req: Option<&CompiledExpr>,
    b: &ClassAd,
    b_req: Option<&CompiledExpr>,
) -> bool {
    requirements_met_compiled(a, a_req, b) && requirements_met_compiled(b, b_req, a)
}

/// [`matches_constraint`] with the constraint pre-compiled.
pub fn matches_constraint_compiled(ad: &ClassAd, constraint: &CompiledExpr) -> bool {
    matches!(constraint.eval(ad, None), Value::Bool(true))
}

/// Evaluate `ad`'s `Rank` against `target` (0.0 when missing/non-numeric).
pub fn rank(ad: &ClassAd, target: &ClassAd) -> f64 {
    match ad.get("rank") {
        None => 0.0,
        Some(_) => eval(&Expr::attr("rank"), ad, Some(target))
            .as_number()
            .unwrap_or(0.0),
    }
}

/// Find the best match for `ad` among `candidates`: the symmetric matches,
/// ordered by `ad`'s rank of the candidate (descending), ties broken by
/// candidate order.  Returns the winning index.
pub fn best_match(ad: &ClassAd, candidates: &[ClassAd]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, cand) in candidates.iter().enumerate() {
        if !symmetric_match(ad, cand) {
            continue;
        }
        let r = rank(ad, cand);
        if best.is_none_or(|(_, br)| r > br) {
            best = Some((i, r));
        }
    }
    best.map(|(i, _)| i)
}

/// All symmetric matches, with ranks (for gang queries).
pub fn all_matches<'a>(
    ad: &ClassAd,
    candidates: impl Iterator<Item = &'a ClassAd>,
) -> Vec<(usize, f64)> {
    candidates
        .enumerate()
        .filter(|(_, c)| symmetric_match(ad, c))
        .map(|(i, c)| (i, rank(ad, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn machine(load: f64, os: &str) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.set_real("CpuLoad", load);
        ad.set_str("OpSys", os);
        ad.set_bool("Requirements", true);
        ad
    }

    #[test]
    fn trigger_matches_hot_machine() {
        let trigger =
            ClassAd::parse("Requirements = TARGET.CpuLoad > 50 && TARGET.OpSys == \"LINUX\"\n")
                .unwrap();
        assert!(symmetric_match(&trigger, &machine(75.0, "LINUX")));
        assert!(!symmetric_match(&trigger, &machine(10.0, "LINUX")));
        assert!(!symmetric_match(&trigger, &machine(75.0, "SOLARIS")));
    }

    #[test]
    fn missing_requirements_is_permissive() {
        let open = ClassAd::new();
        assert!(requirements_met(&open, &machine(0.0, "LINUX")));
        assert!(symmetric_match(&open, &ClassAd::new()));
    }

    #[test]
    fn undefined_requirements_do_not_match() {
        let t = ClassAd::parse("Requirements = TARGET.NoSuchAttr > 5\n").unwrap();
        assert!(!symmetric_match(&t, &machine(90.0, "LINUX")));
    }

    #[test]
    fn symmetric_needs_both_sides() {
        let a = ClassAd::parse("Requirements = TARGET.kind == \"b\"\nkind = \"a\"\n").unwrap();
        let b = ClassAd::parse("Requirements = TARGET.kind == \"a\"\nkind = \"b\"\n").unwrap();
        let c = ClassAd::parse("Requirements = TARGET.kind == \"a\"\nkind = \"c\"\n").unwrap();
        assert!(symmetric_match(&a, &b));
        assert!(!symmetric_match(&a, &c)); // a requires kind=="b"
    }

    #[test]
    fn rank_orders_matches() {
        let mut job = ClassAd::parse("Requirements = TRUE\n").unwrap();
        job.set_expr("Rank", "TARGET.Mips").unwrap();
        let mut m1 = machine(1.0, "LINUX");
        m1.set_int("Mips", 100);
        let mut m2 = machine(1.0, "LINUX");
        m2.set_int("Mips", 500);
        let mut m3 = machine(1.0, "LINUX");
        m3.set_int("Mips", 300);
        let best = best_match(&job, &[m1, m2, m3]).unwrap();
        assert_eq!(best, 1);
    }

    #[test]
    fn missing_rank_is_zero() {
        let job = ClassAd::parse("Requirements = TRUE\n").unwrap();
        assert_eq!(rank(&job, &ClassAd::new()), 0.0);
    }

    #[test]
    fn constraint_queries() {
        let c = parse_expr("CpuLoad > 50").unwrap();
        assert!(matches_constraint(&machine(60.0, "LINUX"), &c));
        assert!(!matches_constraint(&machine(40.0, "LINUX"), &c));
        // Worst-case scan: constraint never satisfied (the paper's
        // Experiment 4 setup for the Hawkeye Manager).
        let never = parse_expr("NoSuch =?= 1").unwrap();
        for load in [0.0, 50.0, 100.0] {
            assert!(!matches_constraint(&machine(load, "LINUX"), &never));
        }
    }

    #[test]
    fn all_matches_collects() {
        let t = ClassAd::parse("Requirements = TARGET.CpuLoad >= 50\n").unwrap();
        let ms = [machine(10.0, "L"), machine(50.0, "L"), machine(99.0, "L")];
        let hits = all_matches(&t, ms.iter());
        let idxs: Vec<usize> = hits.iter().map(|&(i, _)| i).collect();
        assert_eq!(idxs, vec![1, 2]);
    }
}
