//! Recursive-descent parser for ClassAd expressions.
//!
//! Grammar (classic ClassAds, lowest precedence first):
//!
//! ```text
//! expr    := or ( '?' expr ':' expr )?
//! or      := and ( '||' and )*
//! and     := eq ( '&&' eq )*
//! eq      := rel ( ('==' | '!=' | '=?=' | '=!=') rel )*
//! rel     := add ( ('<' | '<=' | '>' | '>=') add )*
//! add     := mul ( ('+' | '-') mul )*
//! mul     := unary ( ('*' | '/' | '%') unary )*
//! unary   := ('!' | '-' | '+')* primary
//! primary := literal | attr | call | '(' expr ')'
//! attr    := ( 'MY' '.' | 'TARGET' '.' )? IDENT
//! call    := IDENT '(' (expr (',' expr)*)? ')'
//! ```

use crate::expr::{BinOp, Expr, Scope, UnOp};
use crate::lexer::{lex, LexError, Token};
use crate::value::Value;
use std::fmt;

/// Parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parse a complete ClassAd expression.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError {
            message: format!("trailing tokens starting at '{}'", p.tokens[p.pos]),
        });
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(ParseError {
                message: format!(
                    "expected '{t}', found {}",
                    self.peek()
                        .map_or("end of input".to_string(), |x| format!("'{x}'"))
                ),
            })
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(1)?;
        if self.eat(&Token::Question) {
            let then = self.expr()?;
            self.expect(&Token::Colon)?;
            let els = self.expr()?;
            Ok(Expr::Cond(Box::new(cond), Box::new(then), Box::new(els)))
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing over binary operators with min precedence.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.peek().and_then(token_binop) {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.binary(prec + 1)?; // left-associative
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                // Fold negation of numeric literals so `-5` is the literal
                // -5 (keeps printing/parsing canonical).
                Ok(match self.unary()? {
                    Expr::Lit(Value::Int(i)) => Expr::Lit(Value::Int(-i)),
                    Expr::Lit(Value::Real(r)) => Expr::Lit(Value::Real(-r)),
                    e => Expr::Unary(UnOp::Neg, Box::new(e)),
                })
            }
            Some(Token::Plus) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Plus, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(Expr::Lit(Value::Int(i))),
            Some(Token::Real(r)) => Ok(Expr::Lit(Value::Real(r))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Value::Str(s))),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => self.ident_tail(name),
            other => Err(ParseError {
                message: format!(
                    "expected a value, found {}",
                    other.map_or("end of input".to_string(), |t| format!("'{t}'"))
                ),
            }),
        }
    }

    fn ident_tail(&mut self, name: String) -> Result<Expr, ParseError> {
        // Keywords.
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "true" => return Ok(Expr::Lit(Value::Bool(true))),
            "false" => return Ok(Expr::Lit(Value::Bool(false))),
            "undefined" => return Ok(Expr::Lit(Value::Undefined)),
            "error" => return Ok(Expr::Lit(Value::Error)),
            _ => {}
        }
        // Scope prefix?
        if (lower == "my" || lower == "target") && self.eat(&Token::Dot) {
            let Some(Token::Ident(attr)) = self.bump() else {
                return Err(ParseError {
                    message: format!("expected attribute name after '{name}.'"),
                });
            };
            let scope = if lower == "my" {
                Scope::My
            } else {
                Scope::Target
            };
            return Ok(Expr::scoped_attr(scope, &attr));
        }
        // Function call?
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let mut args = Vec::new();
            if !self.eat(&Token::RParen) {
                loop {
                    args.push(self.expr()?);
                    if self.eat(&Token::RParen) {
                        break;
                    }
                    self.expect(&Token::Comma)?;
                }
            }
            return Ok(Expr::Call(gintern::intern(&lower), args));
        }
        Ok(Expr::attr(&name))
    }
}

fn token_binop(t: &Token) -> Option<BinOp> {
    Some(match t {
        Token::Or => BinOp::Or,
        Token::And => BinOp::And,
        Token::Eq => BinOp::Eq,
        Token::Ne => BinOp::Ne,
        Token::MetaEq => BinOp::MetaEq,
        Token::MetaNe => BinOp::MetaNe,
        Token::Lt => BinOp::Lt,
        Token::Le => BinOp::Le,
        Token::Gt => BinOp::Gt,
        Token::Ge => BinOp::Ge,
        Token::Plus => BinOp::Add,
        Token::Minus => BinOp::Sub,
        Token::Star => BinOp::Mul,
        Token::Slash => BinOp::Div,
        Token::Percent => BinOp::Mod,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Expr {
        parse_expr(s).unwrap_or_else(|e| panic!("parse {s:?}: {e}"))
    }

    #[test]
    fn parses_literals_and_keywords() {
        assert_eq!(p("42"), Expr::int(42));
        assert_eq!(p("2.5"), Expr::real(2.5));
        assert_eq!(p("\"x\""), Expr::string("x"));
        assert_eq!(p("TRUE"), Expr::boolean(true));
        assert_eq!(p("False"), Expr::boolean(false));
        assert_eq!(p("UNDEFINED"), Expr::Lit(Value::Undefined));
        assert_eq!(p("error"), Expr::Lit(Value::Error));
    }

    #[test]
    fn precedence_shape() {
        // a || b && c  =>  a || (b && c)
        match p("a || b && c") {
            Expr::Binary(BinOp::Or, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinOp::And, _, _)));
            }
            e => panic!("{e:?}"),
        }
        // 1 + 2 * 3 => 1 + (2*3)
        match p("1 + 2 * 3") {
            Expr::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            e => panic!("{e:?}"),
        }
        // Comparison binds tighter than equality: a == b < c => a == (b<c)
        match p("a == b < c") {
            Expr::Binary(BinOp::Eq, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinOp::Lt, _, _)));
            }
            e => panic!("{e:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        // 10 - 4 - 3 => (10-4)-3
        match p("10 - 4 - 3") {
            Expr::Binary(BinOp::Sub, lhs, _) => {
                assert!(matches!(*lhs, Expr::Binary(BinOp::Sub, _, _)));
            }
            e => panic!("{e:?}"),
        }
    }

    #[test]
    fn scopes_and_calls() {
        assert_eq!(p("MY.x"), Expr::scoped_attr(Scope::My, "x"));
        assert_eq!(p("target.Y"), Expr::scoped_attr(Scope::Target, "Y"));
        assert_eq!(
            p("floor(2.7)"),
            Expr::Call("floor".into(), vec![Expr::real(2.7)])
        );
        assert_eq!(p("size(\"ab\", 1)").to_string(), "size(\"ab\", 1)");
    }

    #[test]
    fn my_without_dot_is_plain_attr() {
        assert_eq!(p("my"), Expr::attr("my"));
        assert_eq!(p("target + 1").to_string(), "target + 1");
    }

    #[test]
    fn ternary() {
        let e = p("a > 1 ? \"big\" : \"small\"");
        assert!(matches!(e, Expr::Cond(..)));
        // Nested: a ? b : c ? d : e  => a ? b : (c ? d : e)
        let e = p("a ? b : c ? d : e");
        match e {
            Expr::Cond(_, _, els) => assert!(matches!(*els, Expr::Cond(..))),
            e => panic!("{e:?}"),
        }
    }

    #[test]
    fn meta_operators() {
        let e = p("x =?= UNDEFINED");
        assert!(matches!(e, Expr::Binary(BinOp::MetaEq, _, _)));
        let e = p("x =!= 5");
        assert!(matches!(e, Expr::Binary(BinOp::MetaNe, _, _)));
    }

    #[test]
    fn unary_chains() {
        assert_eq!(p("!!a").to_string(), "!!a");
        assert_eq!(p("--5"), Expr::int(5)); // double negation folds
        assert_eq!(p("-5"), Expr::int(-5));
        assert_eq!(p("-2.5"), Expr::real(-2.5));
        assert_eq!(p("-x + 1").to_string(), "-x + 1");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("(1").is_err());
        assert!(parse_expr("1 2").is_err());
        assert!(parse_expr("f(1,)").is_err());
        assert!(parse_expr("a ? b").is_err());
        assert!(parse_expr("").is_err());
    }

    #[test]
    fn display_round_trip() {
        for src in [
            "TARGET.CpuLoad > 50 && TARGET.OpSys == \"LINUX\"",
            "(1 + 2) * 3 - -4",
            "a =?= UNDEFINED || b =!= ERROR",
            "x % 2 == 0 ? \"even\" : \"odd\"",
            "floor(a / 2) >= size(b)",
        ] {
            let e1 = p(src);
            let printed = e1.to_string();
            let e2 = p(&printed);
            assert_eq!(e1, e2, "round trip failed for {src:?} -> {printed:?}");
        }
    }
}
