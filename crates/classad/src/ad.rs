//! ClassAd records: ordered, case-insensitive attribute maps.
//!
//! Classic Condor serializes an ad as newline-separated `Name = Expr`
//! lines; that is the format `parse`/`Display` use (lines starting with
//! `#` are comments).  Attribute names are case-insensitive; insertion
//! order is preserved for printing.

use crate::expr::{intern_lower, Expr};
use crate::parser::{parse_expr, ParseError};
use crate::value::Value;
use gintern::Sym;
use std::collections::HashMap;
use std::fmt;

/// A classified advertisement: a set of named expressions.
///
/// Names are interned [`Sym`]s: inserts and lookups hash a 32-bit id,
/// and cloning an ad copies no name strings.  Probing uses
/// [`gintern::lookup`], which never grows the intern table — a name that
/// was never interned anywhere cannot be a key of any ad.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassAd {
    /// Insertion-ordered (lowercase name, printed name, expression).
    entries: Vec<(Sym, Sym, Expr)>,
    /// Lowercase name -> index into `entries`.  Only probed by key
    /// (never iterated), so `Sym`'s id-based hashing cannot leak
    /// nondeterministic ordering anywhere.
    index: HashMap<Sym, usize>,
}

impl ClassAd {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace an attribute.
    pub fn insert(&mut self, name: &str, expr: Expr) {
        let key = intern_lower(name);
        let printed = gintern::intern(name);
        match self.index.get(&key) {
            Some(&i) => {
                self.entries[i].1 = printed;
                self.entries[i].2 = expr;
            }
            None => {
                self.index.insert(key, self.entries.len());
                self.entries.push((key, printed, expr));
            }
        }
    }

    /// Insert a plain value.
    pub fn set(&mut self, name: &str, value: Value) {
        self.insert(name, Expr::Lit(value));
    }

    pub fn set_int(&mut self, name: &str, v: i64) {
        self.set(name, Value::Int(v));
    }

    pub fn set_real(&mut self, name: &str, v: f64) {
        self.set(name, Value::Real(v));
    }

    pub fn set_str(&mut self, name: &str, v: &str) {
        self.set(name, Value::Str(v.to_string()));
    }

    pub fn set_bool(&mut self, name: &str, v: bool) {
        self.set(name, Value::Bool(v));
    }

    /// Parse and insert an attribute expression.
    pub fn set_expr(&mut self, name: &str, src: &str) -> Result<(), ParseError> {
        let e = parse_expr(src)?;
        self.insert(name, e);
        Ok(())
    }

    /// Resolve a probe name to the `Sym` it would be stored under, without
    /// interning: a name absent from the global table was never inserted
    /// into *any* ad, so a miss means "not present".
    fn probe(name: &str) -> Option<Sym> {
        if name.bytes().any(|b| b.is_ascii_uppercase()) {
            gintern::lookup(&name.to_ascii_lowercase())
        } else {
            gintern::lookup(name)
        }
    }

    /// Look up an attribute (case-insensitive).  Parsed expressions store
    /// names lowercase already, so the hot path does not allocate.
    pub fn get(&self, name: &str) -> Option<&Expr> {
        let key = Self::probe(name)?;
        self.index.get(&key).map(|&i| &self.entries[i].2)
    }

    /// Remove an attribute; returns whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let Some(key) = Self::probe(name) else {
            return false;
        };
        let Some(i) = self.index.remove(&key) else {
            return false;
        };
        self.entries.remove(i);
        // Reindex the tail.
        for (j, (k, _, _)) in self.entries.iter().enumerate().skip(i) {
            self.index.insert(*k, j);
        }
        true
    }

    /// Evaluate an attribute in this ad (no target).
    pub fn lookup(&self, name: &str) -> Value {
        match self.get(name) {
            Some(_) => crate::eval::eval(&Expr::attr(name), self, None),
            None => Value::Undefined,
        }
    }

    /// Convenience accessors.
    pub fn lookup_str(&self, name: &str) -> Option<String> {
        match self.lookup(name) {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn lookup_number(&self, name: &str) -> Option<f64> {
        self.lookup(name).as_number()
    }

    pub fn lookup_bool(&self, name: &str) -> Option<bool> {
        self.lookup(name).as_bool()
    }

    /// Iterate `(printed_name, expr)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Expr)> {
        self.entries.iter().map(|(_, n, e)| (n.as_str(), e))
    }

    /// Merge another ad into this one (other's attributes win).
    pub fn merge(&mut self, other: &ClassAd) {
        for (name, expr) in other.iter() {
            self.insert(name, expr.clone());
        }
    }

    /// Parse the classic newline-separated `Name = Expr` form.
    pub fn parse(input: &str) -> Result<ClassAd, ParseError> {
        let mut ad = ClassAd::new();
        for (lineno, raw) in input.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some(eq) = find_toplevel_eq(line) else {
                return Err(ParseError {
                    message: format!("line {}: expected 'Name = Expr'", lineno + 1),
                });
            };
            let name = line[..eq].trim();
            let expr_src = line[eq + 1..].trim();
            if name.is_empty()
                || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                || !name.chars().next().unwrap().is_ascii_alphabetic()
            {
                return Err(ParseError {
                    message: format!("line {}: bad attribute name {name:?}", lineno + 1),
                });
            }
            let expr = parse_expr(expr_src).map_err(|e| ParseError {
                message: format!("line {}: {e}", lineno + 1),
            })?;
            ad.insert(name, expr);
        }
        Ok(ad)
    }

    /// Serialized size in bytes (what goes on the simulated wire),
    /// measured by counting `Display` output instead of materializing it.
    pub fn wire_size(&self) -> u64 {
        use fmt::Write;
        struct Counter(u64);
        impl fmt::Write for Counter {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                self.0 += s.len() as u64;
                Ok(())
            }
        }
        let mut c = Counter(0);
        write!(c, "{self}").expect("counting writer never fails");
        c.0
    }
}

/// Find the `=` that separates name from expression, skipping `==`, `=?=`,
/// `=!=`, `<=`, `>=`, `!=` (the name side cannot contain operators, so the
/// first `=` not part of a two/three-char operator is the separator).
fn find_toplevel_eq(line: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'"' {
            // Skip string literal.
            i += 1;
            while i < b.len() && b[i] != b'"' {
                if b[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            i += 1;
            continue;
        }
        if b[i] == b'=' {
            let prev = if i > 0 { b[i - 1] } else { 0 };
            let next = b.get(i + 1).copied().unwrap_or(0);
            let is_op = next == b'='
                || next == b'?'
                || next == b'!'
                || prev == b'='
                || prev == b'<'
                || prev == b'>'
                || prev == b'!'
                || prev == b'?';
            if !is_op {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

impl fmt::Display for ClassAd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, expr) in self.iter() {
            writeln!(f, "{name} = {expr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_case_insensitive() {
        let mut ad = ClassAd::new();
        ad.set_int("CpuLoad", 42);
        assert_eq!(ad.lookup("cpuload"), Value::Int(42));
        assert_eq!(ad.lookup("CPULOAD"), Value::Int(42));
        assert_eq!(ad.lookup("nope"), Value::Undefined);
        assert_eq!(ad.len(), 1);
        // Replacement keeps a single entry.
        ad.set_int("CPULOAD", 7);
        assert_eq!(ad.len(), 1);
        assert_eq!(ad.lookup("CpuLoad"), Value::Int(7));
    }

    #[test]
    fn parse_classic_format() {
        let ad = ClassAd::parse(
            "# a comment\n\
             Machine = \"lucky3\"\n\
             \n\
             Cpus = 2\n\
             Loaded = Cpus > 1\n",
        )
        .unwrap();
        assert_eq!(ad.len(), 3);
        assert_eq!(ad.lookup_str("machine").as_deref(), Some("lucky3"));
        assert_eq!(ad.lookup("Loaded"), Value::Bool(true));
    }

    #[test]
    fn parse_lines_with_equality_operators() {
        let ad = ClassAd::parse("Req = TARGET.x == 5 && y <= 2\nMeta = z =?= UNDEFINED\n").unwrap();
        assert!(ad.get("Req").is_some());
        assert!(ad.get("Meta").is_some());
    }

    #[test]
    fn parse_rejects_bad_lines() {
        assert!(ClassAd::parse("no equals sign here").is_err());
        assert!(ClassAd::parse("123name = 5").is_err());
        assert!(ClassAd::parse("x = 1 +").is_err());
        assert!(ClassAd::parse("bad-name = 5").is_err());
    }

    #[test]
    fn display_round_trip() {
        let src = "A = 5\nB = A * 2 + 1\nC = \"text with = sign\"\nD = TARGET.x =?= UNDEFINED\n";
        let ad = ClassAd::parse(src).unwrap();
        let printed = ad.to_string();
        let ad2 = ClassAd::parse(&printed).unwrap();
        assert_eq!(ad, ad2);
    }

    #[test]
    fn remove_and_reindex() {
        let mut ad = ClassAd::parse("a = 1\nb = 2\nc = 3\n").unwrap();
        assert!(ad.remove("B"));
        assert!(!ad.remove("b"));
        assert_eq!(ad.len(), 2);
        assert_eq!(ad.lookup("c"), Value::Int(3));
        assert_eq!(ad.lookup("a"), Value::Int(1));
    }

    #[test]
    fn merge_overrides() {
        let mut a = ClassAd::parse("x = 1\ny = 2\n").unwrap();
        let b = ClassAd::parse("y = 20\nz = 30\n").unwrap();
        a.merge(&b);
        assert_eq!(a.lookup("y"), Value::Int(20));
        assert_eq!(a.lookup("z"), Value::Int(30));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn wire_size_positive_and_grows() {
        let small = ClassAd::parse("a = 1\n").unwrap();
        let big = ClassAd::parse("a = 1\nb = \"a long string attribute value\"\n").unwrap();
        assert!(small.wire_size() > 0);
        assert!(big.wire_size() > small.wire_size());
    }
}
