//! Property-based tests for the ClassAd language.

use classad::{eval, parse_expr, ClassAd, Expr, Value};
use proptest::prelude::*;

/// Strategy producing arbitrary well-formed ClassAd expressions.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Expr::int),
        (-100.0f64..100.0).prop_map(|r| Expr::real((r * 100.0).round() / 100.0)),
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| Expr::attr(&s)),
        "[a-zA-Z0-9 ]{0,8}".prop_map(|s| Expr::string(&s)),
        Just(Expr::boolean(true)),
        Just(Expr::boolean(false)),
        Just(Expr::Lit(Value::Undefined)),
        Just(Expr::Lit(Value::Error)),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { Expr::Binary(classad::BinOp::Add, Box::new(a), Box::new(b)) }),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { Expr::Binary(classad::BinOp::And, Box::new(a), Box::new(b)) }),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { Expr::Binary(classad::BinOp::Lt, Box::new(a), Box::new(b)) }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                Expr::Binary(classad::BinOp::MetaEq, Box::new(a), Box::new(b))
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::Cond(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(classad::UnOp::Not, Box::new(e))),
            inner.prop_map(|e| Expr::Unary(classad::UnOp::Neg, Box::new(e))),
        ]
    })
}

proptest! {
    /// Printing then reparsing yields the same AST (parenthesisation and
    /// precedence are mutually consistent).
    #[test]
    fn print_parse_round_trip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of {printed:?} failed: {err}"));
        // The parser canonicalises negative numeric literals; compare
        // normalised forms.
        prop_assert_eq!(e.normalize(), reparsed);
    }

    /// Evaluation is total: any expression evaluates to some value without
    /// panicking, in an empty ad and in a populated one.
    #[test]
    fn eval_is_total(e in arb_expr()) {
        let empty = ClassAd::new();
        let _ = eval(&e, &empty, None);
        let ad = ClassAd::parse("a = 1\nb = a + 1\nc = b > a\nd = \"str\"\n").unwrap();
        let _ = eval(&e, &ad, Some(&empty));
    }

    /// Meta-equality is reflexive for any evaluated value.
    #[test]
    fn meta_eq_reflexive(e in arb_expr()) {
        let ad = ClassAd::new();
        let v = eval(&e, &ad, None);
        prop_assert!(v.meta_eq(&v));
    }

    /// The three-valued connectives are commutative in their result for
    /// pure literal operands.
    #[test]
    fn and_commutative_on_literals(a in prop_oneof![
        Just(Value::Bool(true)), Just(Value::Bool(false)),
        Just(Value::Undefined), Just(Value::Error)
    ], b in prop_oneof![
        Just(Value::Bool(true)), Just(Value::Bool(false)),
        Just(Value::Undefined), Just(Value::Error)
    ]) {
        let ad = ClassAd::new();
        let ab = Expr::Binary(classad::BinOp::And,
            Box::new(Expr::Lit(a.clone())), Box::new(Expr::Lit(b.clone())));
        let ba = Expr::Binary(classad::BinOp::And,
            Box::new(Expr::Lit(b)), Box::new(Expr::Lit(a)));
        prop_assert_eq!(eval(&ab, &ad, None), eval(&ba, &ad, None));
    }

    /// Ads survive a serialize/parse cycle.
    #[test]
    fn ad_round_trip(attrs in proptest::collection::vec(
        ("[a-z][a-z0-9]{0,5}", arb_expr()), 0..8)) {
        let mut ad = ClassAd::new();
        for (name, e) in &attrs {
            ad.insert(name, e.clone().normalize());
        }
        let printed = ad.to_string();
        let reparsed = ClassAd::parse(&printed)
            .unwrap_or_else(|err| panic!("reparse of ad {printed:?} failed: {err}"));
        prop_assert_eq!(ad, reparsed);
    }
}
