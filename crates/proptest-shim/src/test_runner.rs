//! Deterministic RNG and case-count configuration for the shim.

/// A splitmix64 generator: tiny, fast, and stable across platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The RNG for one test case: a fixed base perturbed by the case
    /// index, so every case is reproducible in isolation.
    pub fn for_case(case: u32) -> TestRng {
        TestRng::new(0x9E37_79B9_7F4A_7C15 ^ (u64::from(case).wrapping_mul(0x2545_F491_4F6C_DD1D)))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Cases per property test: `PROPTEST_CASES` env override, default 64.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}
