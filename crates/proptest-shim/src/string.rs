//! String-pattern strategies: `"[a-z][a-z0-9_]{0,6}"`-style regexes.
//!
//! Real proptest accepts full regexes; the workspace only uses
//! sequences of character classes with optional `{m,n}` repetition, so
//! that is what the shim parses.  Literal characters outside a class
//! are also supported.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Unit {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Unit> {
    let chars: Vec<char> = pat.chars().collect();
    let mut units = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = if chars[i] == '[' {
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                // `a-z` range (a `-` just before `]` is a literal).
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "bad class range in pattern {pat:?}");
                    set.extend((lo..=hi).filter(char::is_ascii));
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated class in pattern {pat:?}");
            i += 1; // consume ']'
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional {n} / {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pat:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repetition min"),
                    n.trim().parse().expect("repetition max"),
                ),
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty class in pattern {pat:?}");
        units.push(Unit {
            chars: set,
            min,
            max,
        });
    }
    units
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for u in parse_pattern(self) {
            let n = u.min + rng.below((u.max - u.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(u.chars[rng.below(u.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn patterns_respect_classes_and_lengths() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!((1..=7).contains(&s.len()), "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn literal_dash_and_specials() {
        let mut rng = TestRng::new(8);
        for _ in 0..100 {
            let s = "[a-c%_-]{1,4}".generate(&mut rng);
            assert!(s.chars().all(|c| "abc%_-".contains(c)), "{s:?}");
        }
    }
}
