//! Offline stand-in for the `proptest` crate.
//!
//! The real `proptest` cannot be fetched in a registry-less build, so
//! this in-tree shim implements the subset of its API the workspace's
//! property tests use: the [`proptest!`] entry macro, the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_recursive`, union
//! strategies via [`prop_oneof!`], range and string-pattern strategies,
//! tuple composition, and `proptest::collection::vec`.
//!
//! Generation is deterministic: case `i` of every test draws from a
//! splitmix64 stream seeded with `i`, so failures reproduce exactly.
//! `PROPTEST_CASES` overrides the per-test case count (default 64).
//! Shrinking is intentionally not implemented — on failure the harness
//! reports the case number, which is enough to replay it.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property test (panics like `assert!`; the runner
/// reports the failing case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `PROPTEST_CASES` deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                for case in 0..cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    let run = || $body;
                    if let Err(payload) = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest shim: case {case}/{cases} of {} failed \
                             (deterministic; rerun reproduces it)",
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
