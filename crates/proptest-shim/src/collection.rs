//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length bounds for a generated collection (inclusive).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// A vector of `size` elements drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}
