//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values of one type.  Unlike real proptest there is no
/// shrinking; `generate` draws one value from the deterministic RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `recurse` receives the strategy for the
    /// previous depth and wraps it one level; `depth` levels are built
    /// on top of `self` (the leaf strategy).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut s = self.boxed();
        for _ in 0..depth {
            // Mix the leaf back in at every level so generated trees
            // have varied, not uniform, depth.
            let deeper = recurse(s.clone()).boxed();
            s = Union::new(vec![s, deeper]).boxed();
        }
        s
    }

    /// Type-erase (and reference-count) this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among alternatives (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ------------------------------------------------------------- ranges

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let width = (hi - lo) as u128;
                let draw = u128::from(rng.next_u64()) % width;
                (lo + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo) as u128 + 1;
                let draw = u128::from(rng.next_u64()) % width;
                (lo + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as f64;
                let hi = self.end as f64;
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

// ------------------------------------------------------------- tuples

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
}

// ---------------------------------------------------------- arbitrary

/// `any::<T>()` support for the primitive types the tests draw.
pub trait Arbitrary: Sized {
    fn arb(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arb(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arb(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arb(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
