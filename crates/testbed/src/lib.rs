//! # testbed — the Lucky/UC experimental platform
//!
//! Reconstructs the paper's hardware setup as a simulated topology:
//!
//! * **Lucky cluster (ANL):** seven Linux machines, `lucky0, lucky1,
//!   lucky3..lucky7`, each with two 1133 MHz PIII CPUs, on a 100 Mbps
//!   switched LAN.  A speed factor of 1.0 means "one 1133 MHz PIII".
//! * **UC client cluster:** twenty machines, fifteen with a 1208 MHz
//!   uniprocessor and five slower (≥756 MHz), on their own 100 Mbps LAN.
//! * **WAN:** a shared link between the UC campus and ANL.  The paper
//!   never quantifies it, but its saturation is the paper's recurring
//!   explanation for throughput plateaus; the default models a
//!   DS-3-class path (≈40 Mbit/s each way, a few milliseconds one-way).
//!
//! The topology is a star per site: every host has a dedicated duplex
//! 100 Mbps access link (switched Ethernet), so intra-site flows contend
//! only on the endpoints' access links, while inter-site flows also share
//! the WAN pipe — exactly the contention structure the paper's analysis
//! relies on.

use simcore::SimDuration;
use simnet::{LinkId, NodeId, Topology};

/// Tunable testbed parameters.
#[derive(Debug, Clone, Copy)]
pub struct TestbedConfig {
    /// Access-link capacity on both sites (bits/s).
    pub lan_bps: f64,
    /// One-way latency of an access link.
    pub lan_latency: SimDuration,
    /// WAN capacity each direction (bits/s).
    pub wan_bps: f64,
    /// One-way WAN latency.
    pub wan_latency: SimDuration,
    /// Number of UC client machines.
    pub uc_machines: usize,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            lan_bps: 100e6,
            lan_latency: SimDuration::from_micros(100),
            wan_bps: 40e6,
            wan_latency: SimDuration::from_millis(5),
            uc_machines: 20,
        }
    }
}

/// Access links of one host.
#[derive(Debug, Clone, Copy)]
struct Access {
    up: LinkId,
    down: LinkId,
}

/// The built testbed.
pub struct Testbed {
    pub topo: Topology,
    /// `lucky[i]` is the node whose hostname is `lucky_names()[i]`.
    pub lucky: Vec<NodeId>,
    /// UC client machines.
    pub uc: Vec<NodeId>,
    pub config: TestbedConfig,
}

/// The hostnames of the Lucky testbed (note: there is no `lucky2`, as in
/// the paper's `lucky{0,1,3,..,7}`).
pub fn lucky_names() -> [&'static str; 7] {
    [
        "lucky0", "lucky1", "lucky3", "lucky4", "lucky5", "lucky6", "lucky7",
    ]
}

impl Testbed {
    /// Build the testbed with the given parameters.
    pub fn build(config: TestbedConfig) -> Testbed {
        let mut topo = Topology::new();
        let mut lucky = Vec::new();
        let mut lucky_acc = Vec::new();
        for name in lucky_names() {
            // Two 1133 MHz CPUs; speed 1.0 is the reference core.
            let n = topo.add_node(name, 2, 1.0);
            let up = topo.add_link(format!("{name}-up"), config.lan_bps, config.lan_latency);
            let down = topo.add_link(format!("{name}-down"), config.lan_bps, config.lan_latency);
            lucky.push(n);
            lucky_acc.push(Access { up, down });
        }
        let mut uc = Vec::new();
        let mut uc_acc = Vec::new();
        for i in 0..config.uc_machines {
            // Fifteen 1208 MHz (speed ≈ 1.066) and the rest ≥756 MHz
            // (speed ≈ 0.667), all uniprocessors with 248 MB RAM.
            let speed = if i < 15 {
                1208.0 / 1133.0
            } else {
                756.0 / 1133.0
            };
            let name = format!("uc{i:02}");
            let n = topo.add_node(&name, 1, speed);
            let up = topo.add_link(format!("{name}-up"), config.lan_bps, config.lan_latency);
            let down = topo.add_link(format!("{name}-down"), config.lan_bps, config.lan_latency);
            uc.push(n);
            uc_acc.push(Access { up, down });
        }
        // The WAN pipe, one link per direction.
        let wan_to_anl = topo.add_link("wan-uc-to-anl", config.wan_bps, config.wan_latency);
        let wan_to_uc = topo.add_link("wan-anl-to-uc", config.wan_bps, config.wan_latency);

        // Routes: lucky <-> lucky over the ANL switch.
        for (i, &a) in lucky.iter().enumerate() {
            for (j, &b) in lucky.iter().enumerate() {
                if i != j {
                    topo.set_route(a, b, vec![lucky_acc[i].up, lucky_acc[j].down]);
                }
            }
        }
        // uc <-> uc over the UC switch.
        for (i, &a) in uc.iter().enumerate() {
            for (j, &b) in uc.iter().enumerate() {
                if i != j {
                    topo.set_route(a, b, vec![uc_acc[i].up, uc_acc[j].down]);
                }
            }
        }
        // uc <-> lucky across the WAN.
        for (i, &c) in uc.iter().enumerate() {
            for (j, &s) in lucky.iter().enumerate() {
                topo.set_route(c, s, vec![uc_acc[i].up, wan_to_anl, lucky_acc[j].down]);
                topo.set_route(s, c, vec![lucky_acc[j].up, wan_to_uc, uc_acc[i].down]);
            }
        }
        Testbed {
            topo,
            lucky,
            uc,
            config,
        }
    }

    /// Default-configured testbed.
    pub fn standard() -> Testbed {
        Self::build(TestbedConfig::default())
    }

    /// Node id of a lucky host by name suffix (e.g. `7` for lucky7).
    pub fn lucky_by_name(&self, name: &str) -> Option<NodeId> {
        self.topo.find_node(name)
    }

    /// Distribute `n` simulated users over the UC machines, at most
    /// `cap` per machine (the paper balanced evenly with a maximum of 50
    /// per machine).  Returns one entry per user: the node hosting it.
    pub fn place_users(&self, n: usize, cap: usize) -> Vec<NodeId> {
        place_round_robin(&self.uc, n, cap)
    }

    /// Distribute `n` users over the Lucky nodes themselves (the paper's
    /// alternative placement for the R-GMA experiments), excluding any
    /// nodes in `exclude` (e.g. the node hosting the service under test).
    pub fn place_users_on_lucky(&self, n: usize, cap: usize, exclude: &[NodeId]) -> Vec<NodeId> {
        let hosts: Vec<NodeId> = self
            .lucky
            .iter()
            .copied()
            .filter(|h| !exclude.contains(h))
            .collect();
        place_round_robin(&hosts, n, cap)
    }
}

fn place_round_robin(hosts: &[NodeId], n: usize, cap: usize) -> Vec<NodeId> {
    assert!(!hosts.is_empty(), "no hosts to place users on");
    let usable = hosts.len() * cap;
    assert!(
        n <= usable,
        "cannot place {n} users on {} hosts with cap {cap}",
        hosts.len()
    );
    (0..n).map(|i| hosts[i % hosts.len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_expected_shape() {
        let tb = Testbed::standard();
        assert_eq!(tb.lucky.len(), 7);
        assert_eq!(tb.uc.len(), 20);
        // 27 hosts * 2 access links + 2 WAN links.
        assert_eq!(tb.topo.link_count(), 27 * 2 + 2);
        assert!(tb.lucky_by_name("lucky7").is_some());
        assert!(tb.lucky_by_name("lucky2").is_none()); // no lucky2!
    }

    #[test]
    fn lan_routes_have_two_hops_wan_routes_three() {
        let tb = Testbed::standard();
        let l3 = tb.lucky_by_name("lucky3").unwrap();
        let l7 = tb.lucky_by_name("lucky7").unwrap();
        assert_eq!(tb.topo.route(l3, l7).len(), 2);
        let uc0 = tb.uc[0];
        assert_eq!(tb.topo.route(uc0, l7).len(), 3);
        assert_eq!(tb.topo.route(l7, uc0).len(), 3);
        // WAN latency dominates the one-way delay.
        let lat = tb.topo.one_way_latency(uc0, l7);
        assert!(lat >= SimDuration::from_millis(5));
        let lan = tb.topo.one_way_latency(l3, l7);
        assert!(lan < SimDuration::from_millis(1));
    }

    #[test]
    fn cpu_speeds_match_the_paper() {
        let tb = Testbed::standard();
        let l = tb.topo.node(tb.lucky[0]);
        assert_eq!(l.cpu.cores(), 2);
        assert_eq!(l.cpu.speed(), 1.0);
        let fast = tb.topo.node(tb.uc[0]);
        assert_eq!(fast.cpu.cores(), 1);
        assert!(fast.cpu.speed() > 1.0);
        let slow = tb.topo.node(tb.uc[19]);
        assert!(slow.cpu.speed() < 0.7);
    }

    #[test]
    fn user_placement_balances() {
        let tb = Testbed::standard();
        let placement = tb.place_users(600, 50);
        assert_eq!(placement.len(), 600);
        // Even spread: each of the 20 machines gets 30.
        for host in &tb.uc {
            let count = placement.iter().filter(|&&h| h == *host).count();
            assert_eq!(count, 30);
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn placement_respects_cap() {
        let tb = Testbed::standard();
        let _ = tb.place_users(20 * 50 + 1, 50);
    }

    #[test]
    fn lucky_placement_excludes_servers() {
        let tb = Testbed::standard();
        let server = tb.lucky_by_name("lucky3").unwrap();
        let placement = tb.place_users_on_lucky(600, 120, &[server]);
        assert!(!placement.contains(&server));
        assert_eq!(placement.len(), 600);
    }
}
