//! Stable, platform-independent hashing for seeds and cache keys.
//!
//! `std::hash` offers no stability guarantee across releases, so point
//! identities (seed derivation) and on-disk cache addresses use FNV-1a
//! here: tiny, well-known, and byte-for-byte reproducible everywhere.

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(0xcbf2_9ce4_8422_2325, bytes)
}

/// 64-bit FNV-1a with an explicit initial state; hashing the same bytes
/// under two different seeds yields two independent 64-bit digests,
/// which [`digest128`] combines into a 128-bit content address.
pub fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: decorrelates structured inputs (e.g. a base
/// seed XOR a key hash) into a well-mixed 64-bit value.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 128-bit content digest rendered as 32 hex chars, suitable as a
/// cache file name.
pub fn digest128(bytes: &[u8]) -> String {
    let a = fnv1a64(bytes);
    let b = fnv1a64_seeded(0x84222325_cbf29ce4, bytes);
    format!("{a:016x}{b:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors_are_stable() {
        // FNV-1a published test vector.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        // Regression-pin our composite digest so cache addresses never
        // drift silently.
        assert_eq!(
            digest128(b"gridmon"),
            format!(
                "{:016x}{:016x}",
                fnv1a64(b"gridmon"),
                fnv1a64_seeded(0x84222325_cbf29ce4, b"gridmon")
            )
        );
    }

    #[test]
    fn mix_decorrelates_neighbours() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "neighbouring seeds must diverge");
    }
}
