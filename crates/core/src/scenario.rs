//! The scenario → [`Harness`] compiler and the built-in catalogue.
//!
//! A [`gscenario::ScenarioSpec`] is pure data; this module is the single
//! place that turns one into a runnable world.  [`compile`] evaluates a
//! spec at one x value in a fixed order — services in file order, then
//! the Ganglia monitor, then the workload, then the fault schedule and
//! resilience probe — so that a spec compiled here produces the exact
//! sequence of `Net`/`Engine` mutations the hand-written
//! `experiments::set1..set5` builders used to perform.  The builders now
//! delegate to [`catalogue`], which holds the five paper sets (plus the
//! federation Set 6) as `ScenarioSpec` values.
//!
//! Determinism contract: identical `(spec, x, cfg)` ⇒ identical
//! trajectory.  Deployment order is spec file order; the t=0 start order
//! and every RNG stream follow from it.

use crate::deploy::{backend_of, giis_suffix, gris_suffix, DeployError, Harness};
use crate::runcfg::{Measurement, RunConfig};
use gfaults::{FaultAction, FaultPlan, Scenario, PARTITION_BPS};
use gscenario::{ClientCpu, FaultKind, Placement, ProbeSpec, Query, ScenarioSpec, ServiceKind};
use hawkeye::{HawkeyeMsg, Manager};
use ldapdir::{Filter, Scope};
use mds::{Giis, MdsRequest};
use rgma::{ProducerServlet, RgmaMsg};
use simcore::{SimDuration, SimTime};
use simnet::{Client, ClientCx, NodeId, Payload, SvcKey};
use testbed::TestbedConfig;
use workload::{QueryFactory, UserConfig};

pub use crate::deploy::ObservedPoint;

/// How often the resilience probe samples staleness/recovery.
pub const PROBE_PERIOD_S: u64 = 2;

/// An agent ad older than this no longer matches (3 advertise periods,
/// Condor's classic 3×-heartbeat rule of thumb).
pub const HAWKEYE_FRESH_HORIZON_S: u64 = 90;

// ======================================================================
// Compilation
// ======================================================================

/// One deployed service of a compiling scenario.
struct Placed {
    name: String,
    node: NodeId,
    key: Option<SvcKey>,
}

/// The compiler's working state between phases.
struct World<'s> {
    spec: &'s ScenarioSpec,
    x: u32,
    placed: Vec<Placed>,
}

impl World<'_> {
    fn node_of(&self, h: &Harness, at: &str, host: &str) -> Result<NodeId, DeployError> {
        h.net
            .topo
            .find_node(host)
            .ok_or_else(|| DeployError::UnknownHost {
                service: at.to_string(),
                host: host.to_string(),
            })
    }

    /// The single service key a reference resolves to.
    fn key_of(&self, name: &str) -> Result<SvcKey, DeployError> {
        self.placed
            .iter()
            .find(|p| p.name == name)
            .and_then(|p| p.key)
            .ok_or_else(|| DeployError::NoServiceKey {
                service: name.to_string(),
            })
    }

    fn placed_of(&self, name: &str) -> Result<&Placed, DeployError> {
        self.placed
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| DeployError::NoServiceKey {
                service: name.to_string(),
            })
    }
}

/// Compile `spec` at sweep value `x` into a ready-to-run [`Harness`].
///
/// Phase order (semantic — it fixes the run's trajectory):
/// 1. services, in spec file order, each through its backend;
/// 2. the Ganglia monitor on the `watch` host;
/// 3. the closed-loop workload;
/// 4. the fault schedule and resilience probe.
pub fn compile(spec: &ScenarioSpec, x: u32, cfg: &RunConfig) -> Result<Harness, DeployError> {
    let mut h = Harness::new(*cfg);
    let mut w = World {
        spec,
        x,
        placed: Vec::with_capacity(spec.services.len()),
    };

    // Phase 1: services, in file order.
    for (name, svc) in &spec.services {
        let node = w.node_of(&h, name, &svc.host)?;
        let upstream = match svc.kind.upstream_ref() {
            None => None,
            Some(up) => Some(w.key_of(up)?),
        };
        let pool_nodes = match &svc.kind {
            ServiceKind::GiisPool { gris_hosts, .. } => gris_hosts
                .iter()
                .map(|hst| w.node_of(&h, name, hst))
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        let r = crate::deploy::ResolvedService {
            name,
            kind: &svc.kind,
            node,
            x,
            upstream,
            pool_nodes,
        };
        let d = backend_of(&svc.kind).deploy(&mut h, &r)?;
        w.placed.push(Placed {
            name: name.clone(),
            node,
            key: d.key,
        });
    }

    // Phase 2: the monitor.
    let wnode = w.node_of(&h, "watch", &spec.watch)?;
    h.watch(wnode);

    // Phase 3: the workload.
    spawn_workload(&mut h, &w)?;

    // Phase 4: faults + probe.
    install_resilience(&mut h, &w)?;

    Ok(h)
}

/// Run one `(spec, x)` point: compile, run, measure.
pub fn run_point(spec: &ScenarioSpec, x: u32, cfg: &RunConfig) -> Result<Measurement, DeployError> {
    Ok(compile(spec, x, cfg)?.run_and_measure(f64::from(x)))
}

/// [`run_point`] with the observability report harvested (requires
/// `cfg.obs` to enable tracing and/or metrics).
pub fn run_point_observed(
    spec: &ScenarioSpec,
    x: u32,
    cfg: &RunConfig,
) -> Result<ObservedPoint, DeployError> {
    Ok(compile(spec, x, cfg)?.run_and_observe(f64::from(x)))
}

// ======================================================================
// Workload
// ======================================================================

fn client_cpu_us(h: &Harness, cpu: ClientCpu) -> f64 {
    match cpu {
        ClientCpu::Mds => h.cfg.params.mds_client_cpu_us,
        ClientCpu::Condor => h.cfg.params.condor_client_cpu_us,
        ClientCpu::Rgma => h.cfg.params.rgma_client_cpu_us,
    }
}

fn user_config(h: &Harness, w: &World<'_>) -> UserConfig {
    UserConfig {
        think: h.cfg.params.think,
        retry_base: h.cfg.params.retry_base,
        retry_cap: h.cfg.params.retry_cap,
        series: "user".to_string(),
        client_cpu_us: client_cpu_us(h, w.spec.workload.cpu),
        timeout: w.spec.workload.timeout_s.map(SimDuration::from_secs),
    }
}

fn spawn_workload(h: &mut Harness, w: &World<'_>) -> Result<(), DeployError> {
    let users = w.spec.workload.users.eval(w.x) as usize;
    let ucfg = user_config(h, w);
    let factory = factory_for(w);
    match &w.spec.workload.placement {
        Placement::PerService(names) => {
            // User i sits beside — and queries — service names[i % len].
            let pairs: Vec<(NodeId, SvcKey)> = names
                .iter()
                .map(|n| {
                    let p = w.placed_of(n)?;
                    let key = p
                        .key
                        .ok_or_else(|| DeployError::NoServiceKey { service: n.clone() })?;
                    Ok((p.node, key))
                })
                .collect::<Result<_, DeployError>>()?;
            let placement: Vec<(NodeId, SvcKey)> =
                (0..users).map(|i| pairs[i % pairs.len()]).collect();
            workload::spawn_users_to(&mut h.net, &mut h.eng, &placement, &ucfg, factory);
        }
        placement => {
            let target_name =
                w.spec
                    .workload
                    .target
                    .as_deref()
                    .ok_or_else(|| DeployError::Probe {
                        msg: "workload has no target service".to_string(),
                    })?;
            let target = w.key_of(target_name)?;
            let nodes: Vec<NodeId> = match placement {
                Placement::Uc => h.uc.clone(),
                Placement::Hosts(hosts) => hosts
                    .iter()
                    .map(|hst| w.node_of(h, "[workload]", hst))
                    .collect::<Result<_, _>>()?,
                Placement::PerService(_) => unreachable!("handled above"),
            };
            let placement: Vec<NodeId> = (0..users).map(|i| nodes[i % nodes.len()]).collect();
            workload::spawn_users(&mut h.net, &mut h.eng, &placement, target, &ucfg, factory);
        }
    }
    Ok(())
}

/// Build the per-user query factory for a spec's workload.  The
/// context-dependent queries resolve their tables/hosts from the spec
/// itself (agent hosts in declaration order; the canonical producer
/// table set), never from run state, so the stream is deterministic.
fn factory_for(w: &World<'_>) -> Box<dyn FnMut() -> QueryFactory> {
    fn mds(req: fn() -> MdsRequest) -> Box<dyn FnMut() -> QueryFactory> {
        Box::new(move || {
            Box::new(move |_rng| {
                let req = req();
                let bytes = req.wire_size();
                (Box::new(req) as Payload, bytes)
            })
        })
    }
    fn hawkeye(msg: fn() -> HawkeyeMsg) -> Box<dyn FnMut() -> QueryFactory> {
        Box::new(move || {
            Box::new(move |_rng| {
                let m = msg();
                let bytes = m.wire_size();
                (Box::new(m) as Payload, bytes)
            })
        })
    }
    fn rgma(msg: fn() -> RgmaMsg) -> Box<dyn FnMut() -> QueryFactory> {
        Box::new(move || {
            Box::new(move |_rng| {
                let m = msg();
                let bytes = m.wire_size();
                (Box::new(m) as Payload, bytes)
            })
        })
    }
    match w.spec.workload.query {
        Query::MdsSearchAllGris0 => mds(|| MdsRequest::search_all(gris_suffix(0))),
        Query::MdsSearchAllGiis => mds(|| MdsRequest::search_all(giis_suffix())),
        Query::MdsSearchCpu { attrs_only } => Box::new(move || {
            Box::new(move |_rng| {
                let req = MdsRequest::Search {
                    base: giis_suffix(),
                    scope: Scope::Sub,
                    filter: Filter::parse("(mds-device-group-name=cpu)").unwrap(),
                    attrs: if attrs_only {
                        Some(vec!["mds-device-group-name".into(), "objectclass".into()])
                    } else {
                        None
                    },
                };
                let bytes = req.wire_size();
                (Box::new(req) as Payload, bytes)
            })
        }),
        Query::HawkeyeAgentStatus => hawkeye(|| HawkeyeMsg::AgentStatus),
        Query::HawkeyeAgentFull => hawkeye(|| HawkeyeMsg::AgentFull),
        Query::HawkeyeConstraintMiss => hawkeye(|| HawkeyeMsg::Constraint {
            expr: "NoSuchAttribute =?= 424242".into(),
        }),
        Query::HawkeyeStatusRandom => {
            // Status of a random deployed agent host, in declaration order.
            let hosts: Vec<String> = w
                .spec
                .services
                .iter()
                .filter(|(_, s)| matches!(s.kind, ServiceKind::Agent { .. }))
                .map(|(_, s)| s.host.clone())
                .collect();
            Box::new(move || {
                let hosts = hosts.clone();
                Box::new(move |rng| {
                    let host = hosts[rng.next_below(hosts.len() as u64) as usize].clone();
                    let m = HawkeyeMsg::Status {
                        machine: Some(host),
                    };
                    let bytes = m.wire_size();
                    (Box::new(m) as Payload, bytes)
                })
            })
        }
        Query::RgmaConsumerQuery => rgma(|| RgmaMsg::ConsumerQuery {
            sql: "SELECT * FROM cpuload".into(),
        }),
        Query::RgmaProducerQueryAll => rgma(|| RgmaMsg::ProducerQuery {
            sql: "*ALL*".into(),
        }),
        Query::RgmaRegistryLookupRandom => {
            // Lookup of a random table from the canonical producer set.
            let tables: Vec<String> = rgma::producer::default_producers("anl", 10)
                .into_iter()
                .map(|p| p.table)
                .collect();
            Box::new(move || {
                let tables = tables.clone();
                Box::new(move |rng| {
                    let t = tables[rng.next_below(tables.len() as u64) as usize].clone();
                    let m = RgmaMsg::RegistryLookup { table: t };
                    let bytes = m.wire_size();
                    (Box::new(m) as Payload, bytes)
                })
            })
        }
    }
}

// ======================================================================
// Faults + resilience probe
// ======================================================================

/// Every deployed service with the given `name()`, in deployment order
/// (slab order is deterministic).
pub fn services_named(h: &Harness, name: &str) -> Vec<SvcKey> {
    h.net
        .services
        .iter()
        .filter(|&(k, _)| h.net.service(k).is_some_and(|s| s.name() == name))
        .map(|(k, _)| k)
        .collect()
}

/// Translate the spec's fault policy into a concrete schedule: `n`
/// targets fault at `start_at` and heal at `heal_at`, under the resolved
/// scenario.
#[allow(clippy::too_many_arguments)]
fn build_plan(
    h: &Harness,
    scenario: Scenario,
    svcs: &[SvcKey],
    hosts: &[String],
    prime: &[(SimDuration, u64)],
    n: usize,
    start_at: SimTime,
    heal_at: SimTime,
) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let n = n.min(svcs.len());
    match scenario {
        Scenario::None | Scenario::Auto => {}
        Scenario::Churn => {
            for &svc in &svcs[..n] {
                plan.push(start_at, FaultAction::Crash { svc });
                plan.push(
                    heal_at,
                    FaultAction::Restart {
                        svc,
                        prime: prime.to_vec(),
                    },
                );
            }
        }
        Scenario::Partition => {
            let lan = TestbedConfig::default().lan_bps;
            for host in &hosts[..n.min(hosts.len())] {
                for dir in ["up", "down"] {
                    let link = h
                        .net
                        .topo
                        .find_link(&format!("{host}-{dir}"))
                        .expect("access link");
                    plan.push(
                        start_at,
                        FaultAction::SetLinkCapacity {
                            link,
                            bps: PARTITION_BPS,
                        },
                    );
                    plan.push(heal_at, FaultAction::SetLinkCapacity { link, bps: lan });
                }
            }
        }
        Scenario::Freeze => {
            for &svc in &svcs[..n] {
                plan.push(
                    start_at,
                    FaultAction::Freeze {
                        svc,
                        until: heal_at,
                    },
                );
            }
        }
        Scenario::ConnBurst => {
            for &svc in &svcs[..n] {
                plan.push(
                    start_at,
                    FaultAction::DropConns {
                        svc,
                        until: heal_at,
                    },
                );
            }
        }
    }
    plan
}

/// What the resilience probe watches.
enum ProbeTarget {
    Giis {
        giis: SvcKey,
        /// Data older than this means a subtree missed its re-pull.
        fresh_horizon: SimDuration,
    },
    Rgma {
        /// All producer servlets (staleness = mean publication age).
        all: Vec<SvcKey>,
        /// The crashed subset (recovery = all have republished).
        crashed: Vec<SvcKey>,
    },
    Hawkeye {
        mgr: SvcKey,
        total: usize,
    },
}

/// A passive deterministic observer: samples system staleness into a
/// gauge every [`PROBE_PERIOD_S`] seconds (window samples only) and
/// records the first instant the system looks healthy again after the
/// heal.  It only reads simulation state and writes stats, so it cannot
/// perturb the run's trajectory.
struct Probe {
    target: ProbeTarget,
    ws: SimTime,
    we: SimTime,
    heal_at: SimTime,
    faulted: bool,
    recovered: bool,
}

impl Probe {
    fn staleness(&self, net: &simnet::Net, now: SimTime) -> Option<f64> {
        match &self.target {
            ProbeTarget::Giis { giis, .. } => net
                .service_as::<Giis>(*giis)
                .and_then(|g| g.max_data_age(now))
                .map(|d| d.as_secs_f64()),
            ProbeTarget::Rgma { all, .. } => {
                let ages: Vec<f64> = all
                    .iter()
                    .filter_map(|&k| net.service_as::<ProducerServlet>(k))
                    .filter_map(|ps| ps.last_publish_at)
                    .map(|t| now.saturating_since(t).as_secs_f64())
                    .collect();
                if ages.is_empty() {
                    None
                } else {
                    Some(ages.iter().sum::<f64>() / ages.len() as f64)
                }
            }
            ProbeTarget::Hawkeye { mgr, .. } => net
                .service_as::<Manager>(*mgr)
                .and_then(|m| m.mean_ad_age(now)),
        }
    }

    fn healthy(&self, net: &simnet::Net, now: SimTime) -> bool {
        match &self.target {
            ProbeTarget::Giis {
                giis,
                fresh_horizon,
            } => net
                .service_as::<Giis>(*giis)
                .and_then(|g| g.max_data_age(now))
                .is_some_and(|age| age <= *fresh_horizon),
            ProbeTarget::Rgma { crashed, .. } => crashed.iter().all(|&k| {
                !net.service_down(k)
                    && net
                        .service_as::<ProducerServlet>(k)
                        .and_then(|ps| ps.last_publish_at)
                        .is_some_and(|t| t >= self.heal_at)
            }),
            ProbeTarget::Hawkeye { mgr, total } => {
                net.service_as::<Manager>(*mgr).is_some_and(|m| {
                    m.fresh_count(now, SimDuration::from_secs(HAWKEYE_FRESH_HORIZON_S)) == *total
                })
            }
        }
    }
}

impl Client for Probe {
    fn on_start(&mut self, cx: &mut ClientCx) {
        cx.wake_in(SimDuration::from_secs(PROBE_PERIOD_S), 0);
    }

    fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
        let now = cx.now();
        let period = SimDuration::from_secs(PROBE_PERIOD_S);
        if now >= self.ws && now < self.we {
            if let Some(age) = self.staleness(cx.net, now) {
                cx.net.stats.gauge("probe.staleness_s", age);
            }
        }
        if self.faulted && !self.recovered && now >= self.heal_at {
            if self.healthy(cx.net, now) {
                self.recovered = true;
                let r = now.saturating_since(self.heal_at).as_secs_f64();
                cx.net.stats.gauge("probe.recovery_s", r);
                cx.net.stats.incr("probe.recovered");
            } else if now + period >= self.we && self.heal_at < self.we {
                // Last in-window sample and still unhealthy: censor
                // recovery at window end so the mean stays defined.
                self.recovered = true;
                let r = self.we.saturating_since(self.heal_at).as_secs_f64();
                cx.net.stats.gauge("probe.recovery_s", r);
                cx.net.stats.incr("probe.censored");
            }
        }
        cx.wake_in(period, 0);
    }
}

/// The TTL a probe's fresh horizon derives from, looked up on the
/// watched service's declared kind.
fn declared_ttl(w: &World<'_>, h: &Harness, name: &str) -> Result<SimDuration, DeployError> {
    let kind = w
        .spec
        .services
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, s)| &s.kind)
        .ok_or_else(|| DeployError::Probe {
            msg: format!("probe target {name:?} is not a declared service"),
        })?;
    let ttl = match kind {
        ServiceKind::GiisPool { cachettl, .. } | ServiceKind::Giis { cachettl, .. } => {
            crate::deploy::resolve_ttl(*cachettl, h)
        }
        _ => None,
    };
    ttl.ok_or_else(|| DeployError::Probe {
        msg: format!("service {name:?} has no finite cache TTL to probe freshness against"),
    })
}

/// Build the fault schedule from the policy, add the probe client, and
/// install the schedule.  The run's `FaultSpec` (onset/heal fractions,
/// scenario override) comes from the `RunConfig`; the x value sets how
/// many targets fault; `Scenario::Auto` resolves to the policy's kind
/// and `Scenario::None` (the default) injects nothing.
fn install_resilience(h: &mut Harness, w: &World<'_>) -> Result<(), DeployError> {
    let cfg = h.cfg;
    let ws = cfg.window_start();
    let we = cfg.window_end();
    let start_at = ws + cfg.window.mul_f64(cfg.faults.start_frac);
    let heal_at = ws + cfg.window.mul_f64(cfg.faults.heal_frac);

    let plan = match &w.spec.faults {
        None => FaultPlan::new(),
        Some(policy) => {
            let scenario = match cfg.faults.scenario {
                Scenario::Auto => match policy.scenario {
                    FaultKind::Partition => Scenario::Partition,
                    FaultKind::Churn => Scenario::Churn,
                },
                s => s,
            };
            let svcs = services_named(h, &policy.service);
            let prime = vec![(SimDuration::from_millis(policy.prime_ms), 0)];
            build_plan(
                h,
                scenario,
                &svcs,
                &policy.hosts,
                &prime,
                w.x as usize,
                start_at,
                heal_at,
            )
        }
    };

    if let Some(ps) = &w.spec.probe {
        let target = match ps {
            ProbeSpec::GiisFreshness { giis } => {
                let ttl = declared_ttl(w, h, giis)?;
                ProbeTarget::Giis {
                    giis: w.key_of(giis)?,
                    fresh_horizon: ttl + SimDuration::from_secs(5),
                }
            }
            ProbeSpec::RgmaProducers => {
                let all = services_named(h, "rgma-producer-servlet");
                let crashed: Vec<SvcKey> = all
                    .iter()
                    .copied()
                    .take((w.x as usize).min(all.len()))
                    .collect();
                ProbeTarget::Rgma { all, crashed }
            }
            ProbeSpec::HawkeyeAds { manager } => {
                let total = w
                    .spec
                    .services
                    .iter()
                    .filter(|(_, s)| matches!(s.kind, ServiceKind::Agent { .. }))
                    .count();
                ProbeTarget::Hawkeye {
                    mgr: w.key_of(manager)?,
                    total,
                }
            }
        };
        let faulted = !plan.is_empty();
        h.net.add_client(Box::new(Probe {
            target,
            ws,
            we,
            heal_at,
            faulted,
            recovered: false,
        }));
    }
    h.install_faults(plan);
    Ok(())
}

// ======================================================================
// The built-in catalogue
// ======================================================================

/// The five paper experiment sets — plus the federated Set 6 — as
/// [`ScenarioSpec`] values.  These are the single source of truth the
/// `experiments::setN::build` functions compile; their canonical text
/// (and hence fingerprint) is part of the result cache's address.
pub mod catalogue {
    use crate::experiments::{
        Set1Series, Set2Series, Set3Series, Set4Series, Set5Series, Set6Series,
    };
    use gscenario::{
        ClientCpu, Count, FaultKind, FaultPolicy, Placement, ProbeSpec, Query, ScenarioSpec,
        ServiceKind, ServiceSpec, SystemId, Ttl, WorkloadSpec,
    };

    fn svc(name: &str, host: &str, kind: ServiceKind) -> (String, ServiceSpec) {
        (
            name.to_string(),
            ServiceSpec {
                kind,
                host: host.to_string(),
            },
        )
    }

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn workload(target: Option<&str>, query: Query, cpu: ClientCpu) -> WorkloadSpec {
        WorkloadSpec {
            users: Count::X,
            placement: Placement::Uc,
            target: target.map(str::to_string),
            query,
            cpu,
            timeout_s: None,
        }
    }

    fn spec(
        name: &str,
        system: SystemId,
        x_values: &[u32],
        services: Vec<(String, ServiceSpec)>,
        watch: &str,
        workload: WorkloadSpec,
    ) -> ScenarioSpec {
        let s = ScenarioSpec {
            name: name.to_string(),
            system,
            x_values: x_values.to_vec(),
            services,
            watch: watch.to_string(),
            workload,
            probe: None,
            faults: None,
        };
        debug_assert!(s.validate().is_ok(), "catalogue spec {name} is invalid");
        s
    }

    /// Experiment Set 1 — information server scalability with users.
    pub fn set1(series: Set1Series) -> ScenarioSpec {
        match series {
            Set1Series::GrisCache | Set1Series::GrisNoCache => {
                let cache = series == Set1Series::GrisCache;
                let name = if cache {
                    "set1-gris-cache"
                } else {
                    "set1-gris-nocache"
                };
                spec(
                    name,
                    SystemId::Mds,
                    series.user_counts(),
                    vec![svc(
                        "gris",
                        "lucky7",
                        ServiceKind::Gris {
                            providers: Count::Lit(10),
                            cache,
                            gsi: true,
                        },
                    )],
                    "lucky7",
                    workload(Some("gris"), Query::MdsSearchAllGris0, ClientCpu::Mds),
                )
            }
            Set1Series::HawkeyeAgent => spec(
                "set1-hawkeye-agent",
                SystemId::Hawkeye,
                series.user_counts(),
                vec![
                    svc("mgr", "lucky3", ServiceKind::Manager),
                    svc(
                        "agent",
                        "lucky4",
                        ServiceKind::Agent {
                            modules: Count::Lit(11),
                            manager: "mgr".to_string(),
                        },
                    ),
                ],
                "lucky4",
                workload(Some("agent"), Query::HawkeyeAgentStatus, ClientCpu::Condor),
            ),
            Set1Series::ProducerServletUC => spec(
                "set1-producer-servlet-uc",
                SystemId::Rgma,
                series.user_counts(),
                vec![
                    svc("reg", "lucky1", ServiceKind::Registry),
                    svc(
                        "ps",
                        "lucky3",
                        ServiceKind::ProducerServlet {
                            producers: Count::Lit(10),
                            registry: "reg".to_string(),
                        },
                    ),
                    svc(
                        "cs",
                        "uc00",
                        ServiceKind::ConsumerServlet {
                            registry: "reg".to_string(),
                        },
                    ),
                ],
                "lucky3",
                workload(Some("cs"), Query::RgmaConsumerQuery, ClientCpu::Rgma),
            ),
            Set1Series::ProducerServletLucky => {
                // One ConsumerServlet per Lucky client node (lucky minus
                // the servlet/registry hosts), users beside their servlet.
                let mut services = vec![
                    svc("reg", "lucky1", ServiceKind::Registry),
                    svc(
                        "ps",
                        "lucky3",
                        ServiceKind::ProducerServlet {
                            producers: Count::Lit(10),
                            registry: "reg".to_string(),
                        },
                    ),
                ];
                let client_hosts = ["lucky0", "lucky4", "lucky5", "lucky6", "lucky7"];
                for (i, host) in client_hosts.iter().enumerate() {
                    services.push(svc(
                        &format!("cs{i}"),
                        host,
                        ServiceKind::ConsumerServlet {
                            registry: "reg".to_string(),
                        },
                    ));
                }
                let mut w = workload(None, Query::RgmaConsumerQuery, ClientCpu::Rgma);
                w.placement = Placement::PerService(
                    (0..client_hosts.len()).map(|i| format!("cs{i}")).collect(),
                );
                spec(
                    "set1-producer-servlet-lucky",
                    SystemId::Rgma,
                    series.user_counts(),
                    services,
                    "lucky3",
                    w,
                )
            }
        }
    }

    /// Experiment Set 2 — directory server scalability with users.
    pub fn set2(series: Set2Series) -> ScenarioSpec {
        match series {
            Set2Series::Giis => spec(
                "set2-giis",
                SystemId::Mds,
                series.user_counts(),
                vec![svc(
                    "giis",
                    "lucky0",
                    ServiceKind::GiisPool {
                        gris_hosts: strings(&["lucky3", "lucky4", "lucky5", "lucky6", "lucky7"]),
                        n_gris: Count::Lit(5),
                        cachettl: Ttl::Pinned,
                    },
                )],
                "lucky0",
                workload(
                    Some("giis"),
                    Query::MdsSearchCpu { attrs_only: false },
                    ClientCpu::Mds,
                ),
            ),
            Set2Series::HawkeyeManager => {
                let mut services = vec![svc("mgr", "lucky3", ServiceKind::Manager)];
                let agent_hosts = ["lucky0", "lucky1", "lucky4", "lucky5", "lucky6", "lucky7"];
                for (i, host) in agent_hosts.iter().enumerate() {
                    services.push(svc(
                        &format!("a{i}"),
                        host,
                        ServiceKind::Agent {
                            modules: Count::Lit(11),
                            manager: "mgr".to_string(),
                        },
                    ));
                }
                spec(
                    "set2-hawkeye-manager",
                    SystemId::Hawkeye,
                    series.user_counts(),
                    services,
                    "lucky3",
                    workload(Some("mgr"), Query::HawkeyeStatusRandom, ClientCpu::Condor),
                )
            }
            Set2Series::RegistryLucky | Set2Series::RegistryUC => {
                let mut services = vec![svc("reg", "lucky1", ServiceKind::Registry)];
                for (i, host) in ["lucky3", "lucky4", "lucky5", "lucky6", "lucky7"]
                    .iter()
                    .enumerate()
                {
                    services.push(svc(
                        &format!("ps{i}"),
                        host,
                        ServiceKind::ProducerServlet {
                            producers: Count::Lit(10),
                            registry: "reg".to_string(),
                        },
                    ));
                }
                let mut w = workload(
                    Some("reg"),
                    Query::RgmaRegistryLookupRandom,
                    ClientCpu::Rgma,
                );
                let name = if series == Set2Series::RegistryUC {
                    "set2-registry-uc"
                } else {
                    // Users on the lucky nodes themselves (120 per node).
                    w.placement = Placement::Hosts(strings(&[
                        "lucky0", "lucky3", "lucky4", "lucky5", "lucky6",
                    ]));
                    "set2-registry-lucky"
                };
                spec(
                    name,
                    SystemId::Rgma,
                    series.user_counts(),
                    services,
                    "lucky1",
                    w,
                )
            }
        }
    }

    /// Experiment Set 3 — information server scalability with collectors.
    pub fn set3(series: Set3Series) -> ScenarioSpec {
        let users = Count::Lit(crate::experiments::set3::USERS);
        match series {
            Set3Series::GrisCache | Set3Series::GrisNoCache => {
                let cache = series == Set3Series::GrisCache;
                let name = if cache {
                    "set3-gris-cache"
                } else {
                    "set3-gris-nocache"
                };
                let mut w = workload(Some("gris"), Query::MdsSearchAllGris0, ClientCpu::Mds);
                w.users = users;
                spec(
                    name,
                    SystemId::Mds,
                    series.collector_counts(),
                    // Anonymous binds: the paper's Set-3 cached responses
                    // are sub-second, ruling out the 4 s GSI bind of Set 1.
                    vec![svc(
                        "gris",
                        "lucky7",
                        ServiceKind::Gris {
                            providers: Count::X,
                            cache,
                            gsi: false,
                        },
                    )],
                    "lucky7",
                    w,
                )
            }
            Set3Series::HawkeyeAgent => {
                let mut w = workload(Some("agent"), Query::HawkeyeAgentFull, ClientCpu::Condor);
                w.users = users;
                spec(
                    "set3-hawkeye-agent",
                    SystemId::Hawkeye,
                    series.collector_counts(),
                    vec![
                        svc("mgr", "lucky3", ServiceKind::Manager),
                        svc(
                            "agent",
                            "lucky4",
                            ServiceKind::Agent {
                                modules: Count::X,
                                manager: "mgr".to_string(),
                            },
                        ),
                    ],
                    "lucky4",
                    w,
                )
            }
            Set3Series::ProducerServlet => {
                let mut w = workload(Some("ps"), Query::RgmaProducerQueryAll, ClientCpu::Rgma);
                w.users = users;
                spec(
                    "set3-producer-servlet",
                    SystemId::Rgma,
                    series.collector_counts(),
                    vec![
                        svc("reg", "lucky1", ServiceKind::Registry),
                        svc(
                            "ps",
                            "lucky3",
                            ServiceKind::ProducerServlet {
                                producers: Count::X,
                                registry: "reg".to_string(),
                            },
                        ),
                    ],
                    "lucky3",
                    w,
                )
            }
        }
    }

    /// Experiment Set 4 — aggregate information server scalability.
    pub fn set4(series: Set4Series) -> ScenarioSpec {
        let users = Count::Lit(crate::experiments::set4::USERS);
        match series {
            Set4Series::GiisQueryAll | Set4Series::GiisQueryPart => {
                let all = series == Set4Series::GiisQueryAll;
                let (name, query) = if all {
                    ("set4-giis-query-all", Query::MdsSearchAllGiis)
                } else {
                    (
                        "set4-giis-query-part",
                        Query::MdsSearchCpu { attrs_only: true },
                    )
                };
                let mut w = workload(Some("giis"), query, ClientCpu::Mds);
                w.users = users;
                spec(
                    name,
                    SystemId::Mds,
                    series.server_counts(),
                    vec![svc(
                        "giis",
                        "lucky0",
                        ServiceKind::GiisPool {
                            gris_hosts: strings(&[
                                "lucky1", "lucky3", "lucky4", "lucky5", "lucky6", "lucky7",
                            ]),
                            n_gris: Count::X,
                            cachettl: Ttl::Exp4,
                        },
                    )],
                    "lucky0",
                    w,
                )
            }
            Set4Series::HawkeyeManager => {
                let mut w = workload(Some("mgr"), Query::HawkeyeConstraintMiss, ClientCpu::Condor);
                w.users = users;
                spec(
                    "set4-hawkeye-manager",
                    SystemId::Hawkeye,
                    series.server_counts(),
                    vec![
                        svc("mgr", "lucky3", ServiceKind::Manager),
                        // The advertiser fleet lives on lucky4 (the paper
                        // used `hawkeye_advertise` from testbed hosts).
                        svc(
                            "fleet",
                            "lucky4",
                            ServiceKind::AdvertiserFleet {
                                machines: Count::X,
                                manager: "mgr".to_string(),
                            },
                        ),
                    ],
                    "lucky3",
                    w,
                )
            }
        }
    }

    /// Experiment Set 5 — resilience under injected faults.
    pub fn set5(series: Set5Series) -> ScenarioSpec {
        let users = Count::Lit(crate::experiments::set5::USERS);
        let timeout = Some(crate::experiments::set5::CLIENT_TIMEOUT_S);
        match series {
            Set5Series::MdsGiis => {
                let mut w = workload(
                    Some("giis"),
                    Query::MdsSearchCpu { attrs_only: false },
                    ClientCpu::Mds,
                );
                w.users = users;
                w.timeout_s = timeout;
                let mut s = spec(
                    "set5-mds-giis",
                    SystemId::Mds,
                    series.fault_counts(),
                    vec![svc(
                        "giis",
                        "lucky0",
                        ServiceKind::GiisPool {
                            gris_hosts: strings(&[
                                "lucky3", "lucky4", "lucky5", "lucky6", "lucky7",
                            ]),
                            n_gris: Count::Lit(5),
                            cachettl: Ttl::Exp4,
                        },
                    )],
                    "lucky0",
                    w,
                );
                s.probe = Some(ProbeSpec::GiisFreshness {
                    giis: "giis".to_string(),
                });
                s.faults = Some(FaultPolicy {
                    service: "gris".to_string(),
                    hosts: strings(&["lucky3", "lucky4", "lucky5", "lucky6", "lucky7"]),
                    prime_ms: 50,
                    scenario: FaultKind::Partition,
                });
                s
            }
            Set5Series::RgmaRegistry => {
                let mut services = vec![svc("reg", "lucky1", ServiceKind::Registry)];
                let ps_hosts = ["lucky3", "lucky4", "lucky5", "lucky6", "lucky7"];
                for (i, host) in ps_hosts.iter().enumerate() {
                    services.push(svc(
                        &format!("ps{i}"),
                        host,
                        ServiceKind::ProducerServlet {
                            producers: Count::Lit(10),
                            registry: "reg".to_string(),
                        },
                    ));
                }
                services.push(svc(
                    "cs",
                    "lucky0",
                    ServiceKind::ConsumerServlet {
                        registry: "reg".to_string(),
                    },
                ));
                let mut w = workload(Some("cs"), Query::RgmaConsumerQuery, ClientCpu::Rgma);
                w.users = users;
                w.timeout_s = timeout;
                let mut s = spec(
                    "set5-rgma-registry",
                    SystemId::Rgma,
                    series.fault_counts(),
                    services,
                    "lucky1",
                    w,
                );
                s.probe = Some(ProbeSpec::RgmaProducers);
                s.faults = Some(FaultPolicy {
                    service: "rgma-producer-servlet".to_string(),
                    hosts: strings(&ps_hosts),
                    prime_ms: 200,
                    scenario: FaultKind::Churn,
                });
                s
            }
            Set5Series::HawkeyeManager => {
                let mut services = vec![svc("mgr", "lucky3", ServiceKind::Manager)];
                let agent_hosts = ["lucky0", "lucky1", "lucky4", "lucky5", "lucky6", "lucky7"];
                for (i, host) in agent_hosts.iter().enumerate() {
                    services.push(svc(
                        &format!("a{i}"),
                        host,
                        ServiceKind::Agent {
                            modules: Count::Lit(11),
                            manager: "mgr".to_string(),
                        },
                    ));
                }
                let mut w = workload(Some("mgr"), Query::HawkeyeStatusRandom, ClientCpu::Condor);
                w.users = users;
                w.timeout_s = timeout;
                let mut s = spec(
                    "set5-hawkeye-manager",
                    SystemId::Hawkeye,
                    series.fault_counts(),
                    services,
                    "lucky3",
                    w,
                );
                s.probe = Some(ProbeSpec::HawkeyeAds {
                    manager: "mgr".to_string(),
                });
                s.faults = Some(FaultPolicy {
                    service: "hawkeye-agent".to_string(),
                    hosts: strings(&agent_hosts),
                    prime_ms: 500,
                    scenario: FaultKind::Churn,
                });
                s
            }
        }
    }

    /// Experiment Set 6 — hierarchical-GIIS federation, the demonstration
    /// scenario the declarative layer makes expressible: `x` GRISes flat
    /// under one GIIS vs the same `x` sharded over 3 or 6 mid-level
    /// branch GIISes under a 2-level index.
    pub fn set6(series: Set6Series) -> ScenarioSpec {
        let users = Count::Lit(crate::experiments::set6::USERS);
        match series {
            Set6Series::FlatGiis => {
                let mut w = workload(Some("top"), Query::MdsSearchAllGiis, ClientCpu::Mds);
                w.users = users;
                spec(
                    "set6-flat-giis",
                    SystemId::Mds,
                    series.server_counts(),
                    vec![svc(
                        "top",
                        "lucky0",
                        ServiceKind::GiisPool {
                            gris_hosts: strings(&[
                                "lucky1", "lucky3", "lucky4", "lucky5", "lucky6", "lucky7",
                            ]),
                            n_gris: Count::X,
                            cachettl: Ttl::Exp4,
                        },
                    )],
                    "lucky0",
                    w,
                )
            }
            Set6Series::Federated3 | Set6Series::Federated6 => {
                let branches: u32 = if series == Set6Series::Federated3 {
                    3
                } else {
                    6
                };
                let name = if branches == 3 {
                    "set6-federated-3"
                } else {
                    "set6-federated-6"
                };
                let hosts = ["lucky1", "lucky3", "lucky4", "lucky5", "lucky6", "lucky7"];
                let mut services = vec![svc(
                    "top",
                    "lucky0",
                    ServiceKind::Giis {
                        cachettl: Ttl::Exp4,
                        parent: None,
                        branch: 0,
                    },
                )];
                for b in 0..branches {
                    let host = hosts[b as usize];
                    services.push(svc(
                        &format!("mid{b}"),
                        host,
                        ServiceKind::Giis {
                            cachettl: Ttl::Exp4,
                            parent: Some("top".to_string()),
                            branch: b,
                        },
                    ));
                    services.push(svc(
                        &format!("shard{b}"),
                        host,
                        ServiceKind::GrisFleet {
                            parent: format!("mid{b}"),
                            providers: 10,
                            share: (b, branches),
                        },
                    ));
                }
                let mut w = workload(Some("top"), Query::MdsSearchAllGiis, ClientCpu::Mds);
                w.users = users;
                spec(
                    name,
                    SystemId::Mds,
                    series.server_counts(),
                    services,
                    "lucky0",
                    w,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{
        set1, set2, set3, set4, set5, Set1Series, Set2Series, Set3Series, Set4Series, Set5Series,
    };
    use gscenario::parse;

    fn quick(seed: u64) -> RunConfig {
        let mut cfg = RunConfig::quick(seed);
        cfg.warmup = SimDuration::from_secs(5);
        cfg.window = SimDuration::from_secs(20);
        cfg
    }

    /// Every catalogue spec round-trips through the text format —
    /// the committed examples stay parseable and canonical.
    #[test]
    fn catalogue_specs_round_trip_and_validate() {
        let mut fingerprints = std::collections::HashSet::new();
        for spec in all_catalogue_specs() {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let text = spec.print();
            let back = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(back, spec, "{} must round-trip", spec.name);
            assert!(
                fingerprints.insert(spec.fingerprint()),
                "{} collides with another spec",
                spec.name
            );
        }
    }

    fn all_catalogue_specs() -> Vec<ScenarioSpec> {
        let mut v = Vec::new();
        v.extend(Set1Series::ALL.iter().map(|&s| catalogue::set1(s)));
        v.extend(Set2Series::ALL.iter().map(|&s| catalogue::set2(s)));
        v.extend(Set3Series::ALL.iter().map(|&s| catalogue::set3(s)));
        v.extend(Set4Series::ALL.iter().map(|&s| catalogue::set4(s)));
        v.extend(Set5Series::ALL.iter().map(|&s| catalogue::set5(s)));
        v.extend(
            crate::experiments::Set6Series::ALL
                .iter()
                .map(|&s| catalogue::set6(s)),
        );
        v
    }

    /// The compiler is the builders: `experiments::setN::build` delegates
    /// to `compile(catalogue::setN(..))`, so running a point through
    /// either path must be bit-identical.  (This is the in-crate twin of
    /// the golden fig05–fig24 CSV comparison.)
    #[test]
    fn compiled_points_match_builders_bit_for_bit() {
        let cfg = quick(42);
        let m1 = set1::run_point(Set1Series::GrisCache, 3, &cfg);
        let c1 = run_point(&catalogue::set1(Set1Series::GrisCache), 3, &cfg).unwrap();
        assert_eq!(m1, c1);
        let m2 = set2::run_point(Set2Series::HawkeyeManager, 2, &cfg);
        let c2 = run_point(&catalogue::set2(Set2Series::HawkeyeManager), 2, &cfg).unwrap();
        assert_eq!(m2, c2);
        let m3 = set3::run_point(Set3Series::ProducerServlet, 5, &cfg);
        let c3 = run_point(&catalogue::set3(Set3Series::ProducerServlet), 5, &cfg).unwrap();
        assert_eq!(m3, c3);
        let m4 = set4::run_point(Set4Series::GiisQueryPart, 4, &cfg);
        let c4 = run_point(&catalogue::set4(Set4Series::GiisQueryPart), 4, &cfg).unwrap();
        assert_eq!(m4, c4);
    }

    /// A faulted Set-5 point through the compiler carries the probe and
    /// fault machinery: identical to the builder under the canonical
    /// fault schedule.
    #[test]
    fn compiled_set5_point_matches_builder_under_faults() {
        let mut cfg = quick(7);
        cfg.warmup = SimDuration::from_secs(20);
        cfg.window = SimDuration::from_secs(100);
        cfg.faults = set5::default_spec();
        let m = set5::run_point(Set5Series::RgmaRegistry, 3, &cfg);
        let c = run_point(&catalogue::set5(Set5Series::RgmaRegistry), 3, &cfg).unwrap();
        assert_eq!(m, c);
        assert!(m.recovery_s > 0.0, "churn must be observed healing: {m:?}");
    }

    /// A user-authored spec straight from text runs end to end.
    #[test]
    fn parsed_scenario_compiles_and_runs() {
        let text = r#"
name = "tiny-giis"
system = "mds"
x = [2]
watch = "lucky0"

[service.giis]
kind = "giis-pool"
host = "lucky0"
gris_hosts = ["lucky3", "lucky4"]
n_gris = "x"
cachettl = "pinned"

[workload]
users = 3
target = "giis"
query = "mds-search-all-giis"
"#;
        let spec = parse(text).unwrap();
        let m = run_point(&spec, 2, &quick(9)).unwrap();
        assert!(m.completions > 0, "{m:?}");
        // Deterministic: same spec, same cfg, same bits.
        let m2 = run_point(&spec, 2, &quick(9)).unwrap();
        assert_eq!(m, m2);
    }

    /// Compile errors carry the offending service, not a panic.
    #[test]
    fn compile_errors_name_the_offender() {
        let mut spec = catalogue::set1(Set1Series::GrisCache);
        spec.services[0].1.host = "lucky2".to_string();
        let err = match compile(&spec, 1, &quick(1)) {
            Ok(_) => panic!("lucky2 does not exist; compile must fail"),
            Err(e) => e,
        };
        assert_eq!(
            err.to_string(),
            "service \"gris\": no host \"lucky2\" on the testbed"
        );
    }

    /// The federation sweep deploys a 2-level index: top GIIS + branch
    /// GIISes + sharded GRIS fleets, and queries flow end to end.
    #[test]
    fn set6_federation_compiles_and_answers() {
        let spec = catalogue::set6(crate::experiments::Set6Series::Federated3);
        let m = run_point(&spec, 6, &quick(11)).unwrap();
        assert!(m.completions > 0, "{m:?}");
    }
}
