//! Report rendering: aligned text tables, CSV, and quick ASCII charts.

use crate::figures::FigureData;

/// Do two x-coordinates name the same sweep point?  Exact `==` breaks as
/// soon as an x is recomputed through floating point (a scaled sweep can
/// yield `0.30000000000000004` in one series and `0.3` in another), so
/// points are matched with a relative tolerance of one part in 10⁹.
///
/// This is *the* x-identity predicate for report rendering: both the row
/// dedup and the per-series lookups in [`text_table`] and [`csv`] must go
/// through it, or a near-tie x (inside tolerance of a dedup survivor)
/// would collapse to one row yet miss its lookup and render as a gap.
/// Note the tolerance is relative, so `0.0` only matches exactly `0.0`.
pub(crate) fn same_x(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= 1e-9 * a.abs().max(b.abs())
}

/// Render a figure's series as an aligned text table (x down the rows,
/// one column per series).
pub fn text_table(fig: &FigureData) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}: {}\n", fig.id, fig.title));
    // Collect the union of x values.
    let mut xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| same_x(*a, *b));
    out.push_str(&format!(
        "{:>12}",
        fig.x_label.split(' ').next_back().unwrap_or("x")
    ));
    for s in &fig.series {
        out.push_str(&format!("  {:>28}", truncate(&s.label, 28)));
    }
    out.push('\n');
    for &x in &xs {
        out.push_str(&format!("{x:>12.0}"));
        for s in &fig.series {
            match s.points.iter().find(|&&(px, _)| same_x(px, x)) {
                Some(&(_, y)) => out.push_str(&format!("  {y:>28.3}")),
                None => out.push_str(&format!("  {:>28}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render a figure as CSV (`x,series1,series2,...`).
pub fn csv(fig: &FigureData) -> String {
    let mut out = String::new();
    out.push('x');
    for s in &fig.series {
        out.push(',');
        out.push_str(&s.label.replace(',', ";"));
    }
    out.push('\n');
    let mut xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| same_x(*a, *b));
    for &x in &xs {
        out.push_str(&format!("{x}"));
        for s in &fig.series {
            out.push(',');
            if let Some(&(_, y)) = s.points.iter().find(|&&(px, _)| same_x(px, x)) {
                out.push_str(&format!("{y:.6}"));
            }
        }
        out.push('\n');
    }
    out
}

/// A quick ASCII chart of one figure (each series gets a letter).
pub fn ascii_chart(fig: &FigureData, width: usize, height: usize) -> String {
    let mut out = String::new();
    let all: Vec<(f64, f64)> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return format!("{}: (no data)\n", fig.id);
    }
    let xmax = all
        .iter()
        .map(|&(x, _)| x)
        .fold(f64::MIN, f64::max)
        .max(1.0);
    let ymax = all
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in fig.series.iter().enumerate() {
        let mark = (b'A' + (si as u8 % 26)) as char;
        for &(x, y) in &s.points {
            let cx = ((x / xmax) * (width as f64 - 1.0)).round() as usize;
            let cy = ((y / ymax) * (height as f64 - 1.0)).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            grid[row][col] = mark;
        }
    }
    out.push_str(&format!("{} — {} (ymax {:.2})\n", fig.id, fig.title, ymax));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push_str(&format!("> {} (xmax {:.0})\n", fig.x_label, xmax));
    for (si, s) in fig.series.iter().enumerate() {
        let mark = (b'A' + (si as u8 % 26)) as char;
        out.push_str(&format!("  {mark} = {}\n", s.label));
    }
    out
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::SeriesData;

    fn fig() -> FigureData {
        FigureData {
            id: "Figure 5".into(),
            title: "Throughput vs. Users".into(),
            x_label: "No. of Users".into(),
            y_label: "Throughput".into(),
            series: vec![
                SeriesData {
                    label: "MDS GRIS (cache)".into(),
                    points: vec![(1.0, 0.2), (100.0, 20.0), (600.0, 120.0)],
                },
                SeriesData {
                    label: "Hawkeye Agent".into(),
                    points: vec![(1.0, 0.2), (100.0, 30.0)],
                },
            ],
        }
    }

    #[test]
    fn table_has_all_rows_and_gaps() {
        let t = text_table(&fig());
        assert!(t.contains("Figure 5"));
        assert!(t.contains("600"));
        assert!(t.contains("120.000"));
        // Agent has no 600-user point: rendered as '-'.
        let last = t.lines().last().unwrap();
        assert!(last.contains('-'), "{last}");
    }

    #[test]
    fn csv_round_numbers() {
        let c = csv(&fig());
        let mut lines = c.lines();
        assert_eq!(lines.next().unwrap(), "x,MDS GRIS (cache),Hawkeye Agent");
        assert!(c.contains("600,120.000000,"));
    }

    #[test]
    fn non_integer_x_values_align_across_series() {
        // The same sweep point computed two ways: 0.1 + 0.2 is not
        // bit-equal to 0.3, yet both series must land on one row.
        let f = FigureData {
            id: "Figure T".into(),
            title: "tolerance".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                SeriesData {
                    label: "a".into(),
                    points: vec![(0.1 + 0.2, 1.0)],
                },
                SeriesData {
                    label: "b".into(),
                    points: vec![(0.3, 2.0)],
                },
            ],
        };
        let t = text_table(&f);
        // One data row (header + one row), with both series populated.
        assert_eq!(t.lines().count(), 3, "{t}");
        let last = t.lines().last().unwrap();
        assert!(last.contains("1.000") && last.contains("2.000"), "{last}");
        let c = csv(&f);
        assert_eq!(c.lines().count(), 2, "{c}");
        let row = c.lines().nth(1).unwrap();
        assert!(
            row.contains("1.000000") && row.contains("2.000000"),
            "{row}"
        );
    }

    #[test]
    fn same_x_tolerance_boundaries() {
        // Inside the relative tolerance: matches.
        assert!(same_x(0.3, 0.1 + 0.2));
        assert!(same_x(1.0, 1.0 + 0.9e-9));
        assert!(same_x(1e6, 1e6 * (1.0 + 0.9e-9)));
        // Outside: distinct sweep points stay distinct.
        assert!(!same_x(1.0, 1.0 + 2.1e-9));
        assert!(!same_x(100.0, 101.0));
        // Relative, not absolute: zero only matches zero exactly…
        assert!(same_x(0.0, 0.0));
        assert!(!same_x(0.0, 1e-12));
        // …and symmetry holds on both sides.
        assert!(same_x(1.0 + 0.9e-9, 1.0));
        assert!(!same_x(1.0 + 2.1e-9, 1.0));
    }

    #[test]
    fn near_tie_x_collapses_to_one_populated_row() {
        // Two series compute "the same" x differing in the last ulps; the
        // dedup keeps one representative and both lookups must hit it.
        let x1 = 600.0;
        let x2 = 600.0 * (1.0 + 0.5e-9);
        assert!(same_x(x1, x2), "test premise: within tolerance");
        let f = FigureData {
            id: "Figure N".into(),
            title: "near tie".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                SeriesData {
                    label: "a".into(),
                    points: vec![(x1, 1.0)],
                },
                SeriesData {
                    label: "b".into(),
                    points: vec![(x2, 2.0)],
                },
            ],
        };
        let t = text_table(&f);
        assert_eq!(t.lines().count(), 3, "one header + one data row: {t}");
        let last = t.lines().last().unwrap();
        assert!(last.contains("1.000") && last.contains("2.000"), "{last}");
        let c = csv(&f);
        assert_eq!(c.lines().count(), 2, "{c}");
        let row = c.lines().nth(1).unwrap();
        assert!(
            row.contains("1.000000") && row.contains("2.000000"),
            "{row}"
        );
    }

    #[test]
    fn ascii_chart_renders() {
        let a = ascii_chart(&fig(), 40, 10);
        assert!(a.contains('A'));
        assert!(a.contains('B'));
        assert!(a.contains("MDS GRIS"));
    }
}
