//! The paper's Table 1: functional component mapping.
//!
//! "To facilitate this comparison, we map the functional components of
//! the services to one another."

use std::fmt;

/// The three systems under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    Mds,
    Rgma,
    Hawkeye,
}

impl System {
    pub const ALL: [System; 3] = [System::Mds, System::Rgma, System::Hawkeye];

    pub fn name(self) -> &'static str {
        match self {
            System::Mds => "MDS",
            System::Rgma => "R-GMA",
            System::Hawkeye => "Hawkeye",
        }
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The four functional roles of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    InformationCollector,
    InformationServer,
    AggregateInformationServer,
    DirectoryServer,
}

impl Role {
    pub const ALL: [Role; 4] = [
        Role::InformationCollector,
        Role::InformationServer,
        Role::AggregateInformationServer,
        Role::DirectoryServer,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Role::InformationCollector => "Information Collector",
            Role::InformationServer => "Information Server",
            Role::AggregateInformationServer => "Aggregate Information Server",
            Role::DirectoryServer => "Directory Server",
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The component of `system` playing `role`, exactly as in Table 1
/// (`None` = the system has no such component; R-GMA ships no aggregate
/// information server, though "one could easily be built using a
/// composite Consumer/Producer").
pub fn component_mapping(system: System, role: Role) -> Option<&'static str> {
    use Role::*;
    use System::*;
    Some(match (system, role) {
        (Mds, InformationCollector) => "Information Provider",
        (Mds, InformationServer) => "GRIS",
        (Mds, AggregateInformationServer) => "GIIS",
        (Mds, DirectoryServer) => "GIIS",
        (Rgma, InformationCollector) => "Producer",
        (Rgma, InformationServer) => "ProducerServlet",
        (Rgma, AggregateInformationServer) => return None,
        (Rgma, DirectoryServer) => "Registry",
        (Hawkeye, InformationCollector) => "Module",
        (Hawkeye, InformationServer) => "Agent",
        (Hawkeye, AggregateInformationServer) => "Manager",
        (Hawkeye, DirectoryServer) => "Manager",
    })
}

/// Render Table 1 as an aligned text table.
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<30} {:<24} {:<18} {:<10}\n",
        "", "MDS", "R-GMA", "Hawkeye"
    ));
    for role in Role::ALL {
        out.push_str(&format!(
            "{:<30} {:<24} {:<18} {:<10}\n",
            role.name(),
            component_mapping(System::Mds, role).unwrap_or("None"),
            component_mapping(System::Rgma, role).unwrap_or("None"),
            component_mapping(System::Hawkeye, role).unwrap_or("None"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_paper() {
        assert_eq!(
            component_mapping(System::Mds, Role::InformationCollector),
            Some("Information Provider")
        );
        assert_eq!(
            component_mapping(System::Rgma, Role::InformationServer),
            Some("ProducerServlet")
        );
        assert_eq!(
            component_mapping(System::Rgma, Role::AggregateInformationServer),
            None
        );
        assert_eq!(
            component_mapping(System::Hawkeye, Role::DirectoryServer),
            Some("Manager")
        );
        // GIIS and Manager each play two roles.
        assert_eq!(
            component_mapping(System::Mds, Role::AggregateInformationServer),
            component_mapping(System::Mds, Role::DirectoryServer),
        );
    }

    #[test]
    fn table_renders_all_roles() {
        let t = render_table1();
        for role in Role::ALL {
            assert!(t.contains(role.name()), "missing {role}");
        }
        assert!(t.contains("GRIS"));
        assert!(t.contains("Registry"));
        assert!(t.contains("None")); // R-GMA's missing aggregate server
    }
}
