//! Deployment harness: the simulated testbed plus helpers to place the
//! monitoring systems on it exactly as the paper did.

use crate::runcfg::{Measurement, RunConfig};
use ganglia::Monitor;
use gfaults::{FaultDriver, FaultPlan};
use hawkeye::{default_modules, AdvertiserFleet, Agent, Manager};
use ldapdir::Dn;
use mds::{default_providers, Giis, Gris};
use rgma::{ConsumerServlet, ProducerServlet, Registry};
use simcore::{Engine, SimDuration, SimTime};
use simnet::trace::{Ev, Obs, ObsReport};
use simnet::{ClientKey, Eng, Net, NodeId, StatsHub, SvcKey};
use testbed::{Testbed, TestbedConfig};

/// A measurement together with the observability harvest of its run:
/// the traced events / metrics snapshot plus the label tables needed to
/// render them (service slot → label, node id → host name).
#[derive(Debug)]
pub struct ObservedPoint {
    pub m: Measurement,
    pub report: ObsReport,
    /// Service labels (`name@host`), indexed by service slot.
    pub services: Vec<String>,
    /// Node names, indexed by node id.
    pub nodes: Vec<String>,
}

/// A ready-to-run simulated testbed with measurement plumbing.
pub struct Harness {
    pub net: Net,
    pub eng: Eng,
    pub lucky: Vec<NodeId>,
    pub uc: Vec<NodeId>,
    pub cfg: RunConfig,
    monitor: Option<ClientKey>,
    server_node: Option<NodeId>,
    /// Fault schedule, installed after deployment (keys and link ids are
    /// only known then).  `None` keeps the run loop on the exact code path
    /// a fault-free build would take.
    faults: Option<FaultDriver>,
}

impl Harness {
    /// Build the Lucky/UC testbed with the run's parameters.
    pub fn new(cfg: RunConfig) -> Harness {
        let tb = Testbed::build(TestbedConfig {
            wan_bps: cfg.params.wan_bps,
            wan_latency: cfg.params.wan_latency,
            ..TestbedConfig::default()
        });
        let Testbed {
            topo, lucky, uc, ..
        } = tb;
        let stats = StatsHub::new(cfg.window_start(), cfg.window_end());
        let mut net = Net::new(topo, stats);
        if cfg.obs.enabled() {
            net.obs = Obs::from_mode(cfg.obs);
        }
        let eng: Eng = Engine::new(cfg.seed);
        Harness {
            net,
            eng,
            lucky,
            uc,
            cfg,
            monitor: None,
            server_node: None,
            faults: None,
        }
    }

    /// Install a fault schedule.  Must be called after the deployment is
    /// complete (plans are bound to concrete service keys and link ids)
    /// and before [`run_and_measure`](Harness::run_and_measure).  Empty
    /// plans are discarded so the run loop stays on the fault-free path.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        if !plan.is_empty() {
            self.faults = Some(FaultDriver::new(plan));
        }
    }

    /// The node of a lucky host by name (`lucky0`..`lucky7`, no lucky2).
    pub fn lucky(&self, name: &str) -> NodeId {
        self.net
            .topo
            .find_node(name)
            .unwrap_or_else(|| panic!("no host {name}"))
    }

    /// Install the Ganglia monitor watching `server` (the host whose
    /// load1/CPU the experiment reports).
    pub fn watch(&mut self, server: NodeId) {
        let mut watched = vec![server];
        watched.extend(self.uc.iter().copied().take(2)); // client-side visibility
        self.monitor = Some(self.net.add_client(Box::new(Monitor::new(&watched))));
        self.server_node = Some(server);
    }

    /// Start everything and run to the end of the measurement window,
    /// then collect the paper's four metrics for `x` on the x-axis.
    pub fn run_and_measure(&mut self, x: f64) -> Measurement {
        assert!(self.monitor.is_some(), "call watch() before running");
        self.net.start(&mut self.eng);
        if self.net.obs.on() {
            self.run_window_observed();
        } else {
            self.run_to(self.cfg.window_end());
        }
        // Profiling hook: one call per completed run, reading counters the
        // engine keeps anyway.  A single predictable branch when no
        // profile is collecting, and never an input to the simulation.
        gperf::sim_report(
            self.eng.now().as_micros(),
            self.eng.fired,
            self.eng.popped,
            self.eng.advances,
        );
        let (ws, we) = (self.cfg.window_start(), self.cfg.window_end());
        let mkey = self.monitor.unwrap();
        let monitor: &Monitor = self.net.client_as(mkey).unwrap_or_else(|| {
            panic!(
                "client {}v{} is not the Ganglia monitor watch() installed",
                mkey.index, mkey.gen
            )
        });
        let server = self.server_node.unwrap();
        let completions = self.net.stats.completions("user");
        let failed = self.net.stats.counter("user.failed");
        let timedout = self.net.stats.counter("user.timedout");
        let attempts = completions + failed + timedout;
        Measurement {
            x,
            throughput: self.net.stats.throughput("user"),
            response_time: self.net.stats.mean_response_time("user"),
            load1: monitor.load1_mean(server, ws, we),
            cpu_load: monitor.cpu_mean(server, ws, we),
            refused: self.net.stats.counter("user.refused"),
            completions,
            availability: if attempts == 0 {
                1.0
            } else {
                completions as f64 / attempts as f64
            },
            staleness_s: self.net.stats.gauge_mean("probe.staleness_s"),
            recovery_s: self.net.stats.gauge_mean("probe.recovery_s"),
        }
    }

    /// Run the engine to `until`, pausing at each scheduled fault instant
    /// to apply due fault events.  Without an installed fault schedule
    /// this is a single plain `run_until` — the exact pre-faults path.
    fn run_to(&mut self, until: SimTime) {
        match self.faults.take() {
            None => self.eng.run_until(&mut self.net, until),
            Some(mut driver) => {
                loop {
                    let stop = driver.next_at().map_or(until, |t| t.min(until));
                    self.eng.run_until(&mut self.net, stop);
                    driver.apply_due(&mut self.net, &mut self.eng, stop);
                    if stop >= until {
                        break;
                    }
                }
                self.faults = Some(driver);
            }
        }
    }

    /// Traced twin of [`run_to`]: same segmentation, with the dispatch
    /// hook recording one `Dispatch` event per engine event.
    fn run_to_traced(&mut self, until: SimTime) {
        let mut hook = |net: &mut Net, at, seq| {
            net.obs.ev(at, Ev::Dispatch { seq });
        };
        match self.faults.take() {
            None => self.eng.run_until_with(&mut self.net, until, &mut hook),
            Some(mut driver) => {
                loop {
                    let stop = driver.next_at().map_or(until, |t| t.min(until));
                    self.eng.run_until_with(&mut self.net, stop, &mut hook);
                    driver.apply_due(&mut self.net, &mut self.eng, stop);
                    if stop >= until {
                        break;
                    }
                }
                self.faults = Some(driver);
            }
        }
    }

    /// The observed run path: identical event sequence to the plain
    /// `run_until` (same engine steps, same times), with the metrics
    /// window marked at warm-up end and — when tracing — one `Dispatch`
    /// event recorded per dispatched engine event.
    fn run_window_observed(&mut self) {
        let (ws, we) = (self.cfg.window_start(), self.cfg.window_end());
        self.run_to(ws);
        self.net.obs.window_begin(ws);
        if self.net.obs.tracing() {
            self.run_to_traced(we);
        } else {
            self.run_to(we);
        }
    }

    /// Like [`run_and_measure`], but also harvest the observability
    /// report.  Requires `cfg.obs` to enable tracing and/or metrics.
    pub fn run_and_observe(&mut self, x: f64) -> ObservedPoint {
        assert!(
            self.net.obs.on(),
            "run_and_observe requires cfg.obs to enable tracing or metrics"
        );
        let m = self.run_and_measure(x);
        let report = self.finish_obs().expect("obs enabled");
        ObservedPoint {
            m,
            report,
            services: self.service_labels(),
            nodes: self.node_names(),
        }
    }

    /// Harvest the observability report: inject end-of-run per-node CPU
    /// busy seconds into the metrics registry, then drain the sink.
    fn finish_obs(&mut self) -> Option<ObsReport> {
        let we = self.cfg.window_end();
        if self.net.obs.metrics_on() {
            let ids: Vec<NodeId> = self.net.topo.node_ids().collect();
            for id in ids {
                let busy = self.net.node_busy_core_seconds(id, we);
                let name = self.net.topo.node(id).name.clone();
                self.net
                    .obs
                    .metrics
                    .set_value(&format!("cpu.{name}.busy_core_s"), busy);
            }
        }
        self.net.obs.finish(we)
    }

    /// `name@host` labels for every live service, indexed by slot.
    fn service_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for (key, slot) in self.net.services.iter() {
            let idx = key.index as usize;
            if labels.len() <= idx {
                labels.resize(idx + 1, String::new());
            }
            let name = self
                .net
                .service(key)
                .map_or_else(String::new, |s| s.name().to_string());
            let host = &self.net.topo.node(slot.node).name;
            labels[idx] = format!("{name}@{host}");
        }
        labels
    }

    /// Host names indexed by node id.
    fn node_names(&self) -> Vec<String> {
        self.net
            .topo
            .node_ids()
            .map(|id| self.net.topo.node(id).name.clone())
            .collect()
    }
}

/// The standard MDS suffixes.
pub fn gris_suffix(i: usize) -> Dn {
    Dn::parse(&format!("mds-vo-name=resource-{i}, o=grid")).expect("suffix")
}

pub fn giis_suffix() -> Dn {
    Dn::parse("mds-vo-name=site, o=giis").expect("suffix")
}

/// A deployment failed in a way a scenario author can fix.  Carries the
/// offending service's spec name so a mis-wired scenario fails with a
/// message, not a panic backtrace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// A host reference resolved to no testbed node.
    UnknownHost { service: String, host: String },
    /// A kind landed on a backend that cannot deploy it.
    WrongBackend { service: String, kind: &'static str },
    /// A kind that needs an upstream was compiled without one.
    MissingUpstream { service: String },
    /// An upstream/target reference resolved to a service that exposes
    /// no single key (e.g. a fleet).
    NoServiceKey { service: String },
    /// The probe configuration cannot be realised on this deployment.
    Probe { msg: String },
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::UnknownHost { service, host } => {
                write!(f, "service {service:?}: no host {host:?} on the testbed")
            }
            DeployError::WrongBackend { service, kind } => {
                write!(
                    f,
                    "service {service:?}: kind {kind:?} belongs to another backend"
                )
            }
            DeployError::MissingUpstream { service } => {
                write!(f, "service {service:?}: needs an upstream service key")
            }
            DeployError::NoServiceKey { service } => {
                write!(f, "service {service:?} exposes no single service key")
            }
            DeployError::Probe { msg } => write!(f, "probe: {msg}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// `service_as_mut` for freshly deployed services, with a panic that
/// names the offending slot instead of a bare `unwrap` backtrace.
fn wire_as_mut<'n, T: 'static>(net: &'n mut Net, key: SvcKey, what: &str) -> &'n mut T {
    match net.service_as_mut::<T>(key) {
        Some(t) => t,
        None => panic!(
            "service {}v{} just deployed as {what} does not downcast to it",
            key.index, key.gen
        ),
    }
}

/// What a [`Deployment`] produced: the service's own key (when it has
/// one) and any graft DNs it attached to an aggregate index.
#[derive(Debug, Clone, Default)]
pub struct Deployed {
    pub key: Option<SvcKey>,
    pub grafts: Vec<Dn>,
}

impl Deployed {
    fn key(key: SvcKey) -> Deployed {
        Deployed {
            key: Some(key),
            grafts: Vec::new(),
        }
    }
}

/// One service of a scenario, resolved against a concrete harness: spec
/// name, declared kind, placement node, the sweep's x value, and —
/// where the kind needs them — the upstream service key and a pool of
/// extra nodes (GIIS pools spread child GRISes over `pool_nodes`).
pub struct ResolvedService<'a> {
    pub name: &'a str,
    pub kind: &'a gscenario::ServiceKind,
    pub node: NodeId,
    pub x: u32,
    pub upstream: Option<SvcKey>,
    pub pool_nodes: Vec<NodeId>,
}

impl ResolvedService<'_> {
    fn upstream(&self) -> Result<SvcKey, DeployError> {
        self.upstream.ok_or_else(|| DeployError::MissingUpstream {
            service: self.name.to_string(),
        })
    }

    fn wrong_backend(&self) -> DeployError {
        DeployError::WrongBackend {
            service: self.name.to_string(),
            kind: self.kind.token(),
        }
    }
}

/// A monitoring system's deployment backend: it knows how to place its
/// own service kinds on the harness (wiring locks, registrations,
/// self-keys and kick timers so a freshly deployed service is
/// immediately addressable).
pub trait Deployment {
    /// Which parameter family the backend's services bill against.
    fn system(&self) -> crate::mapping::System;

    /// Deploy one resolved service.
    fn deploy(&self, h: &mut Harness, r: &ResolvedService<'_>) -> Result<Deployed, DeployError>;
}

/// Resolve a TTL spec against the run parameters.
pub fn resolve_ttl(ttl: gscenario::Ttl, h: &Harness) -> Option<SimDuration> {
    match ttl {
        gscenario::Ttl::Pinned => None,
        gscenario::Ttl::Zero => Some(SimDuration::ZERO),
        gscenario::Ttl::Exp4 => Some(h.cfg.params.giis_exp4_cachettl),
        gscenario::Ttl::Secs(n) => Some(SimDuration::from_secs(n)),
    }
}

// ======================================================================
// MDS
// ======================================================================

/// The Globus MDS backend: GRIS, GIIS (pooled, standalone, federated).
pub struct MdsBackend;

impl MdsBackend {
    /// Deploy one GRIS with `providers` information providers on `node`.
    /// `cache` selects the paper's "always in cache" vs "never in cache"
    /// configurations; `gsi` enables the GSI-authenticated bind
    /// (Experiment Set 1's configuration — Set 3's sub-second cached
    /// responses imply anonymous binds there).
    pub fn gris(
        &self,
        h: &mut Harness,
        node: NodeId,
        providers: usize,
        cache: bool,
        gsi: bool,
    ) -> SvcKey {
        let suffix = gris_suffix(0);
        let ttl = if cache { None } else { Some(SimDuration::ZERO) };
        let host = h.net.topo.node(node).name.clone();
        let gris = Gris::new(
            suffix.clone(),
            default_providers(&suffix, &host, providers, ttl),
        );
        let mut cfg = h.cfg.params.gris_config();
        if !gsi {
            cfg.setup = h.cfg.params.giis_setup;
        }
        let exec_lock = h.net.add_lock(1);
        let key = h.net.add_service(node, cfg, Box::new(gris), &mut h.eng);
        let g = wire_as_mut::<Gris>(&mut h.net, key, "a GRIS");
        g.me = Some(key);
        g.exec_lock = Some(exec_lock);
        key
    }

    /// Deploy a GIIS on `node` with `n_gris` registered GRISes spread
    /// over `gris_nodes` (round-robin), each with 10 providers.  Returns
    /// the GIIS key and the graft DNs of the registered GRISes (for
    /// "query part").
    pub fn giis_pool(
        &self,
        h: &mut Harness,
        node: NodeId,
        gris_nodes: &[NodeId],
        n_gris: usize,
        cachettl: Option<SimDuration>,
    ) -> (SvcKey, Vec<Dn>) {
        let giis = Giis::new(giis_suffix(), cachettl);
        let giis_cfg = h.cfg.params.giis_config();
        let giis_key = h
            .net
            .add_service(node, giis_cfg, Box::new(giis), &mut h.eng);
        let mut grafts = Vec::with_capacity(n_gris);
        for i in 0..n_gris {
            let gnode = gris_nodes[i % gris_nodes.len()];
            let suffix = gris_suffix(i);
            let host = format!("{}-gris{i}", h.net.topo.node(gnode).name);
            let mut gris = Gris::new(suffix.clone(), default_providers(&suffix, &host, 10, None));
            gris.register_with(giis_key);
            let cfg = h.cfg.params.gris_config();
            let key = h.net.add_service(gnode, cfg, Box::new(gris), &mut h.eng);
            wire_as_mut::<Gris>(&mut h.net, key, "a GRIS").me = Some(key);
            // Stagger the registration heartbeats over the 30 s period.
            let offset =
                SimDuration::from_micros(50_000 + (i as u64 * 29_900_000) / n_gris.max(1) as u64);
            h.net.prime_service_timer(&mut h.eng, key, offset, 0);
            // The graft label is deterministic from the service key.
            grafts.push(
                giis_suffix().child("Mds-Vo-name", &format!("sub-{}-{}", key.index, key.gen)),
            );
        }
        (giis_key, grafts)
    }

    /// Deploy a standalone GIIS on `node`.  With a `parent` it joins a
    /// 2-level hierarchy as branch `branch`: it serves the branch
    /// suffix, registers upward, and staggers its registration
    /// heartbeat by branch index.
    pub fn giis(
        &self,
        h: &mut Harness,
        node: NodeId,
        cachettl: Option<SimDuration>,
        parent: Option<SvcKey>,
        branch: u32,
    ) -> SvcKey {
        match parent {
            None => {
                let giis = Giis::new(giis_suffix(), cachettl);
                let cfg = h.cfg.params.giis_config();
                h.net.add_service(node, cfg, Box::new(giis), &mut h.eng)
            }
            Some(parent) => {
                let suffix = Dn::parse(&format!("mds-vo-name=branch-{branch}, o=giis"))
                    .expect("branch suffix");
                let mut mid = Giis::new(suffix, cachettl);
                mid.register_with(parent);
                let cfg = h.cfg.params.giis_config();
                let key = h.net.add_service(node, cfg, Box::new(mid), &mut h.eng);
                wire_as_mut::<Giis>(&mut h.net, key, "a GIIS").me = Some(key);
                let offset = SimDuration::from_millis(20 + u64::from(branch) * 7);
                h.net.prime_service_timer(&mut h.eng, key, offset, 0);
                key
            }
        }
    }

    /// Deploy one shard of a federated GRIS population on `node`: of a
    /// global population of `n` GRISes split into `share.1` contiguous
    /// shards, deploy shard `share.0`'s slice, every GRIS registered
    /// with `parent` and carrying `providers` providers.  Heartbeats
    /// stagger by *global* index so the federation's re-registration
    /// load spreads exactly like a flat deployment's.
    pub fn gris_fleet(
        &self,
        h: &mut Harness,
        node: NodeId,
        parent: SvcKey,
        providers: usize,
        share: (u32, u32),
        n: u32,
    ) -> Vec<SvcKey> {
        let (shard, of) = share;
        let per = n.div_ceil(of.max(1));
        let start = shard * per;
        let take = per.min(n.saturating_sub(start));
        let host = h.net.topo.node(node).name.clone();
        let mut keys = Vec::with_capacity(take as usize);
        for j in 0..take {
            let idx = (start + j) as usize;
            let suffix = gris_suffix(idx);
            let label = format!("{host}-gris{idx}");
            let mut gris = Gris::new(
                suffix.clone(),
                default_providers(&suffix, &label, providers, None),
            );
            gris.register_with(parent);
            let cfg = h.cfg.params.gris_config();
            let key = h.net.add_service(node, cfg, Box::new(gris), &mut h.eng);
            wire_as_mut::<Gris>(&mut h.net, key, "a GRIS").me = Some(key);
            let offset =
                SimDuration::from_micros(60_000 + (idx as u64 * 29_000_000) / u64::from(n.max(1)));
            h.net.prime_service_timer(&mut h.eng, key, offset, 0);
            keys.push(key);
        }
        keys
    }
}

impl Deployment for MdsBackend {
    fn system(&self) -> crate::mapping::System {
        crate::mapping::System::Mds
    }

    fn deploy(&self, h: &mut Harness, r: &ResolvedService<'_>) -> Result<Deployed, DeployError> {
        use gscenario::ServiceKind as K;
        match r.kind {
            K::Gris {
                providers,
                cache,
                gsi,
            } => Ok(Deployed::key(self.gris(
                h,
                r.node,
                providers.eval(r.x) as usize,
                *cache,
                *gsi,
            ))),
            K::GiisPool {
                n_gris, cachettl, ..
            } => {
                let ttl = resolve_ttl(*cachettl, h);
                let (key, grafts) =
                    self.giis_pool(h, r.node, &r.pool_nodes, n_gris.eval(r.x) as usize, ttl);
                Ok(Deployed {
                    key: Some(key),
                    grafts,
                })
            }
            K::Giis {
                cachettl, branch, ..
            } => {
                let ttl = resolve_ttl(*cachettl, h);
                Ok(Deployed::key(
                    self.giis(h, r.node, ttl, r.upstream, *branch),
                ))
            }
            K::GrisFleet {
                providers, share, ..
            } => {
                let parent = r.upstream()?;
                self.gris_fleet(h, r.node, parent, *providers as usize, *share, r.x);
                // A fleet has no single key; it is addressed through its
                // parent index (or by name token for fault targeting).
                Ok(Deployed::default())
            }
            _ => Err(r.wrong_backend()),
        }
    }
}

// ======================================================================
// Hawkeye
// ======================================================================

/// The Hawkeye backend: Manager, Agent, advertiser fleet.
pub struct HawkeyeBackend;

impl HawkeyeBackend {
    /// Deploy a Hawkeye Manager on `node`.
    pub fn manager(&self, h: &mut Harness, node: NodeId) -> SvcKey {
        let cfg = h.cfg.params.manager_config();
        h.net
            .add_service(node, cfg, Box::new(Manager::new()), &mut h.eng)
    }

    /// Deploy a Hawkeye Agent with `modules` modules on `node`,
    /// registered to `manager` (advertising every 30 s).
    pub fn agent(&self, h: &mut Harness, node: NodeId, modules: usize, manager: SvcKey) -> SvcKey {
        let host = h.net.topo.node(node).name.clone();
        let mut agent = Agent::new(host.clone(), default_modules(&host, modules));
        agent.register_with(manager);
        let cfg = h.cfg.params.agent_config();
        let key = h.net.add_service(node, cfg, Box::new(agent), &mut h.eng);
        h.net
            .prime_service_timer(&mut h.eng, key, SimDuration::from_millis(500), 0);
        key
    }

    /// Deploy the `hawkeye_advertise` fleet: `machines` simulated pool
    /// members on `node`, advertising to `manager` on staggered 30 s
    /// timers.
    pub fn advertiser_fleet(
        &self,
        h: &mut Harness,
        node: NodeId,
        machines: usize,
        manager: SvcKey,
    ) -> SvcKey {
        let fleet = AdvertiserFleet::new(manager, machines, 11);
        let cfg = simnet::ServiceConfig::default();
        let key = h.net.add_service(node, cfg, Box::new(fleet), &mut h.eng);
        for i in 0..machines as u64 {
            let offset =
                SimDuration::from_micros(100_000 + i * 30_000_000 / machines.max(1) as u64);
            h.net.prime_service_timer(&mut h.eng, key, offset, i);
        }
        key
    }
}

impl Deployment for HawkeyeBackend {
    fn system(&self) -> crate::mapping::System {
        crate::mapping::System::Hawkeye
    }

    fn deploy(&self, h: &mut Harness, r: &ResolvedService<'_>) -> Result<Deployed, DeployError> {
        use gscenario::ServiceKind as K;
        match r.kind {
            K::Manager => Ok(Deployed::key(self.manager(h, r.node))),
            K::Agent { modules, .. } => {
                let mgr = r.upstream()?;
                Ok(Deployed::key(self.agent(
                    h,
                    r.node,
                    modules.eval(r.x) as usize,
                    mgr,
                )))
            }
            K::AdvertiserFleet { machines, .. } => {
                let mgr = r.upstream()?;
                Ok(Deployed::key(self.advertiser_fleet(
                    h,
                    r.node,
                    machines.eval(r.x) as usize,
                    mgr,
                )))
            }
            _ => Err(r.wrong_backend()),
        }
    }
}

// ======================================================================
// R-GMA
// ======================================================================

/// The R-GMA backend: Registry and the producer/consumer servlets.
pub struct RgmaBackend;

impl RgmaBackend {
    /// Deploy the R-GMA Registry on `node` (with its RDBMS lock).
    pub fn registry(&self, h: &mut Harness, node: NodeId) -> SvcKey {
        let lock = h.net.add_lock(1);
        let mut registry = Registry::new();
        registry.db_lock = Some(lock);
        let cfg = h.cfg.params.servlet_config();
        h.net.add_service(node, cfg, Box::new(registry), &mut h.eng)
    }

    /// Deploy a ProducerServlet with `producers` producers on `node`,
    /// registering with `registry`.
    pub fn producer_servlet(
        &self,
        h: &mut Harness,
        node: NodeId,
        producers: usize,
        registry: SvcKey,
    ) -> SvcKey {
        let lock = h.net.add_lock(1);
        let site = h.net.topo.node(node).name.clone();
        let mut ps = ProducerServlet::new(rgma::producer::default_producers(&site, producers));
        ps.db_lock = Some(lock);
        ps.register_with(registry);
        let cfg = h.cfg.params.servlet_config();
        let key = h.net.add_service(node, cfg, Box::new(ps), &mut h.eng);
        wire_as_mut::<ProducerServlet>(&mut h.net, key, "a ProducerServlet").me = Some(key);
        h.net
            .prime_service_timer(&mut h.eng, key, SimDuration::from_millis(200), 0);
        key
    }

    /// Deploy a ConsumerServlet on `node` pointed at `registry`.
    pub fn consumer_servlet(&self, h: &mut Harness, node: NodeId, registry: SvcKey) -> SvcKey {
        let cfg = h.cfg.params.servlet_config();
        h.net.add_service(
            node,
            cfg,
            Box::new(ConsumerServlet::new(registry)),
            &mut h.eng,
        )
    }
}

impl Deployment for RgmaBackend {
    fn system(&self) -> crate::mapping::System {
        crate::mapping::System::Rgma
    }

    fn deploy(&self, h: &mut Harness, r: &ResolvedService<'_>) -> Result<Deployed, DeployError> {
        use gscenario::ServiceKind as K;
        match r.kind {
            K::Registry => Ok(Deployed::key(self.registry(h, r.node))),
            K::ProducerServlet { producers, .. } => {
                let reg = r.upstream()?;
                Ok(Deployed::key(self.producer_servlet(
                    h,
                    r.node,
                    producers.eval(r.x) as usize,
                    reg,
                )))
            }
            K::ConsumerServlet { .. } => {
                let reg = r.upstream()?;
                Ok(Deployed::key(self.consumer_servlet(h, r.node, reg)))
            }
            _ => Err(r.wrong_backend()),
        }
    }
}

// ======================================================================
// Ganglia
// ======================================================================

/// The Ganglia backend: the passive monitor the figures' load1/CPU
/// columns come from.  The scenario compiler synthesizes its one
/// service kind from the spec's top-level `watch` field.
pub struct GangliaBackend;

impl Deployment for GangliaBackend {
    fn system(&self) -> crate::mapping::System {
        // Ganglia is the measurement substrate, not a system under
        // test; bill it with the host-side MDS family.
        crate::mapping::System::Mds
    }

    fn deploy(&self, h: &mut Harness, r: &ResolvedService<'_>) -> Result<Deployed, DeployError> {
        match r.kind {
            gscenario::ServiceKind::Monitor => {
                h.watch(r.node);
                Ok(Deployed::default())
            }
            _ => Err(r.wrong_backend()),
        }
    }
}

/// The backend responsible for a service kind.
pub fn backend_of(kind: &gscenario::ServiceKind) -> &'static dyn Deployment {
    use gscenario::ServiceKind as K;
    match kind {
        K::Gris { .. } | K::GiisPool { .. } | K::Giis { .. } | K::GrisFleet { .. } => &MdsBackend,
        K::Manager | K::Agent { .. } | K::AdvertiserFleet { .. } => &HawkeyeBackend,
        K::Registry | K::ProducerServlet { .. } | K::ConsumerServlet { .. } => &RgmaBackend,
        K::Monitor => &GangliaBackend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runcfg::RunConfig;

    #[test]
    fn harness_builds_testbed() {
        let h = Harness::new(RunConfig::quick(1));
        assert_eq!(h.lucky.len(), 7);
        assert_eq!(h.uc.len(), 20);
        assert_eq!(h.lucky("lucky7"), h.lucky[6]);
    }

    #[test]
    #[should_panic(expected = "no host")]
    fn unknown_host_panics() {
        let h = Harness::new(RunConfig::quick(1));
        let _ = h.lucky("lucky2");
    }

    #[test]
    fn deploys_compose() {
        let mut h = Harness::new(RunConfig::quick(2));
        let l3 = h.lucky("lucky3");
        let l4 = h.lucky("lucky4");
        let l7 = h.lucky("lucky7");
        let l0 = h.lucky("lucky0");
        let gris = MdsBackend.gris(&mut h, l7, 10, true, true);
        let (giis, grafts) = MdsBackend.giis_pool(&mut h, l0, &[l3, l4], 4, None);
        let mgr = HawkeyeBackend.manager(&mut h, l3);
        let agent = HawkeyeBackend.agent(&mut h, l4, 11, mgr);
        let l1 = h.lucky("lucky1");
        let l5 = h.lucky("lucky5");
        let reg = RgmaBackend.registry(&mut h, l1);
        let ps = RgmaBackend.producer_servlet(&mut h, l3, 10, reg);
        let cs = RgmaBackend.consumer_servlet(&mut h, l5, reg);
        assert_eq!(grafts.len(), 4);
        for k in [gris, giis, mgr, agent, reg, ps, cs] {
            assert!(h.net.service(k).is_some());
        }
        // Run briefly: registrations and advertises flow without panics.
        h.watch(l3);
        h.net.start(&mut h.eng);
        h.eng.run_until(&mut h.net, simcore::SimTime::from_secs(65));
        assert_eq!(h.net.service_as::<Manager>(mgr).unwrap().pool_size(), 1);
        assert_eq!(
            h.net.service_as::<Giis>(giis).unwrap().registered_count(),
            4
        );
        let registry = h.net.service_as_mut::<Registry>(reg).unwrap();
        assert_eq!(registry.producer_count(), 10);
    }

    /// Satellite: self-key wiring is the backend's job, not the
    /// scenario author's.  A freshly deployed service must already know
    /// its own key (be "addressable") before the engine ever runs.
    #[test]
    fn deployed_services_are_immediately_addressable() {
        let mut h = Harness::new(RunConfig::quick(3));
        let l7 = h.lucky("lucky7");
        let l0 = h.lucky("lucky0");
        let l1 = h.lucky("lucky1");
        let l3 = h.lucky("lucky3");
        let l4 = h.lucky("lucky4");

        let gris = MdsBackend.gris(&mut h, l7, 10, true, true);
        assert_eq!(h.net.service_as::<Gris>(gris).unwrap().me, Some(gris));

        let (giis, _) = MdsBackend.giis_pool(&mut h, l0, &[l3, l4], 3, None);
        let pooled: Vec<SvcKey> = h
            .net
            .services
            .iter()
            .map(|(k, _)| k)
            .filter(|&k| k != gris && k != giis)
            .collect();
        assert_eq!(pooled.len(), 3);
        for k in pooled {
            assert_eq!(h.net.service_as::<Gris>(k).unwrap().me, Some(k));
        }

        let mid = MdsBackend.giis(&mut h, l4, None, Some(giis), 1);
        assert_eq!(h.net.service_as::<Giis>(mid).unwrap().me, Some(mid));

        let reg = RgmaBackend.registry(&mut h, l1);
        let ps = RgmaBackend.producer_servlet(&mut h, l3, 5, reg);
        assert_eq!(
            h.net.service_as::<ProducerServlet>(ps).unwrap().me,
            Some(ps)
        );
    }
}
