//! The paper's experiment sets (sections 3.3–3.6) plus the federation
//! extension, as thin wrappers over the scenario layer.
//!
//! Every experiment point deploys the system under test on the simulated
//! Lucky testbed, drives it with closed-loop users (1-second wait), runs
//! a warm-up plus the measurement window, and reports throughput,
//! response time, server-host `load1` and CPU load — the four metrics of
//! every figure in the paper.
//!
//! The deployment wiring itself lives in declarative form: each
//! `setN::build` compiles the matching [`crate::scenario::catalogue`]
//! spec through [`crate::scenario::compile`].  The modules here keep the
//! series enums, labels, swept x-values and per-set constants — the
//! stable identity of each figure — while the catalogue holds the
//! topology.

use crate::deploy::{Harness, ObservedPoint};
use crate::runcfg::{Measurement, RunConfig};
use crate::scenario::{catalogue, compile};

fn built(spec: &gscenario::ScenarioSpec, x: u32, cfg: &RunConfig) -> Harness {
    compile(spec, x, cfg)
        .unwrap_or_else(|e| panic!("built-in scenario {:?} must compile: {e}", spec.name))
}

// ======================================================================
// Experiment Set 1 — information server scalability with users
// ======================================================================
pub mod set1 {
    use super::*;

    /// The five series of Figs 5–8.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Set1Series {
        /// MDS GRIS, provider data always in cache.
        GrisCache,
        /// MDS GRIS, data never in cache.
        GrisNoCache,
        /// Hawkeye Agent (Manager on lucky3).
        HawkeyeAgent,
        /// R-GMA: one ConsumerServlet per Lucky client node.
        ProducerServletLucky,
        /// R-GMA: a single ConsumerServlet at UC.
        ProducerServletUC,
    }

    impl Set1Series {
        pub const ALL: [Set1Series; 5] = [
            Set1Series::GrisCache,
            Set1Series::GrisNoCache,
            Set1Series::HawkeyeAgent,
            Set1Series::ProducerServletLucky,
            Set1Series::ProducerServletUC,
        ];

        pub fn label(self) -> &'static str {
            match self {
                Set1Series::GrisCache => "MDS GRIS (cache)",
                Set1Series::GrisNoCache => "MDS GRIS (nocache)",
                Set1Series::HawkeyeAgent => "Hawkeye Agent",
                Set1Series::ProducerServletLucky => "R-GMA ProducerServlet(lucky)",
                Set1Series::ProducerServletUC => "R-GMA ProducerServlet(UC)",
            }
        }

        /// The x-values the paper plots for this series (the UC R-GMA
        /// variant stops at 100 users; see section 3.1).
        pub fn user_counts(self) -> &'static [u32] {
            match self {
                Set1Series::ProducerServletUC => &[1, 10, 50, 100],
                _ => &[1, 10, 50, 100, 200, 300, 400, 500, 600],
            }
        }
    }

    /// Deploy and wire one point's world without running it.
    pub fn build(series: Set1Series, users: u32, cfg: &RunConfig) -> Harness {
        built(&catalogue::set1(series), users, cfg)
    }

    /// Run one point of Experiment Set 1.
    pub fn run_point(series: Set1Series, users: u32, cfg: &RunConfig) -> Measurement {
        build(series, users, cfg).run_and_measure(f64::from(users))
    }

    /// Run one point with the observability report harvested
    /// (requires `cfg.obs` to enable tracing and/or metrics).
    pub fn run_point_observed(series: Set1Series, users: u32, cfg: &RunConfig) -> ObservedPoint {
        build(series, users, cfg).run_and_observe(f64::from(users))
    }
}

// ======================================================================
// Experiment Set 2 — directory server scalability with users
// ======================================================================
pub mod set2 {
    use super::*;

    /// The four series of Figs 9–12.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Set2Series {
        /// MDS GIIS (cachettl pinned: data always cached).
        Giis,
        /// Hawkeye Manager with 6 registered Agents.
        HawkeyeManager,
        /// R-GMA Registry queried from the Lucky nodes.
        RegistryLucky,
        /// R-GMA Registry queried from UC.
        RegistryUC,
    }

    impl Set2Series {
        pub const ALL: [Set2Series; 4] = [
            Set2Series::Giis,
            Set2Series::HawkeyeManager,
            Set2Series::RegistryLucky,
            Set2Series::RegistryUC,
        ];

        pub fn label(self) -> &'static str {
            match self {
                Set2Series::Giis => "MDS GIIS",
                Set2Series::HawkeyeManager => "Hawkeye Manager",
                Set2Series::RegistryLucky => "R-GMA Registry(lucky)",
                Set2Series::RegistryUC => "R-GMA Registry(UC)",
            }
        }

        pub fn user_counts(self) -> &'static [u32] {
            match self {
                Set2Series::RegistryUC => &[1, 10, 50, 100],
                _ => &[1, 10, 50, 100, 200, 300, 400, 500, 600],
            }
        }
    }

    /// Deploy and wire one point's world without running it.
    pub fn build(series: Set2Series, users: u32, cfg: &RunConfig) -> Harness {
        built(&catalogue::set2(series), users, cfg)
    }

    /// Run one point of Experiment Set 2.
    pub fn run_point(series: Set2Series, users: u32, cfg: &RunConfig) -> Measurement {
        build(series, users, cfg).run_and_measure(f64::from(users))
    }

    /// Run one point with the observability report harvested
    /// (requires `cfg.obs` to enable tracing and/or metrics).
    pub fn run_point_observed(series: Set2Series, users: u32, cfg: &RunConfig) -> ObservedPoint {
        build(series, users, cfg).run_and_observe(f64::from(users))
    }
}

// ======================================================================
// Experiment Set 3 — information server scalability with collectors
// ======================================================================
pub mod set3 {
    use super::*;

    /// The four series of Figs 13–16 (10 concurrent users throughout).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Set3Series {
        GrisCache,
        GrisNoCache,
        HawkeyeAgent,
        ProducerServlet,
    }

    pub const USERS: u32 = 10;

    impl Set3Series {
        pub const ALL: [Set3Series; 4] = [
            Set3Series::GrisCache,
            Set3Series::GrisNoCache,
            Set3Series::HawkeyeAgent,
            Set3Series::ProducerServlet,
        ];

        pub fn label(self) -> &'static str {
            match self {
                Set3Series::GrisCache => "MDS GRIS(cache)",
                Set3Series::GrisNoCache => "MDS GRIS(no cache)",
                Set3Series::HawkeyeAgent => "Hawkeye Agent",
                Set3Series::ProducerServlet => "R-GMA ProducerServlet",
            }
        }

        /// Collector counts the paper sweeps (defaults are 10 for MDS,
        /// 11 for Hawkeye; both scale to 90).
        pub fn collector_counts(self) -> &'static [u32] {
            match self {
                Set3Series::HawkeyeAgent => &[11, 20, 30, 40, 50, 60, 70, 80, 90],
                _ => &[10, 20, 30, 40, 50, 60, 70, 80, 90],
            }
        }
    }

    /// Deploy and wire one point's world without running it.
    pub fn build(series: Set3Series, collectors: u32, cfg: &RunConfig) -> Harness {
        built(&catalogue::set3(series), collectors, cfg)
    }

    /// Run one point of Experiment Set 3.
    pub fn run_point(series: Set3Series, collectors: u32, cfg: &RunConfig) -> Measurement {
        build(series, collectors, cfg).run_and_measure(f64::from(collectors))
    }

    /// Run one point with the observability report harvested
    /// (requires `cfg.obs` to enable tracing and/or metrics).
    pub fn run_point_observed(
        series: Set3Series,
        collectors: u32,
        cfg: &RunConfig,
    ) -> ObservedPoint {
        build(series, collectors, cfg).run_and_observe(f64::from(collectors))
    }
}

// ======================================================================
// Experiment Set 4 — aggregate information server scalability
// ======================================================================
pub mod set4 {
    use super::*;

    /// The three series of Figs 17–20 (10 concurrent users throughout).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Set4Series {
        /// MDS GIIS, users query all registered GRIS data (≤200: beyond
        /// that the GIIS crashed on the real testbed).
        GiisQueryAll,
        /// MDS GIIS, users query one registered GRIS's subtree (≤500).
        GiisQueryPart,
        /// Hawkeye Manager with `hawkeye_advertise`-simulated machines
        /// (≤1000), worst-case constraint scan.
        HawkeyeManager,
    }

    pub const USERS: u32 = 10;

    impl Set4Series {
        pub const ALL: [Set4Series; 3] = [
            Set4Series::GiisQueryAll,
            Set4Series::GiisQueryPart,
            Set4Series::HawkeyeManager,
        ];

        pub fn label(self) -> &'static str {
            match self {
                Set4Series::GiisQueryAll => "MDS GIIS(query all)",
                Set4Series::GiisQueryPart => "MDS GIIS (query part)",
                Set4Series::HawkeyeManager => "Hawkeye Manager",
            }
        }

        /// Information-server counts per series (the paper's software
        /// limits: 200 for query-all, 500 for query-part, 1000 machines
        /// for the Manager).
        pub fn server_counts(self) -> &'static [u32] {
            match self {
                Set4Series::GiisQueryAll => &[10, 50, 100, 150, 200],
                Set4Series::GiisQueryPart => &[10, 50, 100, 200, 300, 400, 500],
                Set4Series::HawkeyeManager => &[10, 50, 100, 200, 400, 600, 800, 1000],
            }
        }
    }

    /// Deploy and wire one point's world without running it.
    pub fn build(series: Set4Series, servers: u32, cfg: &RunConfig) -> Harness {
        built(&catalogue::set4(series), servers, cfg)
    }

    /// Run one point of Experiment Set 4.
    pub fn run_point(series: Set4Series, servers: u32, cfg: &RunConfig) -> Measurement {
        build(series, servers, cfg).run_and_measure(f64::from(servers))
    }

    /// Run one point with the observability report harvested
    /// (requires `cfg.obs` to enable tracing and/or metrics).
    pub fn run_point_observed(series: Set4Series, servers: u32, cfg: &RunConfig) -> ObservedPoint {
        build(series, servers, cfg).run_and_observe(f64::from(servers))
    }
}

// ======================================================================
// Experiment Set 5 — resilience under injected faults
// ======================================================================
pub mod set5 {
    use super::*;
    use gfaults::{FaultSpec, Scenario};

    /// The three series of Figs 21–24: each system hit where its
    /// soft-state design is most exposed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Set5Series {
        /// MDS GIIS with 5 registered GRISes; the GRIS hosts' access
        /// links are partitioned.  The GIIS keeps answering from cache —
        /// stale but available.
        MdsGiis,
        /// R-GMA Registry + 5 ProducerServlets queried through a
        /// ConsumerServlet; producer servlets are killed and restarted.
        /// Consumers fail outright until the registry's re-registration
        /// machinery repopulates live producers.
        RgmaRegistry,
        /// Hawkeye Manager with 6 Agents; agents are killed and
        /// restarted.  Queries keep succeeding on resident ClassAds,
        /// but ad freshness degrades with every killed agent.
        HawkeyeManager,
    }

    /// Concurrent closed-loop users per point (as in Sets 3/4).
    pub const USERS: u32 = 10;

    /// Client-side query timeout: an abandoned query counts against
    /// availability and is retried with capped exponential backoff.
    pub const CLIENT_TIMEOUT_S: u64 = 10;

    impl Set5Series {
        pub const ALL: [Set5Series; 3] = [
            Set5Series::MdsGiis,
            Set5Series::RgmaRegistry,
            Set5Series::HawkeyeManager,
        ];

        pub fn label(self) -> &'static str {
            match self {
                Set5Series::MdsGiis => "MDS GIIS (GRIS partition)",
                Set5Series::RgmaRegistry => "R-GMA (producer churn)",
                Set5Series::HawkeyeManager => "Hawkeye (agent churn)",
            }
        }

        /// The swept x-axis: how many components are faulted.  Every
        /// sweep starts at 0 — the unfaulted control point.
        pub fn fault_counts(self) -> &'static [u32] {
            &[0, 1, 2, 3, 4, 5]
        }

        /// The scenario [`Scenario::Auto`] resolves to for this series.
        pub fn default_scenario(self) -> Scenario {
            match self {
                Set5Series::MdsGiis => Scenario::Partition,
                Set5Series::RgmaRegistry | Set5Series::HawkeyeManager => Scenario::Churn,
            }
        }
    }

    /// The canonical Set-5 schedule: the per-series scenario, fault onset
    /// 25% into the measurement window, heal at 60%.  `targets` is a
    /// placeholder — each point overrides it with its x value.
    pub fn default_spec() -> FaultSpec {
        FaultSpec {
            scenario: Scenario::Auto,
            targets: 1,
            start_frac: 0.25,
            heal_frac: 0.6,
        }
    }

    /// Deploy and wire one point's world — deployment, fault schedule and
    /// resilience probe — without running it.
    ///
    /// `cfg.faults` is honoured verbatim: [`Scenario::Auto`] resolves to
    /// the series default, [`Scenario::None`] (the `RunConfig` default)
    /// injects nothing.  Callers that want the canonical Set-5 schedule
    /// set `cfg.faults = set5::default_spec()` first (the figures CLI
    /// does this when `--faults` is not given).  `faults` (the x value)
    /// overrides `cfg.faults.targets`.
    pub fn build(series: Set5Series, faults: u32, cfg: &RunConfig) -> Harness {
        built(&catalogue::set5(series), faults, cfg)
    }

    /// Run one point of Experiment Set 5.
    pub fn run_point(series: Set5Series, faults: u32, cfg: &RunConfig) -> Measurement {
        build(series, faults, cfg).run_and_measure(f64::from(faults))
    }

    /// Run one point with the observability report harvested
    /// (requires `cfg.obs` to enable tracing and/or metrics).
    pub fn run_point_observed(series: Set5Series, faults: u32, cfg: &RunConfig) -> ObservedPoint {
        build(series, faults, cfg).run_and_observe(f64::from(faults))
    }
}

// ======================================================================
// Experiment Set 6 — hierarchical-GIIS federation
// ======================================================================
pub mod set6 {
    use super::*;

    /// The three series of Figs 25–28: the same `x` GRISes flat under one
    /// GIIS vs sharded over 3 or 6 mid-level branch GIISes under a
    /// 2-level index — the multi-layer architecture the paper's Section 4
    /// proposes for scaling the aggregate server.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Set6Series {
        /// Flat baseline: one GIIS over all `x` GRISes (Set 4's world).
        FlatGiis,
        /// 2-level federation, `x` GRISes sharded over 3 branch GIISes.
        Federated3,
        /// 2-level federation, `x` GRISes sharded over 6 branch GIISes.
        Federated6,
    }

    /// Concurrent closed-loop users per point (as in Sets 3/4).
    pub const USERS: u32 = 10;

    impl Set6Series {
        pub const ALL: [Set6Series; 3] = [
            Set6Series::FlatGiis,
            Set6Series::Federated3,
            Set6Series::Federated6,
        ];

        pub fn label(self) -> &'static str {
            match self {
                Set6Series::FlatGiis => "MDS GIIS (flat)",
                Set6Series::Federated3 => "MDS GIIS (3 branches)",
                Set6Series::Federated6 => "MDS GIIS (6 branches)",
            }
        }

        /// Total GRIS counts per point (Set 4's query-all sweep).
        pub fn server_counts(self) -> &'static [u32] {
            &[10, 50, 100, 150, 200]
        }
    }

    /// Deploy and wire one point's world without running it.
    pub fn build(series: Set6Series, servers: u32, cfg: &RunConfig) -> Harness {
        built(&catalogue::set6(series), servers, cfg)
    }

    /// Run one point of Experiment Set 6.
    pub fn run_point(series: Set6Series, servers: u32, cfg: &RunConfig) -> Measurement {
        build(series, servers, cfg).run_and_measure(f64::from(servers))
    }

    /// Run one point with the observability report harvested
    /// (requires `cfg.obs` to enable tracing and/or metrics).
    pub fn run_point_observed(series: Set6Series, servers: u32, cfg: &RunConfig) -> ObservedPoint {
        build(series, servers, cfg).run_and_observe(f64::from(servers))
    }
}

pub use set1::Set1Series;
pub use set2::Set2Series;
pub use set3::Set3Series;
pub use set4::Set4Series;
pub use set5::Set5Series;
pub use set6::Set6Series;

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;
    use simnet::ObsMode;

    /// Tracing and metrics observe the run without perturbing it: the
    /// embedded measurement of an observed run is bit-identical to the
    /// plain run's, and the harvest is non-empty.
    #[test]
    fn observed_run_matches_plain_run() {
        let mut cfg = RunConfig::quick(5);
        cfg.warmup = SimDuration::from_secs(5);
        cfg.window = SimDuration::from_secs(20);
        let base = set1::run_point(Set1Series::GrisCache, 2, &cfg);
        assert!(base.completions > 0, "point too short to be meaningful");
        let mut ocfg = cfg;
        ocfg.obs = ObsMode::FULL;
        let op = set1::run_point_observed(Set1Series::GrisCache, 2, &ocfg);
        assert_eq!(op.m, base);
        assert!(!op.report.events.is_empty());
        assert!(!op.report.metrics.is_empty());
        assert!(op.services.iter().any(|s| s.starts_with("gris")));
        assert!(op.nodes.iter().any(|n| n == "lucky7"));
    }

    /// A short Set-5 configuration: canonical fault schedule on a
    /// compressed clock.
    fn set5_cfg(seed: u64) -> RunConfig {
        let mut cfg = RunConfig::quick(seed);
        cfg.warmup = SimDuration::from_secs(20);
        cfg.window = SimDuration::from_secs(100);
        cfg.faults = set5::default_spec();
        cfg
    }

    /// Pinned claim (MDS): partitioning GRIS hosts leaves the GIIS
    /// answering from cache — availability holds up while staleness
    /// climbs well past the cache TTL, and recovery takes measurable
    /// time after the heal.
    #[test]
    fn set5_partition_leaves_giis_stale_but_available() {
        let cfg = set5_cfg(11);
        let base = set5::run_point(Set5Series::MdsGiis, 0, &cfg);
        let hit = set5::run_point(Set5Series::MdsGiis, 3, &cfg);
        assert!(base.completions > 0 && hit.completions > 0);
        assert!((base.availability - 1.0).abs() < 1e-9, "{base:?}");
        assert!(
            hit.availability > 0.5,
            "cached answers should keep most queries alive: {hit:?}"
        );
        // staleness_s is a whole-window mean, so a 35 s partition moves
        // it by a few seconds, not by its full depth.
        assert!(
            hit.staleness_s > base.staleness_s + 4.0,
            "partition must show up as data age: {} vs {}",
            hit.staleness_s,
            base.staleness_s
        );
        assert_eq!(base.recovery_s, 0.0);
        assert!(hit.recovery_s > 0.0, "{hit:?}");
    }

    /// Pinned claim (R-GMA): killing every producer servlet makes
    /// consumer queries fail outright (availability collapses) until the
    /// registry's re-registration machinery brings producers back.
    #[test]
    fn set5_rgma_full_churn_fails_consumers_until_reregistration() {
        let cfg = set5_cfg(12);
        let base = set5::run_point(Set5Series::RgmaRegistry, 0, &cfg);
        let hit = set5::run_point(Set5Series::RgmaRegistry, 5, &cfg);
        assert!((base.availability - 1.0).abs() < 1e-9, "{base:?}");
        assert!(
            hit.availability < 0.9,
            "a full producer outage must fail consumer queries: {hit:?}"
        );
        // Recovery is observed (producers republished after the heal).
        assert!(hit.recovery_s > 0.0, "{hit:?}");
        assert!(hit.throughput < base.throughput);
    }

    /// Pinned claim (Hawkeye): killed agents don't fail queries — the
    /// Manager matches on resident ClassAds — but freshness degrades
    /// with the number of killed agents.
    #[test]
    fn set5_hawkeye_churn_keeps_availability_but_ages_ads() {
        let cfg = set5_cfg(13);
        let base = set5::run_point(Set5Series::HawkeyeManager, 0, &cfg);
        let one = set5::run_point(Set5Series::HawkeyeManager, 1, &cfg);
        let four = set5::run_point(Set5Series::HawkeyeManager, 4, &cfg);
        assert!((base.availability - 1.0).abs() < 1e-9, "{base:?}");
        assert!(
            four.availability > 0.95,
            "resident ads keep queries answerable: {four:?}"
        );
        assert!(
            base.staleness_s < one.staleness_s && one.staleness_s < four.staleness_s,
            "ad age must grow with killed agents: {} < {} < {}",
            base.staleness_s,
            one.staleness_s,
            four.staleness_s
        );
    }

    /// Identical seed and plan ⇒ identical measurements; and a Set-5
    /// point with `FaultSpec::NONE` equals a run of the same deployment
    /// with no fault machinery at all (x = 0 under the canonical spec
    /// builds an empty plan too).
    #[test]
    fn set5_is_deterministic_and_none_matches_x0() {
        let cfg = set5_cfg(14);
        let a = set5::run_point(Set5Series::RgmaRegistry, 2, &cfg);
        let b = set5::run_point(Set5Series::RgmaRegistry, 2, &cfg);
        assert_eq!(a, b);
        let mut none = cfg;
        none.faults = gfaults::FaultSpec::NONE;
        let x0 = set5::run_point(Set5Series::RgmaRegistry, 0, &cfg);
        let unfaulted = set5::run_point(Set5Series::RgmaRegistry, 0, &none);
        assert_eq!(x0, unfaulted);
    }

    /// Pinned claim (federation): at 200 GRISes the 2-level index keeps
    /// the top GIIS's host load below the flat deployment's — the
    /// mid-level servers absorb the re-pull fan-out.
    #[test]
    fn set6_federation_offloads_the_top_giis() {
        let mut cfg = RunConfig::quick(21);
        cfg.warmup = SimDuration::from_secs(10);
        cfg.window = SimDuration::from_secs(60);
        let flat = set6::run_point(Set6Series::FlatGiis, 100, &cfg);
        let fed = set6::run_point(Set6Series::Federated6, 100, &cfg);
        assert!(flat.completions > 0 && fed.completions > 0);
        assert!(
            fed.cpu_load < flat.cpu_load,
            "federation must offload the watched top host: flat {} vs fed {}",
            flat.cpu_load,
            fed.cpu_load
        );
    }
}
