//! The paper's four experiment sets (sections 3.3–3.6).
//!
//! Every experiment point deploys the system under test on the simulated
//! Lucky testbed, drives it with closed-loop users (1-second wait), runs
//! a warm-up plus the measurement window, and reports throughput,
//! response time, server-host `load1` and CPU load — the four metrics of
//! every figure in the paper.

use crate::deploy::{
    deploy_advertiser_fleet, deploy_agent, deploy_consumer_servlet, deploy_giis, deploy_gris,
    deploy_manager, deploy_producer_servlet, deploy_registry, giis_suffix, gris_suffix, Harness,
    ObservedPoint,
};
use crate::runcfg::{Measurement, RunConfig};
use hawkeye::HawkeyeMsg;
use ldapdir::{Filter, Scope};
use mds::MdsRequest;
use rgma::RgmaMsg;
use simnet::{NodeId, SvcKey};
use workload::{QueryFactory, UserConfig};

/// Place `users` on the UC cluster (≤50 per machine, as in the paper).
fn uc_placement(h: &Harness, users: u32) -> Vec<NodeId> {
    let hosts = h.uc.clone();
    (0..users as usize)
        .map(|i| hosts[i % hosts.len()])
        .collect()
}

fn user_config(h: &Harness, client_cpu_us: f64) -> UserConfig {
    UserConfig {
        think: h.cfg.params.think,
        retry_base: h.cfg.params.retry_base,
        retry_cap: h.cfg.params.retry_cap,
        series: "user".to_string(),
        client_cpu_us,
        timeout: None,
    }
}

fn spawn(
    h: &mut Harness,
    placement: &[NodeId],
    target: SvcKey,
    client_cpu_us: f64,
    factory: impl FnMut() -> QueryFactory,
) {
    let cfg = user_config(h, client_cpu_us);
    workload::spawn_users(&mut h.net, &mut h.eng, placement, target, &cfg, factory);
}

// ======================================================================
// Experiment Set 1 — information server scalability with users
// ======================================================================
pub mod set1 {
    use super::*;

    /// The five series of Figs 5–8.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Set1Series {
        /// MDS GRIS, provider data always in cache.
        GrisCache,
        /// MDS GRIS, data never in cache.
        GrisNoCache,
        /// Hawkeye Agent (Manager on lucky3).
        HawkeyeAgent,
        /// R-GMA: one ConsumerServlet per Lucky client node.
        ProducerServletLucky,
        /// R-GMA: a single ConsumerServlet at UC.
        ProducerServletUC,
    }

    impl Set1Series {
        pub const ALL: [Set1Series; 5] = [
            Set1Series::GrisCache,
            Set1Series::GrisNoCache,
            Set1Series::HawkeyeAgent,
            Set1Series::ProducerServletLucky,
            Set1Series::ProducerServletUC,
        ];

        pub fn label(self) -> &'static str {
            match self {
                Set1Series::GrisCache => "MDS GRIS (cache)",
                Set1Series::GrisNoCache => "MDS GRIS (nocache)",
                Set1Series::HawkeyeAgent => "Hawkeye Agent",
                Set1Series::ProducerServletLucky => "R-GMA ProducerServlet(lucky)",
                Set1Series::ProducerServletUC => "R-GMA ProducerServlet(UC)",
            }
        }

        /// The x-values the paper plots for this series (the UC R-GMA
        /// variant stops at 100 users; see section 3.1).
        pub fn user_counts(self) -> &'static [u32] {
            match self {
                Set1Series::ProducerServletUC => &[1, 10, 50, 100],
                _ => &[1, 10, 50, 100, 200, 300, 400, 500, 600],
            }
        }
    }

    /// Deploy and wire one point's world without running it.
    pub fn build(series: Set1Series, users: u32, cfg: &RunConfig) -> Harness {
        let mut h = Harness::new(*cfg);
        match series {
            Set1Series::GrisCache | Set1Series::GrisNoCache => {
                let server = h.lucky("lucky7");
                let cache = series == Set1Series::GrisCache;
                let gris = deploy_gris(&mut h, server, 10, cache, /*gsi=*/ true);
                h.watch(server);
                let placement = uc_placement(&h, users);
                let cpu = h.cfg.params.mds_client_cpu_us;
                spawn(&mut h, &placement, gris, cpu, || {
                    Box::new(|_rng| {
                        let req = MdsRequest::search_all(gris_suffix(0));
                        let bytes = req.wire_size();
                        (Box::new(req) as simnet::Payload, bytes)
                    })
                });
            }
            Set1Series::HawkeyeAgent => {
                let mgr_node = h.lucky("lucky3");
                let agent_node = h.lucky("lucky4");
                let mgr = deploy_manager(&mut h, mgr_node);
                let agent = deploy_agent(&mut h, agent_node, 11, mgr);
                h.watch(agent_node);
                let placement = uc_placement(&h, users);
                let cpu = h.cfg.params.condor_client_cpu_us;
                spawn(&mut h, &placement, agent, cpu, || {
                    Box::new(|_rng| {
                        let m = HawkeyeMsg::AgentStatus;
                        let bytes = m.wire_size();
                        (Box::new(m) as simnet::Payload, bytes)
                    })
                });
            }
            Set1Series::ProducerServletUC => {
                let ps_node = h.lucky("lucky3");
                let reg_node = h.lucky("lucky1");
                let reg = deploy_registry(&mut h, reg_node);
                let ps = deploy_producer_servlet(&mut h, ps_node, 10, reg);
                let _ = ps;
                let uc0 = h.uc[0];
                let cs = deploy_consumer_servlet(&mut h, uc0, reg);
                h.watch(ps_node);
                let placement = uc_placement(&h, users);
                let cpu = h.cfg.params.rgma_client_cpu_us;
                spawn(&mut h, &placement, cs, cpu, || {
                    Box::new(|_rng| {
                        let m = RgmaMsg::ConsumerQuery {
                            sql: "SELECT * FROM cpuload".into(),
                        };
                        let bytes = m.wire_size();
                        (Box::new(m) as simnet::Payload, bytes)
                    })
                });
            }
            Set1Series::ProducerServletLucky => {
                let ps_node = h.lucky("lucky3");
                let reg_node = h.lucky("lucky1");
                let reg = deploy_registry(&mut h, reg_node);
                let _ps = deploy_producer_servlet(&mut h, ps_node, 10, reg);
                // One ConsumerServlet per client node (lucky minus the
                // servlet hosts), users placed beside their servlet.
                let client_nodes: Vec<NodeId> = h
                    .lucky
                    .iter()
                    .copied()
                    .filter(|&n| n != ps_node && n != reg_node)
                    .collect();
                let servlets: Vec<SvcKey> = client_nodes
                    .iter()
                    .map(|&n| deploy_consumer_servlet(&mut h, n, reg))
                    .collect();
                h.watch(ps_node);
                let placement: Vec<(NodeId, SvcKey)> = (0..users as usize)
                    .map(|i| {
                        let j = i % client_nodes.len();
                        (client_nodes[j], servlets[j])
                    })
                    .collect();
                let cpu = h.cfg.params.rgma_client_cpu_us;
                let ucfg = user_config(&h, cpu);
                workload::spawn_users_to(&mut h.net, &mut h.eng, &placement, &ucfg, || {
                    Box::new(|_rng| {
                        let m = RgmaMsg::ConsumerQuery {
                            sql: "SELECT * FROM cpuload".into(),
                        };
                        let bytes = m.wire_size();
                        (Box::new(m) as simnet::Payload, bytes)
                    })
                });
            }
        }
        h
    }

    /// Run one point of Experiment Set 1.
    pub fn run_point(series: Set1Series, users: u32, cfg: &RunConfig) -> Measurement {
        build(series, users, cfg).run_and_measure(f64::from(users))
    }

    /// Run one point with the observability report harvested
    /// (requires `cfg.obs` to enable tracing and/or metrics).
    pub fn run_point_observed(series: Set1Series, users: u32, cfg: &RunConfig) -> ObservedPoint {
        build(series, users, cfg).run_and_observe(f64::from(users))
    }
}

// ======================================================================
// Experiment Set 2 — directory server scalability with users
// ======================================================================
pub mod set2 {
    use super::*;

    /// The four series of Figs 9–12.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Set2Series {
        /// MDS GIIS (cachettl pinned: data always cached).
        Giis,
        /// Hawkeye Manager with 6 registered Agents.
        HawkeyeManager,
        /// R-GMA Registry queried from the Lucky nodes.
        RegistryLucky,
        /// R-GMA Registry queried from UC.
        RegistryUC,
    }

    impl Set2Series {
        pub const ALL: [Set2Series; 4] = [
            Set2Series::Giis,
            Set2Series::HawkeyeManager,
            Set2Series::RegistryLucky,
            Set2Series::RegistryUC,
        ];

        pub fn label(self) -> &'static str {
            match self {
                Set2Series::Giis => "MDS GIIS",
                Set2Series::HawkeyeManager => "Hawkeye Manager",
                Set2Series::RegistryLucky => "R-GMA Registry(lucky)",
                Set2Series::RegistryUC => "R-GMA Registry(UC)",
            }
        }

        pub fn user_counts(self) -> &'static [u32] {
            match self {
                Set2Series::RegistryUC => &[1, 10, 50, 100],
                _ => &[1, 10, 50, 100, 200, 300, 400, 500, 600],
            }
        }
    }

    /// Deploy and wire one point's world without running it.
    pub fn build(series: Set2Series, users: u32, cfg: &RunConfig) -> Harness {
        let mut h = Harness::new(*cfg);
        match series {
            Set2Series::Giis => {
                // GIIS on lucky0; a GRIS with 10 providers on each of
                // lucky3..lucky7; cachettl very large (always cached).
                let giis_node = h.lucky("lucky0");
                let gris_nodes: Vec<NodeId> = ["lucky3", "lucky4", "lucky5", "lucky6", "lucky7"]
                    .iter()
                    .map(|n| h.lucky(n))
                    .collect();
                let (giis, _grafts) = deploy_giis(&mut h, giis_node, &gris_nodes, 5, None);
                h.watch(giis_node);
                let placement = uc_placement(&h, users);
                let cpu = h.cfg.params.mds_client_cpu_us;
                spawn(&mut h, &placement, giis, cpu, || {
                    Box::new(|_rng| {
                        let req = MdsRequest::Search {
                            base: giis_suffix(),
                            scope: Scope::Sub,
                            filter: Filter::parse("(mds-device-group-name=cpu)").unwrap(),
                            attrs: None,
                        };
                        let bytes = req.wire_size();
                        (Box::new(req) as simnet::Payload, bytes)
                    })
                });
            }
            Set2Series::HawkeyeManager => {
                // Manager on lucky3; 6 Agents (one per other lucky node),
                // 11 default modules each.
                let mgr_node = h.lucky("lucky3");
                let mgr = deploy_manager(&mut h, mgr_node);
                let agent_hosts: Vec<String> =
                    ["lucky0", "lucky1", "lucky4", "lucky5", "lucky6", "lucky7"]
                        .iter()
                        .map(|n| n.to_string())
                        .collect();
                for name in &agent_hosts {
                    let node = h.lucky(name);
                    deploy_agent(&mut h, node, 11, mgr);
                }
                h.watch(mgr_node);
                let placement = uc_placement(&h, users);
                let cpu = h.cfg.params.condor_client_cpu_us;
                spawn(&mut h, &placement, mgr, cpu, move || {
                    let hosts = agent_hosts.clone();
                    Box::new(move |rng| {
                        let host = hosts[rng.next_below(hosts.len() as u64) as usize].clone();
                        let m = HawkeyeMsg::Status {
                            machine: Some(host),
                        };
                        let bytes = m.wire_size();
                        (Box::new(m) as simnet::Payload, bytes)
                    })
                });
            }
            Set2Series::RegistryLucky | Set2Series::RegistryUC => {
                // Registry on lucky1; a ProducerServlet with 10 producers
                // on each of five other lucky nodes.
                let reg_node = h.lucky("lucky1");
                let reg = deploy_registry(&mut h, reg_node);
                let tables: Vec<String> = rgma::producer::default_producers("anl", 10)
                    .into_iter()
                    .map(|p| p.table)
                    .collect();
                for name in ["lucky3", "lucky4", "lucky5", "lucky6", "lucky7"] {
                    let node = h.lucky(name);
                    deploy_producer_servlet(&mut h, node, 10, reg);
                }
                h.watch(reg_node);
                let placement = if series == Set2Series::RegistryUC {
                    uc_placement(&h, users)
                } else {
                    // Users on the lucky nodes themselves (120 per node).
                    let hosts: Vec<NodeId> = ["lucky0", "lucky3", "lucky4", "lucky5", "lucky6"]
                        .iter()
                        .map(|n| h.lucky(n))
                        .collect();
                    (0..users as usize)
                        .map(|i| hosts[i % hosts.len()])
                        .collect()
                };
                let cpu = h.cfg.params.rgma_client_cpu_us;
                spawn(&mut h, &placement, reg, cpu, move || {
                    let tables = tables.clone();
                    Box::new(move |rng| {
                        let t = tables[rng.next_below(tables.len() as u64) as usize].clone();
                        let m = RgmaMsg::RegistryLookup { table: t };
                        let bytes = m.wire_size();
                        (Box::new(m) as simnet::Payload, bytes)
                    })
                });
            }
        }
        h
    }

    /// Run one point of Experiment Set 2.
    pub fn run_point(series: Set2Series, users: u32, cfg: &RunConfig) -> Measurement {
        build(series, users, cfg).run_and_measure(f64::from(users))
    }

    /// Run one point with the observability report harvested
    /// (requires `cfg.obs` to enable tracing and/or metrics).
    pub fn run_point_observed(series: Set2Series, users: u32, cfg: &RunConfig) -> ObservedPoint {
        build(series, users, cfg).run_and_observe(f64::from(users))
    }
}

// ======================================================================
// Experiment Set 3 — information server scalability with collectors
// ======================================================================
pub mod set3 {
    use super::*;

    /// The four series of Figs 13–16 (10 concurrent users throughout).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Set3Series {
        GrisCache,
        GrisNoCache,
        HawkeyeAgent,
        ProducerServlet,
    }

    pub const USERS: u32 = 10;

    impl Set3Series {
        pub const ALL: [Set3Series; 4] = [
            Set3Series::GrisCache,
            Set3Series::GrisNoCache,
            Set3Series::HawkeyeAgent,
            Set3Series::ProducerServlet,
        ];

        pub fn label(self) -> &'static str {
            match self {
                Set3Series::GrisCache => "MDS GRIS(cache)",
                Set3Series::GrisNoCache => "MDS GRIS(no cache)",
                Set3Series::HawkeyeAgent => "Hawkeye Agent",
                Set3Series::ProducerServlet => "R-GMA ProducerServlet",
            }
        }

        /// Collector counts the paper sweeps (defaults are 10 for MDS,
        /// 11 for Hawkeye; both scale to 90).
        pub fn collector_counts(self) -> &'static [u32] {
            match self {
                Set3Series::HawkeyeAgent => &[11, 20, 30, 40, 50, 60, 70, 80, 90],
                _ => &[10, 20, 30, 40, 50, 60, 70, 80, 90],
            }
        }
    }

    /// Deploy and wire one point's world without running it.
    pub fn build(series: Set3Series, collectors: u32, cfg: &RunConfig) -> Harness {
        let mut h = Harness::new(*cfg);
        match series {
            Set3Series::GrisCache | Set3Series::GrisNoCache => {
                let server = h.lucky("lucky7");
                let cache = series == Set3Series::GrisCache;
                // Anonymous binds: the paper's Set-3 cached responses are
                // sub-second, which rules out the 4 s GSI bind of Set 1.
                let gris = deploy_gris(
                    &mut h,
                    server,
                    collectors as usize,
                    cache,
                    /*gsi=*/ false,
                );
                h.watch(server);
                let placement = uc_placement(&h, USERS);
                let cpu = h.cfg.params.mds_client_cpu_us;
                spawn(&mut h, &placement, gris, cpu, || {
                    Box::new(|_rng| {
                        let req = MdsRequest::search_all(gris_suffix(0));
                        let bytes = req.wire_size();
                        (Box::new(req) as simnet::Payload, bytes)
                    })
                });
            }
            Set3Series::HawkeyeAgent => {
                let mgr_node = h.lucky("lucky3");
                let agent_node = h.lucky("lucky4");
                let mgr = deploy_manager(&mut h, mgr_node);
                let agent = deploy_agent(&mut h, agent_node, collectors as usize, mgr);
                h.watch(agent_node);
                let placement = uc_placement(&h, USERS);
                let cpu = h.cfg.params.condor_client_cpu_us;
                spawn(&mut h, &placement, agent, cpu, || {
                    Box::new(|_rng| {
                        let m = HawkeyeMsg::AgentFull;
                        let bytes = m.wire_size();
                        (Box::new(m) as simnet::Payload, bytes)
                    })
                });
            }
            Set3Series::ProducerServlet => {
                // Queried directly (the paper: "We queried the
                // ProducerServlet directly").
                let ps_node = h.lucky("lucky3");
                let reg_node = h.lucky("lucky1");
                let reg = deploy_registry(&mut h, reg_node);
                let ps = deploy_producer_servlet(&mut h, ps_node, collectors as usize, reg);
                h.watch(ps_node);
                let placement = uc_placement(&h, USERS);
                let cpu = h.cfg.params.rgma_client_cpu_us;
                spawn(&mut h, &placement, ps, cpu, || {
                    Box::new(|_rng| {
                        let m = RgmaMsg::ProducerQuery {
                            sql: "*ALL*".into(),
                        };
                        let bytes = m.wire_size();
                        (Box::new(m) as simnet::Payload, bytes)
                    })
                });
            }
        }
        h
    }

    /// Run one point of Experiment Set 3.
    pub fn run_point(series: Set3Series, collectors: u32, cfg: &RunConfig) -> Measurement {
        build(series, collectors, cfg).run_and_measure(f64::from(collectors))
    }

    /// Run one point with the observability report harvested
    /// (requires `cfg.obs` to enable tracing and/or metrics).
    pub fn run_point_observed(
        series: Set3Series,
        collectors: u32,
        cfg: &RunConfig,
    ) -> ObservedPoint {
        build(series, collectors, cfg).run_and_observe(f64::from(collectors))
    }
}

// ======================================================================
// Experiment Set 4 — aggregate information server scalability
// ======================================================================
pub mod set4 {
    use super::*;

    /// The three series of Figs 17–20 (10 concurrent users throughout).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Set4Series {
        /// MDS GIIS, users query all registered GRIS data (≤200: beyond
        /// that the GIIS crashed on the real testbed).
        GiisQueryAll,
        /// MDS GIIS, users query one registered GRIS's subtree (≤500).
        GiisQueryPart,
        /// Hawkeye Manager with `hawkeye_advertise`-simulated machines
        /// (≤1000), worst-case constraint scan.
        HawkeyeManager,
    }

    pub const USERS: u32 = 10;

    impl Set4Series {
        pub const ALL: [Set4Series; 3] = [
            Set4Series::GiisQueryAll,
            Set4Series::GiisQueryPart,
            Set4Series::HawkeyeManager,
        ];

        pub fn label(self) -> &'static str {
            match self {
                Set4Series::GiisQueryAll => "MDS GIIS(query all)",
                Set4Series::GiisQueryPart => "MDS GIIS (query part)",
                Set4Series::HawkeyeManager => "Hawkeye Manager",
            }
        }

        /// Information-server counts per series (the paper's software
        /// limits: 200 for query-all, 500 for query-part, 1000 machines
        /// for the Manager).
        pub fn server_counts(self) -> &'static [u32] {
            match self {
                Set4Series::GiisQueryAll => &[10, 50, 100, 150, 200],
                Set4Series::GiisQueryPart => &[10, 50, 100, 200, 300, 400, 500],
                Set4Series::HawkeyeManager => &[10, 50, 100, 200, 400, 600, 800, 1000],
            }
        }
    }

    /// Deploy and wire one point's world without running it.
    pub fn build(series: Set4Series, servers: u32, cfg: &RunConfig) -> Harness {
        let mut h = Harness::new(*cfg);
        match series {
            Set4Series::GiisQueryAll | Set4Series::GiisQueryPart => {
                // GIIS on lucky0; GRIS instances spread over the other
                // lucky nodes; default cachettl (30 s) — the GIIS serves
                // from cache and re-pulls expired subtrees.
                let giis_node = h.lucky("lucky0");
                let gris_nodes: Vec<NodeId> =
                    ["lucky1", "lucky3", "lucky4", "lucky5", "lucky6", "lucky7"]
                        .iter()
                        .map(|n| h.lucky(n))
                        .collect();
                let ttl = h.cfg.params.giis_exp4_cachettl;
                let (giis, grafts) =
                    deploy_giis(&mut h, giis_node, &gris_nodes, servers as usize, Some(ttl));
                h.watch(giis_node);
                let placement = uc_placement(&h, USERS);
                let cpu = h.cfg.params.mds_client_cpu_us;
                let all = series == Set4Series::GiisQueryAll;
                let _ = grafts; // grafts remain available for subtree workloads
                spawn(&mut h, &placement, giis, cpu, move || {
                    Box::new(move |_rng| {
                        let req = if all {
                            // "queried for all of the data available from
                            // each of the registered GRIS".
                            MdsRequest::search_all(giis_suffix())
                        } else {
                            // "asked for only a portion of the data from
                            // each registered GRIS": the cpu device group
                            // of every source, device names only.
                            MdsRequest::Search {
                                base: giis_suffix(),
                                scope: Scope::Sub,
                                filter: Filter::parse("(mds-device-group-name=cpu)").unwrap(),
                                attrs: Some(vec![
                                    "mds-device-group-name".into(),
                                    "objectclass".into(),
                                ]),
                            }
                        };
                        let bytes = req.wire_size();
                        (Box::new(req) as simnet::Payload, bytes)
                    })
                });
            }
            Set4Series::HawkeyeManager => {
                let mgr_node = h.lucky("lucky3");
                let mgr = deploy_manager(&mut h, mgr_node);
                // The advertiser fleet lives on lucky4 (the paper used
                // `hawkeye_advertise` from testbed hosts).
                let fleet_node = h.lucky("lucky4");
                deploy_advertiser_fleet(&mut h, fleet_node, servers as usize, mgr);
                h.watch(mgr_node);
                let placement = uc_placement(&h, USERS);
                let cpu = h.cfg.params.condor_client_cpu_us;
                spawn(&mut h, &placement, mgr, cpu, || {
                    Box::new(|_rng| {
                        // Worst case: a constraint no machine satisfies.
                        let m = HawkeyeMsg::Constraint {
                            expr: "NoSuchAttribute =?= 424242".into(),
                        };
                        let bytes = m.wire_size();
                        (Box::new(m) as simnet::Payload, bytes)
                    })
                });
            }
        }
        h
    }

    /// Run one point of Experiment Set 4.
    pub fn run_point(series: Set4Series, servers: u32, cfg: &RunConfig) -> Measurement {
        build(series, servers, cfg).run_and_measure(f64::from(servers))
    }

    /// Run one point with the observability report harvested
    /// (requires `cfg.obs` to enable tracing and/or metrics).
    pub fn run_point_observed(series: Set4Series, servers: u32, cfg: &RunConfig) -> ObservedPoint {
        build(series, servers, cfg).run_and_observe(f64::from(servers))
    }
}

// ======================================================================
// Experiment Set 5 — resilience under injected faults
// ======================================================================
pub mod set5 {
    use super::*;
    use gfaults::{FaultAction, FaultPlan, FaultSpec, Scenario, PARTITION_BPS};
    use hawkeye::Manager;
    use mds::Giis;
    use rgma::ProducerServlet;
    use simcore::{SimDuration, SimTime};
    use simnet::{Client, ClientCx};
    use testbed::TestbedConfig;

    /// The three series of Figs 21–24: each system hit where its
    /// soft-state design is most exposed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Set5Series {
        /// MDS GIIS with 5 registered GRISes; the GRIS hosts' access
        /// links are partitioned.  The GIIS keeps answering from cache —
        /// stale but available.
        MdsGiis,
        /// R-GMA Registry + 5 ProducerServlets queried through a
        /// ConsumerServlet; producer servlets are killed and restarted.
        /// Consumers fail outright until the registry's re-registration
        /// machinery repopulates live producers.
        RgmaRegistry,
        /// Hawkeye Manager with 6 Agents; agents are killed and
        /// restarted.  Queries keep succeeding on resident ClassAds,
        /// but ad freshness degrades with every killed agent.
        HawkeyeManager,
    }

    /// Concurrent closed-loop users per point (as in Sets 3/4).
    pub const USERS: u32 = 10;

    /// Client-side query timeout: an abandoned query counts against
    /// availability and is retried with capped exponential backoff.
    pub const CLIENT_TIMEOUT_S: u64 = 10;

    /// How often the resilience probe samples staleness/recovery.
    const PROBE_PERIOD_S: u64 = 2;

    /// An agent ad older than this no longer matches (3 advertise
    /// periods, Condor's classic 3×-heartbeat rule of thumb).
    const HAWKEYE_FRESH_HORIZON_S: u64 = 90;

    impl Set5Series {
        pub const ALL: [Set5Series; 3] = [
            Set5Series::MdsGiis,
            Set5Series::RgmaRegistry,
            Set5Series::HawkeyeManager,
        ];

        pub fn label(self) -> &'static str {
            match self {
                Set5Series::MdsGiis => "MDS GIIS (GRIS partition)",
                Set5Series::RgmaRegistry => "R-GMA (producer churn)",
                Set5Series::HawkeyeManager => "Hawkeye (agent churn)",
            }
        }

        /// The swept x-axis: how many components are faulted.  Every
        /// sweep starts at 0 — the unfaulted control point.
        pub fn fault_counts(self) -> &'static [u32] {
            &[0, 1, 2, 3, 4, 5]
        }

        /// The scenario [`Scenario::Auto`] resolves to for this series.
        pub fn default_scenario(self) -> Scenario {
            match self {
                Set5Series::MdsGiis => Scenario::Partition,
                Set5Series::RgmaRegistry | Set5Series::HawkeyeManager => Scenario::Churn,
            }
        }
    }

    /// The canonical Set-5 schedule: the per-series scenario, fault onset
    /// 25% into the measurement window, heal at 60%.  `targets` is a
    /// placeholder — each point overrides it with its x value.
    pub fn default_spec() -> FaultSpec {
        FaultSpec {
            scenario: Scenario::Auto,
            targets: 1,
            start_frac: 0.25,
            heal_frac: 0.6,
        }
    }

    /// The satellite components a series faults, in deployment order.
    struct Targets {
        svcs: Vec<SvcKey>,
        hosts: Vec<String>,
        /// Timers to re-prime on restart (each service's deployment kick,
        /// so recovery rides its own re-registration machinery).
        prime: Vec<(SimDuration, u64)>,
    }

    /// Translate (scenario, n targets) into a concrete schedule.
    fn build_plan(
        h: &Harness,
        scenario: Scenario,
        t: &Targets,
        n: usize,
        start_at: SimTime,
        heal_at: SimTime,
    ) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let n = n.min(t.svcs.len());
        match scenario {
            Scenario::None | Scenario::Auto => {}
            Scenario::Churn => {
                for &svc in &t.svcs[..n] {
                    plan.push(start_at, FaultAction::Crash { svc });
                    plan.push(
                        heal_at,
                        FaultAction::Restart {
                            svc,
                            prime: t.prime.clone(),
                        },
                    );
                }
            }
            Scenario::Partition => {
                let lan = TestbedConfig::default().lan_bps;
                for host in &t.hosts[..n] {
                    for dir in ["up", "down"] {
                        let link = h
                            .net
                            .topo
                            .find_link(&format!("{host}-{dir}"))
                            .expect("access link");
                        plan.push(
                            start_at,
                            FaultAction::SetLinkCapacity {
                                link,
                                bps: PARTITION_BPS,
                            },
                        );
                        plan.push(heal_at, FaultAction::SetLinkCapacity { link, bps: lan });
                    }
                }
            }
            Scenario::Freeze => {
                for &svc in &t.svcs[..n] {
                    plan.push(
                        start_at,
                        FaultAction::Freeze {
                            svc,
                            until: heal_at,
                        },
                    );
                }
            }
            Scenario::ConnBurst => {
                for &svc in &t.svcs[..n] {
                    plan.push(
                        start_at,
                        FaultAction::DropConns {
                            svc,
                            until: heal_at,
                        },
                    );
                }
            }
        }
        plan
    }

    /// What the resilience probe watches, per series.
    enum ProbeTarget {
        Giis {
            giis: SvcKey,
            /// Data older than this means a subtree missed its re-pull.
            fresh_horizon: SimDuration,
        },
        Rgma {
            /// All producer servlets (staleness = mean publication age).
            all: Vec<SvcKey>,
            /// The crashed subset (recovery = all have republished).
            crashed: Vec<SvcKey>,
        },
        Hawkeye {
            mgr: SvcKey,
            total: usize,
        },
    }

    /// A passive deterministic observer: samples system staleness into a
    /// gauge every [`PROBE_PERIOD_S`] seconds (window samples only) and
    /// records the first instant the system looks healthy again after the
    /// heal.  It only reads simulation state and writes stats, so it
    /// cannot perturb the run's trajectory.
    struct Probe {
        target: ProbeTarget,
        ws: SimTime,
        we: SimTime,
        heal_at: SimTime,
        faulted: bool,
        recovered: bool,
    }

    impl Probe {
        fn staleness(&self, net: &simnet::Net, now: SimTime) -> Option<f64> {
            match &self.target {
                ProbeTarget::Giis { giis, .. } => net
                    .service_as::<Giis>(*giis)
                    .and_then(|g| g.max_data_age(now))
                    .map(|d| d.as_secs_f64()),
                ProbeTarget::Rgma { all, .. } => {
                    let ages: Vec<f64> = all
                        .iter()
                        .filter_map(|&k| net.service_as::<ProducerServlet>(k))
                        .filter_map(|ps| ps.last_publish_at)
                        .map(|t| now.saturating_since(t).as_secs_f64())
                        .collect();
                    if ages.is_empty() {
                        None
                    } else {
                        Some(ages.iter().sum::<f64>() / ages.len() as f64)
                    }
                }
                ProbeTarget::Hawkeye { mgr, .. } => net
                    .service_as::<Manager>(*mgr)
                    .and_then(|m| m.mean_ad_age(now)),
            }
        }

        fn healthy(&self, net: &simnet::Net, now: SimTime) -> bool {
            match &self.target {
                ProbeTarget::Giis {
                    giis,
                    fresh_horizon,
                } => net
                    .service_as::<Giis>(*giis)
                    .and_then(|g| g.max_data_age(now))
                    .is_some_and(|age| age <= *fresh_horizon),
                ProbeTarget::Rgma { crashed, .. } => crashed.iter().all(|&k| {
                    !net.service_down(k)
                        && net
                            .service_as::<ProducerServlet>(k)
                            .and_then(|ps| ps.last_publish_at)
                            .is_some_and(|t| t >= self.heal_at)
                }),
                ProbeTarget::Hawkeye { mgr, total } => {
                    net.service_as::<Manager>(*mgr).is_some_and(|m| {
                        m.fresh_count(now, SimDuration::from_secs(HAWKEYE_FRESH_HORIZON_S))
                            == *total
                    })
                }
            }
        }
    }

    impl Client for Probe {
        fn on_start(&mut self, cx: &mut ClientCx) {
            cx.wake_in(SimDuration::from_secs(PROBE_PERIOD_S), 0);
        }

        fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
            let now = cx.now();
            let period = SimDuration::from_secs(PROBE_PERIOD_S);
            if now >= self.ws && now < self.we {
                if let Some(age) = self.staleness(cx.net, now) {
                    cx.net.stats.gauge("probe.staleness_s", age);
                }
            }
            if self.faulted && !self.recovered && now >= self.heal_at {
                if self.healthy(cx.net, now) {
                    self.recovered = true;
                    let r = now.saturating_since(self.heal_at).as_secs_f64();
                    cx.net.stats.gauge("probe.recovery_s", r);
                    cx.net.stats.incr("probe.recovered");
                } else if now + period >= self.we && self.heal_at < self.we {
                    // Last in-window sample and still unhealthy: censor
                    // recovery at window end so the mean stays defined.
                    self.recovered = true;
                    let r = self.we.saturating_since(self.heal_at).as_secs_f64();
                    cx.net.stats.gauge("probe.recovery_s", r);
                    cx.net.stats.incr("probe.censored");
                }
            }
            cx.wake_in(period, 0);
        }
    }

    /// Like [`user_config`], with the Set-5 client timeout enabled.
    fn user_config_t(h: &Harness, client_cpu_us: f64) -> UserConfig {
        UserConfig {
            timeout: Some(SimDuration::from_secs(CLIENT_TIMEOUT_S)),
            ..user_config(h, client_cpu_us)
        }
    }

    /// Deploy and wire one point's world — deployment, fault schedule and
    /// resilience probe — without running it.
    ///
    /// `cfg.faults` is honoured verbatim: [`Scenario::Auto`] resolves to
    /// the series default, [`Scenario::None`] (the `RunConfig` default)
    /// injects nothing.  Callers that want the canonical Set-5 schedule
    /// set `cfg.faults = set5::default_spec()` first (the figures CLI
    /// does this when `--faults` is not given).  `faults` (the x value)
    /// overrides `cfg.faults.targets`.
    pub fn build(series: Set5Series, faults: u32, cfg: &RunConfig) -> Harness {
        let mut h = Harness::new(*cfg);
        let spec = cfg.faults;
        let scenario = match spec.scenario {
            Scenario::Auto => series.default_scenario(),
            s => s,
        };
        let ws = cfg.window_start();
        let we = cfg.window_end();
        let start_at = ws + cfg.window.mul_f64(spec.start_frac);
        let heal_at = ws + cfg.window.mul_f64(spec.heal_frac);
        let (targets, probe_target) = match series {
            Set5Series::MdsGiis => {
                let giis_node = h.lucky("lucky0");
                let gris_hosts = ["lucky3", "lucky4", "lucky5", "lucky6", "lucky7"];
                let gris_nodes: Vec<NodeId> = gris_hosts.iter().map(|n| h.lucky(n)).collect();
                // Finite cache TTL (as in Set 4): staleness is the age of
                // each subtree's last successful re-pull.
                let ttl = h.cfg.params.giis_exp4_cachettl;
                let (giis, _grafts) = deploy_giis(&mut h, giis_node, &gris_nodes, 5, Some(ttl));
                h.watch(giis_node);
                let placement = uc_placement(&h, USERS);
                let cpu = h.cfg.params.mds_client_cpu_us;
                let ucfg = user_config_t(&h, cpu);
                workload::spawn_users(&mut h.net, &mut h.eng, &placement, giis, &ucfg, || {
                    Box::new(|_rng| {
                        let req = MdsRequest::Search {
                            base: giis_suffix(),
                            scope: Scope::Sub,
                            filter: Filter::parse("(mds-device-group-name=cpu)").unwrap(),
                            attrs: None,
                        };
                        let bytes = req.wire_size();
                        (Box::new(req) as simnet::Payload, bytes)
                    })
                });
                let svcs = services_named(&h, "gris");
                let targets = Targets {
                    svcs,
                    hosts: gris_hosts.iter().map(|s| s.to_string()).collect(),
                    prime: vec![(SimDuration::from_millis(50), 0)],
                };
                let probe_target = ProbeTarget::Giis {
                    giis,
                    fresh_horizon: ttl + SimDuration::from_secs(5),
                };
                (targets, probe_target)
            }
            Set5Series::RgmaRegistry => {
                let reg_node = h.lucky("lucky1");
                let cs_node = h.lucky("lucky0");
                let ps_hosts = ["lucky3", "lucky4", "lucky5", "lucky6", "lucky7"];
                let reg = deploy_registry(&mut h, reg_node);
                let mut svcs = Vec::new();
                for name in ps_hosts {
                    let node = h.lucky(name);
                    svcs.push(deploy_producer_servlet(&mut h, node, 10, reg));
                }
                let cs = deploy_consumer_servlet(&mut h, cs_node, reg);
                h.watch(reg_node);
                let placement = uc_placement(&h, USERS);
                let cpu = h.cfg.params.rgma_client_cpu_us;
                let ucfg = user_config_t(&h, cpu);
                workload::spawn_users(&mut h.net, &mut h.eng, &placement, cs, &ucfg, || {
                    Box::new(|_rng| {
                        let m = RgmaMsg::ConsumerQuery {
                            sql: "SELECT * FROM cpuload".into(),
                        };
                        let bytes = m.wire_size();
                        (Box::new(m) as simnet::Payload, bytes)
                    })
                });
                let crashed: Vec<SvcKey> =
                    svcs.iter().copied().take(faults.min(5) as usize).collect();
                let targets = Targets {
                    svcs: svcs.clone(),
                    hosts: ps_hosts.iter().map(|s| s.to_string()).collect(),
                    prime: vec![(SimDuration::from_millis(200), 0)],
                };
                let probe_target = ProbeTarget::Rgma { all: svcs, crashed };
                (targets, probe_target)
            }
            Set5Series::HawkeyeManager => {
                let mgr_node = h.lucky("lucky3");
                let mgr = deploy_manager(&mut h, mgr_node);
                let agent_hosts: Vec<String> =
                    ["lucky0", "lucky1", "lucky4", "lucky5", "lucky6", "lucky7"]
                        .iter()
                        .map(|n| n.to_string())
                        .collect();
                let mut svcs = Vec::new();
                for name in &agent_hosts {
                    let node = h.lucky(name);
                    svcs.push(deploy_agent(&mut h, node, 11, mgr));
                }
                h.watch(mgr_node);
                let placement = uc_placement(&h, USERS);
                let cpu = h.cfg.params.condor_client_cpu_us;
                let ucfg = user_config_t(&h, cpu);
                let hosts = agent_hosts.clone();
                workload::spawn_users(&mut h.net, &mut h.eng, &placement, mgr, &ucfg, move || {
                    let hosts = hosts.clone();
                    Box::new(move |rng| {
                        let host = hosts[rng.next_below(hosts.len() as u64) as usize].clone();
                        let m = HawkeyeMsg::Status {
                            machine: Some(host),
                        };
                        let bytes = m.wire_size();
                        (Box::new(m) as simnet::Payload, bytes)
                    })
                });
                let total = svcs.len();
                let targets = Targets {
                    svcs,
                    hosts: agent_hosts,
                    prime: vec![(SimDuration::from_millis(500), 0)],
                };
                (targets, ProbeTarget::Hawkeye { mgr, total })
            }
        };
        let plan = build_plan(&h, scenario, &targets, faults as usize, start_at, heal_at);
        let faulted = !plan.is_empty();
        h.net.add_client(Box::new(Probe {
            target: probe_target,
            ws,
            we,
            heal_at,
            faulted,
            recovered: false,
        }));
        h.install_faults(plan);
        h
    }

    /// Every deployed service with the given `name()`, in deployment
    /// order (slab order is deterministic).
    fn services_named(h: &Harness, name: &str) -> Vec<SvcKey> {
        h.net
            .services
            .iter()
            .filter(|&(k, _)| h.net.service(k).is_some_and(|s| s.name() == name))
            .map(|(k, _)| k)
            .collect()
    }

    /// Run one point of Experiment Set 5.
    pub fn run_point(series: Set5Series, faults: u32, cfg: &RunConfig) -> Measurement {
        build(series, faults, cfg).run_and_measure(f64::from(faults))
    }

    /// Run one point with the observability report harvested
    /// (requires `cfg.obs` to enable tracing and/or metrics).
    pub fn run_point_observed(series: Set5Series, faults: u32, cfg: &RunConfig) -> ObservedPoint {
        build(series, faults, cfg).run_and_observe(f64::from(faults))
    }
}

pub use set1::Set1Series;
pub use set2::Set2Series;
pub use set3::Set3Series;
pub use set4::Set4Series;
pub use set5::Set5Series;

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;
    use simnet::ObsMode;

    /// Tracing and metrics observe the run without perturbing it: the
    /// embedded measurement of an observed run is bit-identical to the
    /// plain run's, and the harvest is non-empty.
    #[test]
    fn observed_run_matches_plain_run() {
        let mut cfg = RunConfig::quick(5);
        cfg.warmup = SimDuration::from_secs(5);
        cfg.window = SimDuration::from_secs(20);
        let base = set1::run_point(Set1Series::GrisCache, 2, &cfg);
        assert!(base.completions > 0, "point too short to be meaningful");
        let mut ocfg = cfg;
        ocfg.obs = ObsMode::FULL;
        let op = set1::run_point_observed(Set1Series::GrisCache, 2, &ocfg);
        assert_eq!(op.m, base);
        assert!(!op.report.events.is_empty());
        assert!(!op.report.metrics.is_empty());
        assert!(op.services.iter().any(|s| s.starts_with("gris")));
        assert!(op.nodes.iter().any(|n| n == "lucky7"));
    }

    /// A short Set-5 configuration: canonical fault schedule on a
    /// compressed clock.
    fn set5_cfg(seed: u64) -> RunConfig {
        let mut cfg = RunConfig::quick(seed);
        cfg.warmup = SimDuration::from_secs(20);
        cfg.window = SimDuration::from_secs(100);
        cfg.faults = set5::default_spec();
        cfg
    }

    /// Pinned claim (MDS): partitioning GRIS hosts leaves the GIIS
    /// answering from cache — availability holds up while staleness
    /// climbs well past the cache TTL, and recovery takes measurable
    /// time after the heal.
    #[test]
    fn set5_partition_leaves_giis_stale_but_available() {
        let cfg = set5_cfg(11);
        let base = set5::run_point(Set5Series::MdsGiis, 0, &cfg);
        let hit = set5::run_point(Set5Series::MdsGiis, 3, &cfg);
        assert!(base.completions > 0 && hit.completions > 0);
        assert!((base.availability - 1.0).abs() < 1e-9, "{base:?}");
        assert!(
            hit.availability > 0.5,
            "cached answers should keep most queries alive: {hit:?}"
        );
        // staleness_s is a whole-window mean, so a 35 s partition moves
        // it by a few seconds, not by its full depth.
        assert!(
            hit.staleness_s > base.staleness_s + 4.0,
            "partition must show up as data age: {} vs {}",
            hit.staleness_s,
            base.staleness_s
        );
        assert_eq!(base.recovery_s, 0.0);
        assert!(hit.recovery_s > 0.0, "{hit:?}");
    }

    /// Pinned claim (R-GMA): killing every producer servlet makes
    /// consumer queries fail outright (availability collapses) until the
    /// registry's re-registration machinery brings producers back.
    #[test]
    fn set5_rgma_full_churn_fails_consumers_until_reregistration() {
        let cfg = set5_cfg(12);
        let base = set5::run_point(Set5Series::RgmaRegistry, 0, &cfg);
        let hit = set5::run_point(Set5Series::RgmaRegistry, 5, &cfg);
        assert!((base.availability - 1.0).abs() < 1e-9, "{base:?}");
        assert!(
            hit.availability < 0.9,
            "a full producer outage must fail consumer queries: {hit:?}"
        );
        // Recovery is observed (producers republished after the heal).
        assert!(hit.recovery_s > 0.0, "{hit:?}");
        assert!(hit.throughput < base.throughput);
    }

    /// Pinned claim (Hawkeye): killed agents don't fail queries — the
    /// Manager matches on resident ClassAds — but freshness degrades
    /// with the number of killed agents.
    #[test]
    fn set5_hawkeye_churn_keeps_availability_but_ages_ads() {
        let cfg = set5_cfg(13);
        let base = set5::run_point(Set5Series::HawkeyeManager, 0, &cfg);
        let one = set5::run_point(Set5Series::HawkeyeManager, 1, &cfg);
        let four = set5::run_point(Set5Series::HawkeyeManager, 4, &cfg);
        assert!((base.availability - 1.0).abs() < 1e-9, "{base:?}");
        assert!(
            four.availability > 0.95,
            "resident ads keep queries answerable: {four:?}"
        );
        assert!(
            base.staleness_s < one.staleness_s && one.staleness_s < four.staleness_s,
            "ad age must grow with killed agents: {} < {} < {}",
            base.staleness_s,
            one.staleness_s,
            four.staleness_s
        );
    }

    /// Identical seed and plan ⇒ identical measurements; and a Set-5
    /// point with `FaultSpec::NONE` equals a run of the same deployment
    /// with no fault machinery at all (x = 0 under the canonical spec
    /// builds an empty plan too).
    #[test]
    fn set5_is_deterministic_and_none_matches_x0() {
        let cfg = set5_cfg(14);
        let a = set5::run_point(Set5Series::RgmaRegistry, 2, &cfg);
        let b = set5::run_point(Set5Series::RgmaRegistry, 2, &cfg);
        assert_eq!(a, b);
        let mut none = cfg;
        none.faults = gfaults::FaultSpec::NONE;
        let x0 = set5::run_point(Set5Series::RgmaRegistry, 0, &cfg);
        let unfaulted = set5::run_point(Set5Series::RgmaRegistry, 0, &none);
        assert_eq!(x0, unfaulted);
    }
}
