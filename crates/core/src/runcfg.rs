//! Run configuration and the per-point measurement record.

use crate::params::Params;
use gfaults::FaultSpec;
use simcore::{SimDuration, SimTime};
use simnet::ObsMode;

/// How long and at what fidelity to run one experiment point.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// RNG seed (same seed ⇒ identical results).
    pub seed: u64,
    /// Warm-up discarded before the measurement window.
    pub warmup: SimDuration,
    /// The measurement window (the paper uses a 10-minute span).
    pub window: SimDuration,
    /// All model constants.
    pub params: Params,
    /// Observability features (off by default; tracing and metrics
    /// observe the run without perturbing it, so measurements are
    /// byte-identical across modes).
    pub obs: ObsMode,
    /// Fault-injection spec (Experiment Set 5).  `FaultSpec::NONE` by
    /// default, in which case no `FaultDriver` is ever installed and runs
    /// are byte-identical to a build without the faults subsystem.
    pub faults: FaultSpec,
}

impl RunConfig {
    /// The paper's discipline: measure over 10 minutes after 2 minutes of
    /// warm-up.
    pub fn paper(seed: u64) -> RunConfig {
        RunConfig {
            seed,
            warmup: SimDuration::from_secs(120),
            window: SimDuration::from_secs(600),
            params: Params::default(),
            obs: ObsMode::OFF,
            faults: FaultSpec::NONE,
        }
    }

    /// A fast configuration for tests and Criterion benches: the same
    /// mechanisms on a shorter clock.
    pub fn quick(seed: u64) -> RunConfig {
        RunConfig {
            seed,
            warmup: SimDuration::from_secs(45),
            window: SimDuration::from_secs(120),
            params: Params::default(),
            obs: ObsMode::OFF,
            faults: FaultSpec::NONE,
        }
    }

    pub fn window_start(&self) -> SimTime {
        SimTime::ZERO + self.warmup
    }

    pub fn window_end(&self) -> SimTime {
        self.window_start() + self.window
    }
}

/// One experiment point: the four metrics the paper reports, plus
/// bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Measurement {
    /// The swept quantity (users / collectors / servers).
    pub x: f64,
    /// Completed queries per second over the window (Figs 5, 9, 13, 17).
    pub throughput: f64,
    /// Mean response time of completed queries, seconds (Figs 6, 10, 14,
    /// 18).
    pub response_time: f64,
    /// Mean one-minute load average of the server host (Figs 7, 11, 15,
    /// 19).
    pub load1: f64,
    /// Mean CPU load (%) of the server host (Figs 8, 12, 16, 20).
    pub cpu_load: f64,
    /// Refused connections inside the window (the admission mechanism).
    pub refused: u64,
    /// Completed queries inside the window.
    pub completions: u64,
    /// Fraction of windowed query attempts that completed successfully
    /// (completions / (completions + failed + timed-out)); 1.0 when no
    /// attempts landed in the window (Set 5, Fig 21).
    pub availability: f64,
    /// Mean data staleness observed by the resilience probe, seconds
    /// (Set 5, Fig 22).  Zero for Sets 1-4 where no probe runs.
    pub staleness_s: f64,
    /// Time from the heal event until the probe first saw the service
    /// healthy again, seconds; censored at window end (Set 5, Fig 23).
    pub recovery_s: f64,
}

impl Measurement {
    /// Pick one of the figure metrics by name.
    pub fn metric(&self, name: &str) -> f64 {
        match name {
            "throughput" => self.throughput,
            "response_time" => self.response_time,
            "load1" => self.load1,
            "cpu_load" => self.cpu_load,
            "availability" => self.availability,
            "staleness_s" => self.staleness_s,
            "recovery_s" => self.recovery_s,
            _ => f64::NAN,
        }
    }
}

/// The four metric names, in figure order within each of experiment sets
/// 1-4.
pub const METRICS: [&str; 4] = ["throughput", "response_time", "load1", "cpu_load"];

/// The four metric names, in figure order, for the resilience set (Set 5).
/// "throughput" doubles as goodput: only completed queries count.
pub const SET5_METRICS: [&str; 4] = ["availability", "staleness_s", "recovery_s", "throughput"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows() {
        let c = RunConfig::paper(1);
        assert_eq!(c.window_start(), SimTime::from_secs(120));
        assert_eq!(c.window_end(), SimTime::from_secs(720));
        let q = RunConfig::quick(1);
        assert!(q.window_end() < c.window_end());
    }

    #[test]
    fn metric_lookup() {
        let m = Measurement {
            throughput: 1.0,
            response_time: 2.0,
            load1: 3.0,
            cpu_load: 4.0,
            ..Default::default()
        };
        assert_eq!(m.metric("throughput"), 1.0);
        assert_eq!(m.metric("cpu_load"), 4.0);
        assert!(m.metric("nope").is_nan());
        let r = Measurement {
            availability: 0.5,
            staleness_s: 30.0,
            recovery_s: 12.0,
            ..Default::default()
        };
        assert_eq!(r.metric("availability"), 0.5);
        assert_eq!(r.metric("staleness_s"), 30.0);
        assert_eq!(r.metric("recovery_s"), 12.0);
    }

    #[test]
    fn default_config_has_no_faults() {
        assert!(RunConfig::paper(1).faults.is_none());
        assert!(RunConfig::quick(1).faults.is_none());
    }
}
