//! Figure regeneration: sweeps producing every figure's data series.
//!
//! Each experiment set yields four figures from the same runs (throughput,
//! response time, load1, CPU load).  [`run_set`] performs the sweep once
//! per set and [`figure`] projects the metric a given figure plots.

use crate::experiments::{set1, set2, set3, set4, Set1Series, Set2Series, Set3Series, Set4Series};
use crate::runcfg::{Measurement, RunConfig};

/// One series of a figure: a label and `(x, y)` points.
#[derive(Debug, Clone)]
pub struct SeriesData {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

/// All data of one figure.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// e.g. "Figure 5".
    pub id: String,
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<SeriesData>,
}

/// Complete measurements of one experiment set (before metric
/// projection).
#[derive(Debug, Clone)]
pub struct SetData {
    pub set: u32,
    pub series: Vec<(String, Vec<Measurement>)>,
}

/// Which metric each figure within a set plots, in paper order.
const SET_FIGS: [(u32, [u32; 4]); 4] = [
    (1, [5, 6, 7, 8]),
    (2, [9, 10, 11, 12]),
    (3, [13, 14, 15, 16]),
    (4, [17, 18, 19, 20]),
];

fn metric_of_position(pos: usize) -> (&'static str, &'static str) {
    match pos {
        0 => ("throughput", "Throughput (queries/sec)"),
        1 => ("response_time", "Response Time (sec)"),
        2 => ("load1", "Load1"),
        _ => ("cpu_load", "CPU Load"),
    }
}

fn x_label(set: u32) -> &'static str {
    match set {
        1 | 2 => "No. of Users",
        3 => "# of Information Collectors",
        _ => "# of Information Servers",
    }
}

fn set_title(set: u32, pos: usize) -> String {
    let subject = match set {
        1 => "Information Server",
        2 => "Directory Servers",
        3 => "Information Server",
        _ => "Aggregate Information Server",
    };
    let metric = metric_of_position(pos).1;
    format!("{subject} {metric} vs. {}", x_label(set))
}

/// Optional progress callback: `(series label, x)` before each point.
pub type Progress<'a> = &'a mut dyn FnMut(&str, f64);

/// Run one experiment set completely.  `scale` in `(0, 1]` shrinks every
/// swept x-value (for quick runs); 1.0 reproduces the paper's sweep.
pub fn run_set(set: u32, cfg: &RunConfig, scale: f64, progress: Option<Progress>) -> SetData {
    let mut cb = progress;
    let mut note = |label: &str, x: f64| {
        if let Some(cb) = cb.as_mut() {
            cb(label, x);
        }
    };
    let scale_x = |xs: &[u32]| -> Vec<u32> {
        let mut v: Vec<u32> = xs
            .iter()
            .map(|&x| ((x as f64 * scale).round() as u32).max(1))
            .collect();
        v.dedup();
        v
    };
    let mut series = Vec::new();
    match set {
        1 => {
            for s in Set1Series::ALL {
                let mut pts = Vec::new();
                for x in scale_x(s.user_counts()) {
                    note(s.label(), x as f64);
                    pts.push(set1::run_point(s, x, cfg));
                }
                series.push((s.label().to_string(), pts));
            }
        }
        2 => {
            for s in Set2Series::ALL {
                let mut pts = Vec::new();
                for x in scale_x(s.user_counts()) {
                    note(s.label(), x as f64);
                    pts.push(set2::run_point(s, x, cfg));
                }
                series.push((s.label().to_string(), pts));
            }
        }
        3 => {
            for s in Set3Series::ALL {
                let mut pts = Vec::new();
                for x in scale_x(s.collector_counts()) {
                    note(s.label(), x as f64);
                    pts.push(set3::run_point(s, x, cfg));
                }
                series.push((s.label().to_string(), pts));
            }
        }
        4 => {
            for s in Set4Series::ALL {
                let mut pts = Vec::new();
                for x in scale_x(s.server_counts()) {
                    note(s.label(), x as f64);
                    pts.push(set4::run_point(s, x, cfg));
                }
                series.push((s.label().to_string(), pts));
            }
        }
        _ => panic!("experiment sets are 1..=4"),
    }
    SetData { set, series }
}

/// Project one figure out of a set's measurements.
pub fn figure(data: &SetData, fig: u32) -> FigureData {
    let (set, figs) = SET_FIGS
        .iter()
        .find(|(s, _)| *s == data.set)
        .expect("valid set");
    let pos = figs
        .iter()
        .position(|&f| f == fig)
        .unwrap_or_else(|| panic!("figure {fig} is not in set {set}"));
    let (metric, y_label) = metric_of_position(pos);
    FigureData {
        id: format!("Figure {fig}"),
        title: set_title(*set, pos),
        x_label: x_label(*set).to_string(),
        y_label: y_label.to_string(),
        series: data
            .series
            .iter()
            .map(|(label, pts)| SeriesData {
                label: label.clone(),
                points: pts.iter().map(|m| (m.x, m.metric(metric))).collect(),
            })
            .collect(),
    }
}

/// The set a figure belongs to.
pub fn set_of_figure(fig: u32) -> Option<u32> {
    SET_FIGS
        .iter()
        .find(|(_, figs)| figs.contains(&fig))
        .map(|(s, _)| *s)
}

/// All figure numbers, in paper order.
pub fn all_figures() -> Vec<u32> {
    (5..=20).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_set_mapping() {
        assert_eq!(set_of_figure(5), Some(1));
        assert_eq!(set_of_figure(8), Some(1));
        assert_eq!(set_of_figure(12), Some(2));
        assert_eq!(set_of_figure(16), Some(3));
        assert_eq!(set_of_figure(20), Some(4));
        assert_eq!(set_of_figure(4), None);
        assert_eq!(set_of_figure(21), None);
        assert_eq!(all_figures().len(), 16);
    }

    #[test]
    fn titles_match_paper_vocabulary() {
        assert!(set_title(1, 0).contains("Information Server Throughput"));
        assert!(set_title(2, 1).contains("Directory Servers Response Time"));
        assert!(set_title(4, 3).contains("Aggregate Information Server CPU Load"));
    }
}
