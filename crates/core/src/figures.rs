//! Figure regeneration: sweeps producing every figure's data series.
//!
//! Each experiment set yields four figures from the same runs (throughput,
//! response time, load1, CPU load).  The sweep is expressed as a list of
//! self-contained [`PointSpec`] jobs — one per `(series, x)` — so callers
//! can execute them sequentially ([`run_set`]) or hand them to the
//! parallel engine in `gridmon-runner`; both produce byte-identical
//! results because every point derives its own seed from the spec.
//! [`figure`] projects the metric a given figure plots.

use crate::deploy::ObservedPoint;
use crate::experiments::{
    set1, set2, set3, set4, set5, set6, Set1Series, Set2Series, Set3Series, Set4Series, Set5Series,
    Set6Series,
};
use crate::mapping::System;
use crate::runcfg::{Measurement, RunConfig};
use crate::stablehash::{fnv1a64, mix64};
use std::fmt;

/// One series of a figure: a label and `(x, y)` points.
#[derive(Debug, Clone)]
pub struct SeriesData {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

/// All data of one figure.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// e.g. "Figure 5".
    pub id: String,
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<SeriesData>,
}

/// Complete measurements of one experiment set (before metric
/// projection).
#[derive(Debug, Clone)]
pub struct SetData {
    pub set: u32,
    pub series: Vec<(String, Vec<Measurement>)>,
}

/// Selection errors: the paper defines sets 1–4 (figures 5–20); this
/// reproduction adds the resilience set 5 (figures 21–24) and the
/// federation set 6 (figures 25–28).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureError {
    /// Experiment sets are 1..=6.
    UnknownSet(u32),
    /// Figures are 5..=28.
    UnknownFigure(u32),
    /// The figure exists but belongs to a different set's data.
    FigureNotInSet { fig: u32, set: u32 },
}

impl fmt::Display for FigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FigureError::UnknownSet(s) => {
                write!(
                    f,
                    "no experiment set {s}: sets 1-4 are the paper's, 5 is resilience, 6 is federation"
                )
            }
            FigureError::UnknownFigure(n) => {
                write!(
                    f,
                    "no figure {n}: figures 5-20 are the paper's, 21-24 resilience, 25-28 federation"
                )
            }
            FigureError::FigureNotInSet { fig, set } => {
                write!(f, "figure {fig} is not produced by experiment set {set}")
            }
        }
    }
}

impl std::error::Error for FigureError {}

/// Which metric each figure within a set plots, in paper order.
const SET_FIGS: [(u32, [u32; 4]); 6] = [
    (1, [5, 6, 7, 8]),
    (2, [9, 10, 11, 12]),
    (3, [13, 14, 15, 16]),
    (4, [17, 18, 19, 20]),
    (5, [21, 22, 23, 24]),
    (6, [25, 26, 27, 28]),
];

fn metric_of(set: u32, pos: usize) -> (&'static str, &'static str) {
    if set == 5 {
        // The resilience metrics of Figs 21-24.
        return match pos {
            0 => ("availability", "Availability (fraction)"),
            1 => ("staleness_s", "Staleness (sec)"),
            2 => ("recovery_s", "Recovery Time (sec)"),
            _ => ("throughput", "Goodput (queries/sec)"),
        };
    }
    match pos {
        0 => ("throughput", "Throughput (queries/sec)"),
        1 => ("response_time", "Response Time (sec)"),
        2 => ("load1", "Load1"),
        _ => ("cpu_load", "CPU Load"),
    }
}

fn x_label(set: u32) -> &'static str {
    match set {
        1 | 2 => "No. of Users",
        3 => "# of Information Collectors",
        5 => "# of Faulted Components",
        _ => "# of Information Servers",
    }
}

fn set_title(set: u32, pos: usize) -> String {
    let subject = match set {
        1 => "Information Server",
        2 => "Directory Servers",
        3 => "Information Server",
        5 => "Monitoring Service",
        _ => "Aggregate Information Server",
    };
    let metric = metric_of(set, pos).1;
    format!("{subject} {metric} vs. {}", x_label(set))
}

// ======================================================================
// Point-level sweep decomposition
// ======================================================================

/// One sweep series of one experiment set, unified across sets so a
/// scheduler can treat all points alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesId {
    S1(Set1Series),
    S2(Set2Series),
    S3(Set3Series),
    S4(Set4Series),
    S5(Set5Series),
    S6(Set6Series),
}

impl SeriesId {
    /// Every series of one experiment set, in paper order.
    pub fn all_in_set(set: u32) -> Result<Vec<SeriesId>, FigureError> {
        Ok(match set {
            1 => Set1Series::ALL.iter().map(|&s| SeriesId::S1(s)).collect(),
            2 => Set2Series::ALL.iter().map(|&s| SeriesId::S2(s)).collect(),
            3 => Set3Series::ALL.iter().map(|&s| SeriesId::S3(s)).collect(),
            4 => Set4Series::ALL.iter().map(|&s| SeriesId::S4(s)).collect(),
            5 => Set5Series::ALL.iter().map(|&s| SeriesId::S5(s)).collect(),
            6 => Set6Series::ALL.iter().map(|&s| SeriesId::S6(s)).collect(),
            other => return Err(FigureError::UnknownSet(other)),
        })
    }

    /// The experiment set this series belongs to.
    pub fn set(self) -> u32 {
        match self {
            SeriesId::S1(_) => 1,
            SeriesId::S2(_) => 2,
            SeriesId::S3(_) => 3,
            SeriesId::S4(_) => 4,
            SeriesId::S5(_) => 5,
            SeriesId::S6(_) => 6,
        }
    }

    /// The figure legend label (stable: also the series' cache identity).
    pub fn label(self) -> &'static str {
        match self {
            SeriesId::S1(s) => s.label(),
            SeriesId::S2(s) => s.label(),
            SeriesId::S3(s) => s.label(),
            SeriesId::S4(s) => s.label(),
            SeriesId::S5(s) => s.label(),
            SeriesId::S6(s) => s.label(),
        }
    }

    /// The x-values the paper sweeps for this series.
    pub fn x_values(self) -> &'static [u32] {
        match self {
            SeriesId::S1(s) => s.user_counts(),
            SeriesId::S2(s) => s.user_counts(),
            SeriesId::S3(s) => s.collector_counts(),
            SeriesId::S4(s) => s.server_counts(),
            SeriesId::S5(s) => s.fault_counts(),
            SeriesId::S6(s) => s.server_counts(),
        }
    }

    /// The monitoring system under test — determines which calibrated
    /// parameters affect this series (see [`crate::params::Params::fingerprint`]).
    pub fn system(self) -> System {
        match self {
            SeriesId::S1(Set1Series::GrisCache | Set1Series::GrisNoCache) => System::Mds,
            SeriesId::S1(Set1Series::HawkeyeAgent) => System::Hawkeye,
            SeriesId::S1(_) => System::Rgma,
            SeriesId::S2(Set2Series::Giis) => System::Mds,
            SeriesId::S2(Set2Series::HawkeyeManager) => System::Hawkeye,
            SeriesId::S2(_) => System::Rgma,
            SeriesId::S3(Set3Series::GrisCache | Set3Series::GrisNoCache) => System::Mds,
            SeriesId::S3(Set3Series::HawkeyeAgent) => System::Hawkeye,
            SeriesId::S3(Set3Series::ProducerServlet) => System::Rgma,
            SeriesId::S4(Set4Series::HawkeyeManager) => System::Hawkeye,
            SeriesId::S4(_) => System::Mds,
            SeriesId::S5(Set5Series::MdsGiis) => System::Mds,
            SeriesId::S5(Set5Series::RgmaRegistry) => System::Rgma,
            SeriesId::S5(Set5Series::HawkeyeManager) => System::Hawkeye,
            SeriesId::S6(_) => System::Mds,
        }
    }

    /// The declarative spec this series compiles to — its canonical text
    /// is the single source of truth for the deployed topology.
    pub fn catalogue_spec(self) -> gscenario::ScenarioSpec {
        use crate::scenario::catalogue;
        match self {
            SeriesId::S1(s) => catalogue::set1(s),
            SeriesId::S2(s) => catalogue::set2(s),
            SeriesId::S3(s) => catalogue::set3(s),
            SeriesId::S4(s) => catalogue::set4(s),
            SeriesId::S5(s) => catalogue::set5(s),
            SeriesId::S6(s) => catalogue::set6(s),
        }
    }

    /// Fingerprint of [`catalogue_spec`](SeriesId::catalogue_spec):
    /// folded into the result-cache address so editing a built-in
    /// topology invalidates exactly that series' cached points.
    pub fn scenario_fingerprint(self) -> String {
        self.catalogue_spec().fingerprint()
    }

    /// Run one point of this series with `cfg` exactly as given (no seed
    /// derivation — see [`PointSpec::run`] for the sweep discipline).
    pub fn run_point_raw(self, x: u32, cfg: &RunConfig) -> Measurement {
        match self {
            SeriesId::S1(s) => set1::run_point(s, x, cfg),
            SeriesId::S2(s) => set2::run_point(s, x, cfg),
            SeriesId::S3(s) => set3::run_point(s, x, cfg),
            SeriesId::S4(s) => set4::run_point(s, x, cfg),
            SeriesId::S5(s) => set5::run_point(s, x, cfg),
            SeriesId::S6(s) => set6::run_point(s, x, cfg),
        }
    }

    /// Like [`run_point_raw`](SeriesId::run_point_raw), but harvest the
    /// observability report (requires `cfg.obs` to enable something).
    pub fn run_point_observed_raw(self, x: u32, cfg: &RunConfig) -> ObservedPoint {
        match self {
            SeriesId::S1(s) => set1::run_point_observed(s, x, cfg),
            SeriesId::S2(s) => set2::run_point_observed(s, x, cfg),
            SeriesId::S3(s) => set3::run_point_observed(s, x, cfg),
            SeriesId::S4(s) => set4::run_point_observed(s, x, cfg),
            SeriesId::S5(s) => set5::run_point_observed(s, x, cfg),
            SeriesId::S6(s) => set6::run_point_observed(s, x, cfg),
        }
    }
}

/// A self-contained unit of sweep work: one `(series, x)` point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointSpec {
    pub series: SeriesId,
    pub x: u32,
}

impl PointSpec {
    /// Stable textual identity of this point, used for seed derivation
    /// and as part of the result-cache address.
    pub fn key(&self) -> String {
        format!(
            "set{}/{}/x={}",
            self.series.set(),
            self.series.label(),
            self.x
        )
    }

    /// The seed this point runs under: derived from the sweep's base
    /// seed and the point identity, so every point owns an independent
    /// random stream and the result is invariant to execution order.
    pub fn derived_seed(&self, base_seed: u64) -> u64 {
        mix64(base_seed ^ fnv1a64(self.key().as_bytes()))
    }

    /// `cfg` with the seed replaced by this point's derived seed.
    pub fn cfg_for(&self, base: &RunConfig) -> RunConfig {
        let mut c = *base;
        c.seed = self.derived_seed(base.seed);
        c
    }

    /// Execute this point.  Byte-identical wherever and whenever it
    /// runs: the measurement depends only on `(spec, base cfg)`.
    pub fn run(&self, base: &RunConfig) -> Measurement {
        self.series.run_point_raw(self.x, &self.cfg_for(base))
    }

    /// Execute this point with observability harvested.  The embedded
    /// measurement is byte-identical to [`run`](PointSpec::run) with the
    /// same base config: tracing observes the run without perturbing it.
    pub fn run_observed(&self, base: &RunConfig) -> ObservedPoint {
        self.series
            .run_point_observed_raw(self.x, &self.cfg_for(base))
    }
}

/// Shrink a sweep's x-values by `scale` in `(0, 1]` (for quick runs);
/// 1.0 reproduces the paper's sweep.  Collapsed duplicates are removed.
/// An x of 0 (Set 5's unfaulted control point) is never scaled away.
pub fn scale_xs(xs: &[u32], scale: f64) -> Vec<u32> {
    let mut v: Vec<u32> = xs
        .iter()
        .map(|&x| {
            if x == 0 {
                0
            } else {
                ((f64::from(x) * scale).round() as u32).max(1)
            }
        })
        .collect();
    v.dedup();
    v
}

/// All points of one experiment set, series-major in paper order — the
/// job list both the sequential and the parallel runner execute.
pub fn enumerate_set(set: u32, scale: f64) -> Result<Vec<PointSpec>, FigureError> {
    let mut specs = Vec::new();
    for series in SeriesId::all_in_set(set)? {
        for x in scale_xs(series.x_values(), scale) {
            specs.push(PointSpec { series, x });
        }
    }
    Ok(specs)
}

/// Group per-point results (parallel to `specs`) back into a
/// [`SetData`], preserving paper series order.
pub fn assemble_set(set: u32, specs: &[PointSpec], results: &[Measurement]) -> SetData {
    assert_eq!(specs.len(), results.len(), "one result per spec");
    let mut series: Vec<(String, Vec<Measurement>)> = Vec::new();
    for (spec, m) in specs.iter().zip(results) {
        let label = spec.series.label();
        match series.last_mut() {
            Some((l, pts)) if l == label => pts.push(*m),
            _ => series.push((label.to_string(), vec![*m])),
        }
    }
    SetData { set, series }
}

/// Optional progress callback: `(series label, x)` before each point.
pub type Progress<'a> = &'a mut dyn FnMut(&str, f64);

/// Run one experiment set completely and sequentially.  `scale` in
/// `(0, 1]` shrinks every swept x-value; 1.0 reproduces the paper's
/// sweep.  The parallel engine (`gridmon-runner`) executes the same
/// [`enumerate_set`] job list and yields byte-identical results.
pub fn run_set(
    set: u32,
    cfg: &RunConfig,
    scale: f64,
    progress: Option<Progress>,
) -> Result<SetData, FigureError> {
    let specs = enumerate_set(set, scale)?;
    let mut cb = progress;
    let mut results = Vec::with_capacity(specs.len());
    for spec in &specs {
        if let Some(cb) = cb.as_mut() {
            cb(spec.series.label(), f64::from(spec.x));
        }
        results.push(spec.run(cfg));
    }
    Ok(assemble_set(set, &specs, &results))
}

/// Project one figure out of a set's measurements.
pub fn figure(data: &SetData, fig: u32) -> Result<FigureData, FigureError> {
    let (set, figs) = SET_FIGS
        .iter()
        .find(|(s, _)| *s == data.set)
        .ok_or(FigureError::UnknownSet(data.set))?;
    let pos = figs.iter().position(|&f| f == fig).ok_or_else(|| {
        if set_of_figure(fig).is_some() {
            FigureError::FigureNotInSet { fig, set: *set }
        } else {
            FigureError::UnknownFigure(fig)
        }
    })?;
    let (metric, y_label) = metric_of(*set, pos);
    Ok(FigureData {
        id: format!("Figure {fig}"),
        title: set_title(*set, pos),
        x_label: x_label(*set).to_string(),
        y_label: y_label.to_string(),
        series: data
            .series
            .iter()
            .map(|(label, pts)| SeriesData {
                label: label.clone(),
                points: pts.iter().map(|m| (m.x, m.metric(metric))).collect(),
            })
            .collect(),
    })
}

/// Title of one figure without running anything (`None` for unknown
/// figure numbers).  Lets the CLI's `--list` describe the catalogue.
pub fn figure_title(fig: u32) -> Option<String> {
    let set = set_of_figure(fig)?;
    let pos = figures_of_set(set).ok()?.iter().position(|&f| f == fig)?;
    Some(set_title(set, pos))
}

/// The set a figure belongs to.
pub fn set_of_figure(fig: u32) -> Option<u32> {
    SET_FIGS
        .iter()
        .find(|(_, figs)| figs.contains(&fig))
        .map(|(s, _)| *s)
}

/// All figure numbers, in paper order (5–20), plus the resilience
/// figures 21–24 and the federation figures 25–28.
pub fn all_figures() -> Vec<u32> {
    (5..=28).collect()
}

/// The four figures an experiment set produces, in paper order.
pub fn figures_of_set(set: u32) -> Result<[u32; 4], FigureError> {
    SET_FIGS
        .iter()
        .find(|(s, _)| *s == set)
        .map(|(_, figs)| *figs)
        .ok_or(FigureError::UnknownSet(set))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_set_mapping() {
        assert_eq!(set_of_figure(5), Some(1));
        assert_eq!(set_of_figure(8), Some(1));
        assert_eq!(set_of_figure(12), Some(2));
        assert_eq!(set_of_figure(16), Some(3));
        assert_eq!(set_of_figure(20), Some(4));
        assert_eq!(set_of_figure(21), Some(5));
        assert_eq!(set_of_figure(24), Some(5));
        assert_eq!(set_of_figure(25), Some(6));
        assert_eq!(set_of_figure(28), Some(6));
        assert_eq!(set_of_figure(4), None);
        assert_eq!(set_of_figure(29), None);
        assert_eq!(all_figures().len(), 24);
        assert_eq!(figures_of_set(2).unwrap(), [9, 10, 11, 12]);
        assert_eq!(figures_of_set(5).unwrap(), [21, 22, 23, 24]);
        assert_eq!(figures_of_set(6).unwrap(), [25, 26, 27, 28]);
        assert_eq!(figures_of_set(9), Err(FigureError::UnknownSet(9)));
    }

    #[test]
    fn titles_match_paper_vocabulary() {
        assert!(set_title(1, 0).contains("Information Server Throughput"));
        assert!(set_title(2, 1).contains("Directory Servers Response Time"));
        assert!(set_title(4, 3).contains("Aggregate Information Server CPU Load"));
        assert!(set_title(5, 0).contains("Availability"));
        assert!(set_title(5, 3).contains("Goodput"));
        assert!(set_title(5, 0).contains("Faulted Components"));
    }

    #[test]
    fn selection_errors_are_clean() {
        assert_eq!(
            SeriesId::all_in_set(0).unwrap_err(),
            FigureError::UnknownSet(0)
        );
        let data = SetData {
            set: 1,
            series: vec![],
        };
        assert_eq!(
            figure(&data, 9).unwrap_err(),
            FigureError::FigureNotInSet { fig: 9, set: 1 }
        );
        assert_eq!(
            figure(&data, 42).unwrap_err(),
            FigureError::UnknownFigure(42)
        );
        let msg = FigureError::UnknownSet(7).to_string();
        assert!(msg.contains("sets 1-4"), "{msg}");
        let msg = FigureError::UnknownFigure(42).to_string();
        assert!(msg.contains("25-28"), "{msg}");
    }

    #[test]
    fn enumeration_covers_every_series_point() {
        // Full-scale set 1: five series, one spec per swept x.
        let specs = enumerate_set(1, 1.0).unwrap();
        let expected: usize = SeriesId::all_in_set(1)
            .unwrap()
            .iter()
            .map(|s| s.x_values().len())
            .sum();
        assert_eq!(specs.len(), expected);
        // Scaling dedups collapsed x-values.
        let quick = enumerate_set(1, 0.01).unwrap();
        assert!(quick.len() < specs.len());
        assert!(quick.iter().all(|p| p.x >= 1));
        // Set 5 keeps its x=0 control point under any scale.
        let s5 = enumerate_set(5, 0.34).unwrap();
        assert_eq!(s5.len() % 3, 0, "three series");
        for series in SeriesId::all_in_set(5).unwrap() {
            assert!(s5.iter().any(|p| p.series == series && p.x == 0));
        }
        assert_eq!(scale_xs(&[0, 1, 2, 3, 4, 5], 1.0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(scale_xs(&[0, 1, 2, 3, 4, 5], 0.4), vec![0, 1, 2]);
    }

    #[test]
    fn derived_seeds_are_per_point_and_stable() {
        let a = PointSpec {
            series: SeriesId::S1(Set1Series::GrisCache),
            x: 50,
        };
        let b = PointSpec {
            series: SeriesId::S1(Set1Series::GrisCache),
            x: 100,
        };
        let c = PointSpec {
            series: SeriesId::S1(Set1Series::GrisNoCache),
            x: 50,
        };
        assert_ne!(a.derived_seed(1), b.derived_seed(1));
        assert_ne!(a.derived_seed(1), c.derived_seed(1));
        assert_ne!(a.derived_seed(1), a.derived_seed(2));
        // Stable across calls (and, via FNV, across platforms).
        assert_eq!(a.derived_seed(1), a.derived_seed(1));
        assert_eq!(a.key(), "set1/MDS GRIS (cache)/x=50");
    }

    #[test]
    fn assemble_groups_by_series_in_order() {
        let specs = enumerate_set(3, 0.05).unwrap();
        let results: Vec<Measurement> = specs
            .iter()
            .enumerate()
            .map(|(i, _)| Measurement {
                x: i as f64,
                ..Default::default()
            })
            .collect();
        let data = assemble_set(3, &specs, &results);
        assert_eq!(data.series.len(), 4, "set 3 has four series");
        let total: usize = data.series.iter().map(|(_, pts)| pts.len()).sum();
        assert_eq!(total, specs.len());
    }
}
