//! Calibrated simulation parameters.
//!
//! Absolute costs cannot be recovered from a 2003 testbed, so every
//! constant here is calibrated so the *mechanisms* the paper identifies
//! reproduce its reported curve shapes.  Each field's doc comment names
//! the observation it is calibrated against.  The experiment runners use
//! [`Params::default`]; ablation benches vary individual fields.

use crate::mapping::System;
use simcore::SimDuration;
use simnet::{ServiceConfig, SetupCost};

/// All tunables of the study, bundled.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    // ------------------------------------------------------------ network
    /// WAN capacity between UC and ANL, each direction.  A DS-3-class
    /// path; its saturation produces the throughput plateaus of Figs 5
    /// and 9.
    pub wan_bps: f64,
    /// One-way WAN latency (Chicago -> Argonne).
    pub wan_latency: SimDuration,

    // ---------------------------------------------------------------- MDS
    /// Concurrent connections a slapd-based GRIS/GIIS accepts.
    pub mds_conn_capacity: u32,
    /// Listen backlog of slapd.
    pub mds_backlog: u32,
    /// slapd worker threads on a GRIS.
    pub mds_workers: u32,
    /// slapd worker threads on the GIIS (the aggregate backend spends
    /// most of its time in the single-threaded database layer; fewer
    /// effective workers keep Fig 11's GIIS load1 in the observed range).
    pub giis_workers: u32,
    /// MDS 2.1 session establishment: the GSI-authenticated bind.  Its
    /// fixed cost dominates the cached-GRIS response time — the flat
    /// ≈4 s of Fig 6 — and, through Little's law with the 1 s think
    /// time, yields the near-linear throughput of Fig 5.
    pub gris_setup: SetupCost,
    /// GIIS binds are anonymous in the paper's directory experiments;
    /// session setup is cheaper, keeping Fig 10's response under 2 s.
    pub giis_setup: SetupCost,
    /// The GIIS serialises provider pulls and registration merges less
    /// efficiently than the Manager's resident database; Fig 12 ("the
    /// load of GIIS is nearly twice as bad") emerges from the search
    /// costs in `mds::gris`/`mds::giis`.
    /// Client-side CPU of one MDS query script (fork + `grid-proxy` +
    /// `ldapsearch`): contention among the ≤50 users per UC machine.
    pub mds_client_cpu_us: f64,
    /// GIIS cache TTL in Experiment 4 (Experiment 2 pins the cache).
    pub giis_exp4_cachettl: SimDuration,

    // ------------------------------------------------------------ Hawkeye
    /// The Agent is a single Startd process: one worker.
    pub agent_conn_capacity: u32,
    pub agent_backlog: u32,
    /// Manager accept capacity (the collector is select-based but
    /// bounded); beyond it queries are refused — Fig 11's load plateau.
    pub manager_conn_capacity: u32,
    pub manager_backlog: u32,
    /// Client-side CPU of one `condor_status`-style query.
    pub condor_client_cpu_us: f64,

    // -------------------------------------------------------------- R-GMA
    /// Servlet-container connection capacity (Tomcat-class defaults).
    pub servlet_conn_capacity: u32,
    pub servlet_backlog: u32,
    /// Servlet worker threads.
    pub servlet_workers: u32,
    /// Session setup for the HTTP/XML servlets.
    pub servlet_setup: SetupCost,
    /// Client-side CPU of one consumer query (Java API call on a warm
    /// JVM).
    pub rgma_client_cpu_us: f64,

    // ----------------------------------------------------------- workload
    /// The paper's 1-second wait between a response and the next query.
    pub think: SimDuration,
    /// Connect-retry backoff: base and cap.  TCP retransmits SYNs at
    /// ~3 s; scripts re-issue quickly after a refused connection, which
    /// keeps a saturated server loaded (Figs 7–8's threshold behaviour).
    pub retry_base: SimDuration,
    pub retry_cap: SimDuration,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            wan_bps: 40e6,
            wan_latency: SimDuration::from_millis(5),

            mds_conn_capacity: 1024,
            mds_backlog: 128,
            mds_workers: 16,
            giis_workers: 4,
            gris_setup: SetupCost {
                extra_rtts: 4.0,
                fixed: SimDuration::from_millis(3_500),
                server_cpu_us: 6_000.0,
            },
            giis_setup: SetupCost {
                extra_rtts: 2.0,
                fixed: SimDuration::from_millis(450),
                server_cpu_us: 5_000.0,
            },
            mds_client_cpu_us: 120_000.0,
            giis_exp4_cachettl: SimDuration::from_secs(30),

            agent_conn_capacity: 12,
            agent_backlog: 6,
            manager_conn_capacity: 256,
            manager_backlog: 64,
            condor_client_cpu_us: 180_000.0,

            servlet_conn_capacity: 75,
            servlet_backlog: 50,
            servlet_workers: 40,
            servlet_setup: SetupCost {
                extra_rtts: 1.0,
                fixed: SimDuration::from_millis(40),
                server_cpu_us: 6_000.0,
            },
            rgma_client_cpu_us: 35_000.0,

            think: SimDuration::from_secs(1),
            retry_base: SimDuration::from_secs(3),
            retry_cap: SimDuration::from_secs(12),
        }
    }
}

impl Params {
    /// A stable fingerprint of every parameter that can affect a run of
    /// `sys` — the shared network/workload constants plus that system's
    /// own tunables.  The parallel runner keys its result cache on this,
    /// so editing (say) a Hawkeye constant invalidates only Hawkeye
    /// series.
    ///
    /// Implementation: fields belonging to the *other* systems are reset
    /// to their defaults and the whole struct is `Debug`-formatted.  A
    /// newly added field is therefore included for every system until it
    /// is classified below — the conservative failure mode (spurious
    /// recomputation), never a stale cache hit.
    pub fn fingerprint(&self, sys: System) -> String {
        let d = Params::default();
        let mut p = *self;
        if sys != System::Mds {
            p.mds_conn_capacity = d.mds_conn_capacity;
            p.mds_backlog = d.mds_backlog;
            p.mds_workers = d.mds_workers;
            p.giis_workers = d.giis_workers;
            p.gris_setup = d.gris_setup;
            p.giis_setup = d.giis_setup;
            p.mds_client_cpu_us = d.mds_client_cpu_us;
            p.giis_exp4_cachettl = d.giis_exp4_cachettl;
        }
        if sys != System::Hawkeye {
            p.agent_conn_capacity = d.agent_conn_capacity;
            p.agent_backlog = d.agent_backlog;
            p.manager_conn_capacity = d.manager_conn_capacity;
            p.manager_backlog = d.manager_backlog;
            p.condor_client_cpu_us = d.condor_client_cpu_us;
        }
        if sys != System::Rgma {
            p.servlet_conn_capacity = d.servlet_conn_capacity;
            p.servlet_backlog = d.servlet_backlog;
            p.servlet_workers = d.servlet_workers;
            p.servlet_setup = d.servlet_setup;
            p.rgma_client_cpu_us = d.rgma_client_cpu_us;
        }
        format!("{}:{p:?}", sys.name())
    }

    /// Service configuration of a GRIS.
    pub fn gris_config(&self) -> ServiceConfig {
        ServiceConfig {
            conn_capacity: self.mds_conn_capacity,
            backlog: self.mds_backlog,
            workers: Some(self.mds_workers),
            setup: self.gris_setup,
        }
    }

    /// Service configuration of a GIIS.
    pub fn giis_config(&self) -> ServiceConfig {
        ServiceConfig {
            conn_capacity: self.mds_conn_capacity,
            backlog: self.mds_backlog,
            workers: Some(self.giis_workers),
            setup: self.giis_setup,
        }
    }

    /// Service configuration of a Hawkeye Agent (single Startd process).
    pub fn agent_config(&self) -> ServiceConfig {
        ServiceConfig {
            conn_capacity: self.agent_conn_capacity,
            backlog: self.agent_backlog,
            workers: Some(1),
            setup: SetupCost::plain(),
        }
    }

    /// Service configuration of the Hawkeye Manager.
    pub fn manager_config(&self) -> ServiceConfig {
        ServiceConfig {
            conn_capacity: self.manager_conn_capacity,
            backlog: self.manager_backlog,
            workers: Some(2),
            setup: SetupCost::plain(),
        }
    }

    /// Service configuration of an R-GMA servlet (Producer/Consumer/
    /// Registry alike).
    pub fn servlet_config(&self) -> ServiceConfig {
        ServiceConfig {
            conn_capacity: self.servlet_conn_capacity,
            backlog: self.servlet_backlog,
            workers: Some(self.servlet_workers),
            setup: self.servlet_setup,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = Params::default();
        assert!(p.wan_bps > 1e6);
        assert!(p.gris_setup.fixed > p.giis_setup.fixed);
        assert!(p.mds_client_cpu_us > p.rgma_client_cpu_us);
        assert_eq!(p.agent_config().workers, Some(1));
        assert!(p.servlet_config().conn_capacity < p.gris_config().conn_capacity);
    }

    #[test]
    fn fingerprint_scopes_params_by_system() {
        let base = Params::default();
        let mut tweaked = base;
        tweaked.condor_client_cpu_us += 1.0;
        // A Hawkeye edit changes only the Hawkeye fingerprint...
        assert_ne!(
            base.fingerprint(System::Hawkeye),
            tweaked.fingerprint(System::Hawkeye)
        );
        assert_eq!(
            base.fingerprint(System::Mds),
            tweaked.fingerprint(System::Mds)
        );
        assert_eq!(
            base.fingerprint(System::Rgma),
            tweaked.fingerprint(System::Rgma)
        );
        // ...while a shared (network) edit changes all three.
        let mut wan = base;
        wan.wan_bps *= 2.0;
        for sys in System::ALL {
            assert_ne!(base.fingerprint(sys), wan.fingerprint(sys));
        }
        // Fingerprints are system-tagged, so identical normalized params
        // under different systems never collide.
        assert_ne!(
            base.fingerprint(System::Mds),
            base.fingerprint(System::Rgma)
        );
    }
}
