//! # gridmon-core — the comparative performance study
//!
//! This crate is the reproduction of the paper's primary contribution:
//! a quantitative, like-for-like scalability study of three monitoring
//! and information services — Globus **MDS 2.1**, EU DataGrid
//! **R-GMA 1.18** and Condor **Hawkeye 0.1.4** — on a common testbed.
//!
//! * [`mapping`] — the functional component mapping of the paper's
//!   Table 1 (Information Collector / Information Server / Aggregate
//!   Information Server / Directory Server across the three systems).
//! * [`params`] — every calibrated constant of the simulation, each
//!   documented with the figure it reproduces.
//! * [`deploy`] — builds the paper's deployments on the simulated
//!   Lucky/UC testbed (which host runs which component).
//! * [`scenario`] — the declarative layer: compiles a
//!   [`gscenario::ScenarioSpec`] (topology + workload + faults as pure
//!   data) into a runnable world, and holds the built-in catalogue the
//!   experiment sets are defined in.
//! * [`experiments`] — one runner per experiment set (the paper's
//!   sections 3.3–3.6); each point yields the four reported metrics:
//!   throughput, response time, host `load1` and host CPU load.
//! * [`figures`] — sweeps that regenerate every figure (5–20) as named
//!   data series.
//! * [`report`] — aligned text tables, CSV output and quick ASCII plots.
//!
//! ```no_run
//! use gridmon_core::{experiments::{set1, Set1Series}, runcfg::RunConfig};
//!
//! let cfg = RunConfig::quick(1);
//! let m = set1::run_point(Set1Series::GrisCache, 50, &cfg);
//! println!("50 users -> {:.1} queries/sec", m.throughput);
//! ```

pub mod deploy;
pub mod experiments;
pub mod ext;
pub mod figures;
pub mod mapping;
pub mod params;
pub mod report;
pub mod runcfg;
pub mod scenario;
pub mod stablehash;

pub use deploy::ObservedPoint;
pub use mapping::{component_mapping, Role, System};
pub use params::Params;
pub use runcfg::{Measurement, RunConfig};
pub use simnet::{Obs, ObsMode};
