//! Extension studies — the paper's "future work", implemented.
//!
//! Section 4 lists three follow-ups; each has a runner here:
//!
//! 1. **WAN environment** — "the experiments should be repeated to study
//!    performance in a WAN environment": [`wan_study`] sweeps the UC-ANL
//!    link capacity/latency for the directory-server experiment.
//! 2. **Aggregate vs direct** — "determine the difference between
//!    querying an aggregate information server and an information server
//!    for the same piece of information": [`aggregate_vs_direct`].
//! 3. **Access patterns** — "additional patterns of user access":
//!    [`open_loop_study`] replaces the closed-loop users with a Poisson
//!    open-loop arrival stream and reports the loss rate.
//!
//! A fourth extension implements the paper's own scalability proposals:
//! [`hierarchy_study`] builds the "multi-layer architecture in which each
//! middle-level aggregate information server manages a subset of
//! information servers" and compares it with the flat GIIS of Experiment
//! Set 4, and [`composite_study`] exercises the R-GMA composite
//! Consumer/Producer the paper describes but R-GMA never shipped.

use crate::deploy::{giis_suffix, Harness, MdsBackend, RgmaBackend};
use crate::experiments::{set2, set4};
use crate::runcfg::{Measurement, RunConfig};
use mds::MdsRequest;
use rgma::{CompositeProducer, RgmaMsg};
use simcore::{SimDuration, SimRng};
use simnet::{NodeId, Payload, ServiceConfig};
use workload::{OpenLoopSource, UserConfig};

/// One row of the WAN study: link parameters plus the measured metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct WanPoint {
    pub label: String,
    pub wan_mbps: f64,
    pub wan_latency_ms: u64,
    pub m: Measurement,
}

/// The WAN qualities the study sweeps, from campus LAN to a
/// transatlantic-grade path: `(label, capacity bps, one-way latency ms)`.
pub const WAN_CASES: [(&str, f64, u64); 4] = [
    ("lan-100mbit-0.1ms", 100e6, 0u64),
    ("metro-40mbit-5ms", 40e6, 5),
    ("wan-10mbit-25ms", 10e6, 25),
    ("intercontinental-4mbit-80ms", 4e6, 80),
];

/// One point of the WAN study: the directory-server experiment under
/// `WAN_CASES[case]`.
pub fn wan_point(cfg: &RunConfig, users: u32, case: usize) -> WanPoint {
    let (label, bps, lat_ms) = WAN_CASES[case];
    let mut c = *cfg;
    c.params.wan_bps = bps;
    c.params.wan_latency = SimDuration::from_millis(lat_ms.max(1));
    let m = set2::run_point(set2::Set2Series::Giis, users, &c);
    WanPoint {
        label: label.to_string(),
        wan_mbps: bps / 1e6,
        wan_latency_ms: lat_ms,
        m,
    }
}

/// Repeat the directory-server experiment (GIIS, 200 users) across every
/// [`WAN_CASES`] quality.
pub fn wan_study(cfg: &RunConfig, users: u32) -> Vec<WanPoint> {
    (0..WAN_CASES.len())
        .map(|i| wan_point(cfg, users, i))
        .collect()
}

/// Query the same piece of information (one resource's subtree) from the
/// GRIS that owns it and from the GIIS that aggregates it.  Returns
/// `(direct, via_aggregate)`.
pub fn aggregate_vs_direct(cfg: &RunConfig, users: u32) -> (Measurement, Measurement) {
    use crate::experiments::set1;
    // Direct: the Set-1 cached-GRIS experiment *is* the direct query.
    let direct = set1::run_point(set1::Set1Series::GrisCache, users, cfg);
    // Via the aggregate: Set-2's GIIS experiment queries the same host
    // data through the directory.
    let via = set2::run_point(set2::Set2Series::Giis, users, cfg);
    (direct, via)
}

/// Flat vs hierarchical aggregation: `n` GRISes behind one GIIS, vs the
/// same `n` split over `branches` mid-level GIISes under a top GIIS.
/// Returns `(flat, hierarchical)` for 10 users querying everything.
pub fn hierarchy_study(cfg: &RunConfig, n: u32, branches: usize) -> (Measurement, Measurement) {
    let flat = hierarchy_flat_point(cfg, n);
    let hier = hierarchy_tree_point(cfg, n, branches);
    (flat, hier)
}

/// The flat baseline of the hierarchy study: one GIIS over `n` GRISes
/// (Experiment Set 4's query-all point).
pub fn hierarchy_flat_point(cfg: &RunConfig, n: u32) -> Measurement {
    set4::run_point(set4::Set4Series::GiisQueryAll, n, cfg)
}

/// The two-level architecture: `n` GRISes split over `branches`
/// mid-level GIISes under a top GIIS.
pub fn hierarchy_tree_point(cfg: &RunConfig, n: u32, branches: usize) -> Measurement {
    let mut h = Harness::new(*cfg);
    let top_node = h.lucky("lucky0");
    let mid_hosts = ["lucky1", "lucky3", "lucky4", "lucky5", "lucky6", "lucky7"];
    let branches = branches.min(mid_hosts.len());
    // Top-level GIIS with pinned cache over the mid level (the mid level
    // carries the churn).
    let ttl = Some(cfg.params.giis_exp4_cachettl);
    let top = MdsBackend.giis(&mut h, top_node, ttl, None, 0);
    // Mid-level GIISes, each managing a contiguous shard of the GRISes.
    for (b, host) in mid_hosts.iter().take(branches).enumerate() {
        let node = h.lucky(host);
        let mid = MdsBackend.giis(&mut h, node, ttl, Some(top), b as u32);
        MdsBackend.gris_fleet(&mut h, node, mid, 10, (b as u32, branches as u32), n);
    }
    h.watch(top_node);
    // 10 users query the top GIIS for everything, as in Set 4.
    let placement: Vec<NodeId> = (0..10).map(|i| h.uc[i % h.uc.len()]).collect();
    let ucfg = UserConfig {
        think: cfg.params.think,
        retry_base: cfg.params.retry_base,
        retry_cap: cfg.params.retry_cap,
        series: "user".into(),
        client_cpu_us: cfg.params.mds_client_cpu_us,
        timeout: None,
    };
    workload::spawn_users(&mut h.net, &mut h.eng, &placement, top, &ucfg, || {
        Box::new(|_rng| {
            let req = MdsRequest::search_all(giis_suffix());
            let bytes = req.wire_size();
            (Box::new(req) as Payload, bytes)
        })
    });
    h.run_and_measure(n as f64)
}

/// Result of the open-loop access-pattern study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopPoint {
    pub offered_per_sec: f64,
    pub completed_per_sec: f64,
    pub lost_per_sec: f64,
    pub response_time: f64,
}

/// Drive the R-GMA ProducerServlet with Poisson arrivals at increasing
/// offered rates; past the servlet's capacity the loss rate explodes
/// while the closed-loop experiment of Set 1 merely slowed down.
pub fn open_loop_study(cfg: &RunConfig, rates: &[f64]) -> Vec<OpenLoopPoint> {
    rates
        .iter()
        .map(|&rate| open_loop_point(cfg, rate))
        .collect()
}

/// One offered-rate point of the open-loop study.
pub fn open_loop_point(cfg: &RunConfig, rate: f64) -> OpenLoopPoint {
    let mut h = Harness::new(*cfg);
    let ps_node = h.lucky("lucky3");
    let reg_node = h.lucky("lucky1");
    let reg = RgmaBackend.registry(&mut h, reg_node);
    let ps = RgmaBackend.producer_servlet(&mut h, ps_node, 10, reg);
    h.watch(ps_node);
    // One source per UC machine, splitting the offered rate.
    let n_sources = 10usize;
    for i in 0..n_sources {
        let node = h.uc[i % h.uc.len()];
        let rng = h.eng.rng.fork(0xAAA + i as u64);
        let src = OpenLoopSource::new(
            node,
            ps,
            rate / n_sources as f64,
            "user",
            Box::new(|_rng: &mut SimRng| {
                let m = RgmaMsg::ProducerQuery {
                    sql: "SELECT * FROM cpuload".into(),
                };
                let bytes = m.wire_size();
                (Box::new(m) as Payload, bytes)
            }),
            rng,
        );
        h.net.add_client(Box::new(src));
    }
    let m = h.run_and_measure(rate);
    let span = cfg.window.as_secs_f64();
    OpenLoopPoint {
        offered_per_sec: rate,
        completed_per_sec: m.throughput,
        lost_per_sec: h.net.stats.counter("user.lost") as f64 / span,
        response_time: m.response_time,
    }
}

/// Exercise the composite Consumer/Producer: `sources` site servlets all
/// publishing `cpuload`, aggregated by one composite; 10 users query the
/// composite for everything.
pub fn composite_study(cfg: &RunConfig, sources: u32) -> Measurement {
    let mut h = Harness::new(*cfg);
    let reg_node = h.lucky("lucky1");
    let agg_node = h.lucky("lucky0");
    let reg = RgmaBackend.registry(&mut h, reg_node);
    let site_hosts = ["lucky3", "lucky4", "lucky5", "lucky6", "lucky7"];
    let mut keys = Vec::new();
    for i in 0..sources as usize {
        let node = h.lucky(site_hosts[i % site_hosts.len()]);
        keys.push(RgmaBackend.producer_servlet(&mut h, node, 10, reg));
    }
    let comp = h.net.add_service(
        agg_node,
        ServiceConfig {
            workers: Some(cfg.params.servlet_workers),
            ..cfg.params.servlet_config()
        },
        Box::new(CompositeProducer::new(
            "cpuload",
            keys,
            SimDuration::from_secs(30),
        )),
        &mut h.eng,
    );
    h.net.service_as_mut::<CompositeProducer>(comp).unwrap().me = Some(comp);
    h.net
        .prime_service_timer(&mut h.eng, comp, SimDuration::from_secs(5), 0);
    h.watch(agg_node);
    let placement: Vec<NodeId> = (0..10).map(|i| h.uc[i % h.uc.len()]).collect();
    let ucfg = UserConfig {
        think: cfg.params.think,
        retry_base: cfg.params.retry_base,
        retry_cap: cfg.params.retry_cap,
        series: "user".into(),
        client_cpu_us: cfg.params.rgma_client_cpu_us,
        timeout: None,
    };
    workload::spawn_users(&mut h.net, &mut h.eng, &placement, comp, &ucfg, || {
        Box::new(|_rng| {
            let m = RgmaMsg::ProducerQuery {
                sql: "*ALL*".into(),
            };
            let bytes = m.wire_size();
            (Box::new(m) as Payload, bytes)
        })
    });
    h.run_and_measure(sources as f64)
}
