//! The continuous benchmark suite and its regression gate.
//!
//! `gridmon-bench` runs a pinned matrix — for each experiment set, a
//! couple of representative points under the Bench profile, once
//! against an empty result cache (`setN/cold`, pinned on simulator
//! throughput in events per wall second) and once against the cache it
//! just filled (`setN/warm`, pinned on sweep wall time, i.e. cache
//! probe + decode cost).  The outcome is a schema-versioned
//! `BENCH_<label>.json`; [`compare`] turns a current report plus a
//! baseline report into a list of [`Regression`]s, which is what the
//! CI perf-smoke job gates on.
//!
//! Wall-clock numbers are machine-dependent, so baselines only make
//! sense against the same hardware class and the gate tolerance is
//! deliberately loose (CI uses 40 %); event *counts* are exactly
//! deterministic and double as a cheap determinism check.

use gperf::report::{json_escape, json_f64};
use gridmon_core::experiments::set5;
use gridmon_core::figures::{enumerate_set, FigureError};
use gridmon_runner::{Job, RunnerConfig};
use gtrace::json::{parse, Val};
use std::path::Path;

/// Schema tag of `BENCH_*.json`; bump on layout changes.
///
/// v2 added the allocation columns (`allocs`, `peak_bytes`,
/// `allocs_per_event`), populated when the binary is built with
/// `--features alloc-profile` and zero otherwise.
pub const BENCH_SCHEMA: &str = "gridmon-bench-v2";

/// The sets the full matrix covers.
pub const BENCH_SETS: [u32; 6] = [1, 2, 3, 4, 5, 6];

/// One benchmark matrix entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// `setN/cold` or `setN/warm`.
    pub id: String,
    /// Warm entries time the cache path; cold entries time execution.
    pub warm: bool,
    /// Points executed (cold) or served from cache (warm).
    pub points: u64,
    /// Wall seconds: execution wall (cold) / whole-sweep wall (warm).
    pub wall_s: f64,
    /// Engine events dispatched (0 for warm entries; deterministic).
    pub events: u64,
    /// Simulated seconds covered (0 for warm entries).
    pub sim_s: f64,
    /// Simulator speed, `events / wall_s` (0 for warm entries).
    pub events_per_sec: f64,
    /// Heap allocations performed during the phase (0 when the binary
    /// was built without `alloc-profile`).
    pub allocs: u64,
    /// Net growth of the in-use high-water mark over the phase, bytes
    /// (0 without `alloc-profile`).
    pub peak_bytes: u64,
    /// `allocs / events` for cold entries; 0 for warm entries and
    /// without `alloc-profile`.
    pub allocs_per_event: f64,
}

/// A full benchmark report, as serialized to `BENCH_<label>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub label: String,
    pub seed: u64,
    /// Resolved worker count the matrix ran with.
    pub jobs: usize,
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Serialize as a `gridmon-bench-v2` document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.entries.len() * 160);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
        out.push_str(&format!("  \"label\": \"{}\",\n", json_escape(&self.label)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\": \"{}\", \"warm\": {}, \"points\": {}, \"wall_s\": {}, \
                 \"events\": {}, \"sim_s\": {}, \"events_per_sec\": {}, \
                 \"allocs\": {}, \"peak_bytes\": {}, \"allocs_per_event\": {}}}",
                json_escape(&e.id),
                e.warm,
                e.points,
                json_f64(e.wall_s),
                e.events,
                json_f64(e.sim_s),
                json_f64(e.events_per_sec),
                e.allocs,
                e.peak_bytes,
                json_f64(e.allocs_per_event)
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a `gridmon-bench-v2` document.
    pub fn from_json(doc: &str) -> Result<BenchReport, String> {
        let v = parse(doc)?;
        let schema = v.get("schema").and_then(Val::as_str).unwrap_or("");
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "unsupported bench schema {schema:?} (expected {BENCH_SCHEMA:?})"
            ));
        }
        let num = |v: &Val, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Val::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let entries = v
            .get("entries")
            .and_then(Val::as_arr)
            .ok_or("missing entries array")?
            .iter()
            .map(|e| {
                Ok(BenchEntry {
                    id: e
                        .get("id")
                        .and_then(Val::as_str)
                        .ok_or("entry missing id")?
                        .to_string(),
                    warm: e.get("warm").and_then(Val::as_bool).unwrap_or(false),
                    points: num(e, "points")? as u64,
                    wall_s: num(e, "wall_s")?,
                    events: num(e, "events")? as u64,
                    sim_s: num(e, "sim_s")?,
                    events_per_sec: num(e, "events_per_sec")?,
                    allocs: num(e, "allocs")? as u64,
                    peak_bytes: num(e, "peak_bytes")? as u64,
                    allocs_per_event: num(e, "allocs_per_event")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport {
            label: v
                .get("label")
                .and_then(Val::as_str)
                .unwrap_or_default()
                .to_string(),
            seed: num(&v, "seed")? as u64,
            jobs: num(&v, "jobs")? as usize,
            entries,
        })
    }

    /// Render the report as an aligned table.  The allocation columns
    /// only appear when some entry actually carries alloc data (i.e.
    /// the matrix ran under `alloc-profile`).
    pub fn render(&self) -> String {
        let with_allocs = self.entries.iter().any(|e| e.allocs > 0);
        let mut out = format!(
            "benchmark {} (seed {}, {} worker{})\n{:<14} {:>7} {:>10} {:>12} {:>10} {:>14}",
            self.label,
            self.seed,
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
            "entry",
            "points",
            "wall (s)",
            "events",
            "sim (s)",
            "events/s"
        );
        if with_allocs {
            out.push_str(&format!(
                " {:>12} {:>12} {:>10}",
                "allocs", "peak (B)", "allocs/ev"
            ));
        }
        out.push('\n');
        for e in &self.entries {
            out.push_str(&format!(
                "{:<14} {:>7} {:>10.4} {:>12} {:>10.1} {:>14.0}",
                e.id, e.points, e.wall_s, e.events, e.sim_s, e.events_per_sec
            ));
            if with_allocs {
                out.push_str(&format!(
                    " {:>12} {:>12} {:>10.2}",
                    e.allocs, e.peak_bytes, e.allocs_per_event
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// One gate violation found by [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    pub id: String,
    /// What regressed: `events_per_sec`, `wall_s`, `allocs_per_event`,
    /// or `missing`.
    pub metric: &'static str,
    pub current: f64,
    pub baseline: f64,
    /// Signed change in percent (negative = slower throughput).
    pub delta_pct: f64,
}

/// Below this wall time a warm entry is all timer jitter: the cache
/// path finishes in ~0.1 ms, where a one-scheduler-tick difference
/// reads as a "+300%" regression.  Warm comparisons only fire once the
/// current run is slow enough to be signal.
const WARM_WALL_NOISE_FLOOR_S: f64 = 0.005;

/// Gate `current` against `baseline` with a symmetric `tolerance_pct`.
///
/// Cold entries regress when simulator throughput drops more than the
/// tolerance below the baseline, or when allocations per event grow
/// beyond it (the allocation check only fires when both reports carry
/// alloc data — a matrix run without `alloc-profile` reports zeros and
/// is exempt).  Warm entries regress when the cache path's wall time
/// exceeds the baseline by more than the tolerance *and* clears the
/// absolute noise floor ([`WARM_WALL_NOISE_FLOOR_S`]).  A baseline
/// entry missing from the current report is itself a regression (a
/// silently shrunken matrix must not pass the gate); entries new in
/// `current` are ignored.
pub fn compare(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance_pct: f64,
) -> Vec<Regression> {
    let tol = tolerance_pct / 100.0;
    let mut regressions = Vec::new();
    for base in &baseline.entries {
        let Some(cur) = current.entries.iter().find(|e| e.id == base.id) else {
            regressions.push(Regression {
                id: base.id.clone(),
                metric: "missing",
                current: 0.0,
                baseline: if base.warm {
                    base.wall_s
                } else {
                    base.events_per_sec
                },
                delta_pct: -100.0,
            });
            continue;
        };
        if base.warm {
            if base.wall_s > 0.0
                && cur.wall_s > WARM_WALL_NOISE_FLOOR_S
                && cur.wall_s > base.wall_s * (1.0 + tol)
            {
                regressions.push(Regression {
                    id: base.id.clone(),
                    metric: "wall_s",
                    current: cur.wall_s,
                    baseline: base.wall_s,
                    delta_pct: (cur.wall_s / base.wall_s - 1.0) * 100.0,
                });
            }
        } else {
            if base.events_per_sec > 0.0 && cur.events_per_sec < base.events_per_sec * (1.0 - tol) {
                regressions.push(Regression {
                    id: base.id.clone(),
                    metric: "events_per_sec",
                    current: cur.events_per_sec,
                    baseline: base.events_per_sec,
                    delta_pct: (cur.events_per_sec / base.events_per_sec - 1.0) * 100.0,
                });
            }
            if base.allocs_per_event > 0.0
                && cur.allocs_per_event > 0.0
                && cur.allocs_per_event > base.allocs_per_event * (1.0 + tol)
            {
                regressions.push(Regression {
                    id: base.id.clone(),
                    metric: "allocs_per_event",
                    current: cur.allocs_per_event,
                    baseline: base.allocs_per_event,
                    delta_pct: (cur.allocs_per_event / base.allocs_per_event - 1.0) * 100.0,
                });
            }
        }
    }
    regressions
}

/// Render regressions (or the all-clear) for the console.
pub fn render_regressions(regs: &[Regression], tolerance_pct: f64) -> String {
    if regs.is_empty() {
        return format!("perf gate: OK (within {tolerance_pct}% of baseline)\n");
    }
    let mut out = format!(
        "perf gate: {} regression(s) beyond {tolerance_pct}%\n",
        regs.len()
    );
    for r in regs {
        out.push_str(&format!(
            "  {:<14} {:<16} baseline {:>12.2}  current {:>12.2}  ({:+.1}%)\n",
            r.id, r.metric, r.baseline, r.current, r.delta_pct
        ));
    }
    out
}

/// Run the pinned matrix for `sets`: per set, the first and the median
/// enumerated point under the Bench profile, cold then warm.
/// `cache_root` must be a scratch directory (each set caches under its
/// own subdirectory); the caller removes it afterwards.
pub fn run_matrix(
    sets: &[u32],
    seed: u64,
    jobs: usize,
    cache_root: &Path,
    quiet: bool,
) -> Result<Vec<BenchEntry>, FigureError> {
    let profile = crate::Profile::Bench;
    let mut entries = Vec::with_capacity(sets.len() * 2);
    for &set in sets {
        let mut cfg = profile.run_config(seed);
        if set == 5 {
            cfg.faults = set5::default_spec();
        }
        let specs = enumerate_set(set, profile.scale())?;
        // Representative small + medium points: the first enumerated
        // point (lightest x of the first series) and the median of the
        // whole set (a mid-series, mid-load point).
        let mut picked = vec![specs[0]];
        if specs.len() > 1 {
            picked.push(specs[specs.len() / 2]);
        }
        let jobs_list: Vec<Job> = picked.iter().map(|&s| Job::Figure(s)).collect();
        let rc = RunnerConfig {
            jobs,
            cache_dir: Some(cache_root.join(format!("set{set}"))),
            quiet,
        };

        // Cold: empty cache, everything executes.  Bracket the run
        // with allocator snapshots (no-ops without `alloc-profile`):
        // `reset_peak` restarts the high-water mark so `peak_bytes`
        // measures this phase, not the whole process so far.
        gperf::alloc::reset_peak();
        let pre = gperf::alloc::stats().unwrap_or_default();
        let mut cold = gperf::PerfSink::new();
        let (_, _) = gridmon_runner::run_jobs_profiled(&jobs_list, &cfg, &rc, Some(&mut cold));
        let post = gperf::alloc::stats().unwrap_or_default();
        let t = cold.totals();
        let allocs = post.allocs.saturating_sub(pre.allocs);
        entries.push(BenchEntry {
            id: format!("set{set}/cold"),
            warm: false,
            points: t.executed,
            wall_s: t.exec_wall.as_secs_f64(),
            events: t.events,
            sim_s: t.sim_us as f64 / 1e6,
            events_per_sec: t.events_per_sec(),
            allocs,
            peak_bytes: post.peak.saturating_sub(pre.in_use),
            allocs_per_event: if t.events > 0 {
                allocs as f64 / t.events as f64
            } else {
                0.0
            },
        });

        // Warm: the same sweep against the cache the cold run filled.
        gperf::alloc::reset_peak();
        let pre = gperf::alloc::stats().unwrap_or_default();
        let mut warm = gperf::PerfSink::new();
        let (_, stats) = gridmon_runner::run_jobs_profiled(&jobs_list, &cfg, &rc, Some(&mut warm));
        let post = gperf::alloc::stats().unwrap_or_default();
        debug_assert_eq!(stats.executed, 0, "warm run must be all cache hits");
        entries.push(BenchEntry {
            id: format!("set{set}/warm"),
            warm: true,
            points: warm.cache.hits,
            wall_s: stats.wall.as_secs_f64(),
            events: 0,
            sim_s: 0.0,
            events_per_sec: 0.0,
            allocs: post.allocs.saturating_sub(pre.allocs),
            peak_bytes: post.peak.saturating_sub(pre.in_use),
            allocs_per_event: 0.0,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: Vec<BenchEntry>) -> BenchReport {
        BenchReport {
            label: "test".into(),
            seed: 1,
            jobs: 2,
            entries,
        }
    }

    fn cold(id: &str, eps: f64) -> BenchEntry {
        let events = (eps * 1.0) as u64;
        BenchEntry {
            id: id.into(),
            warm: false,
            points: 2,
            wall_s: 1.0,
            events,
            sim_s: 120.0,
            events_per_sec: eps,
            allocs: events * 3,
            peak_bytes: 1 << 20,
            allocs_per_event: 3.0,
        }
    }

    fn warm(id: &str, wall_s: f64) -> BenchEntry {
        BenchEntry {
            id: id.into(),
            warm: true,
            points: 2,
            wall_s,
            events: 0,
            sim_s: 0.0,
            events_per_sec: 0.0,
            allocs: 500,
            peak_bytes: 4096,
            allocs_per_event: 0.0,
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = report(vec![cold("set1/cold", 123456.7), warm("set1/warm", 0.0023)]);
        let doc = r.to_json();
        assert!(doc.contains("\"schema\": \"gridmon-bench-v2\""));
        let back = BenchReport::from_json(&doc).unwrap();
        assert_eq!(back.label, "test");
        assert_eq!(back.seed, 1);
        assert_eq!(back.jobs, 2);
        assert_eq!(back.entries.len(), 2);
        assert_eq!(back.entries[0].id, "set1/cold");
        assert!(!back.entries[0].warm);
        assert!((back.entries[0].events_per_sec - 123456.7).abs() < 1e-6);
        assert_eq!(back.entries[0].allocs, back.entries[0].events * 3);
        assert_eq!(back.entries[0].peak_bytes, 1 << 20);
        assert!((back.entries[0].allocs_per_event - 3.0).abs() < 1e-9);
        assert!(back.entries[1].warm);
    }

    #[test]
    fn v1_documents_are_rejected() {
        let doc = r#"{"schema": "gridmon-bench-v1", "label": "old", "seed": 1,
                      "jobs": 1, "entries": []}"#;
        assert!(BenchReport::from_json(doc).unwrap_err().contains("schema"));
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let doc = r#"{"schema": "something-else", "entries": []}"#;
        assert!(BenchReport::from_json(doc).unwrap_err().contains("schema"));
        assert!(BenchReport::from_json("{not json").is_err());
    }

    #[test]
    fn gate_flags_cold_throughput_drops_beyond_tolerance() {
        let base = report(vec![cold("set1/cold", 100_000.0)]);
        // 5% slower under a 10% gate: fine.
        let ok = report(vec![cold("set1/cold", 95_000.0)]);
        assert!(compare(&ok, &base, 10.0).is_empty());
        // 20% slower: regression.
        let bad = report(vec![cold("set1/cold", 80_000.0)]);
        let regs = compare(&bad, &base, 10.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "events_per_sec");
        assert!((regs[0].delta_pct - -20.0).abs() < 1e-9);
        // Faster is never a regression.
        let fast = report(vec![cold("set1/cold", 150_000.0)]);
        assert!(compare(&fast, &base, 10.0).is_empty());
    }

    #[test]
    fn gate_flags_alloc_per_event_growth() {
        let base = report(vec![cold("set1/cold", 100_000.0)]);
        // Same throughput, 3.0 -> 3.2 allocs/event under 10%: fine.
        let mut ok_entry = cold("set1/cold", 100_000.0);
        ok_entry.allocs_per_event = 3.2;
        assert!(compare(&report(vec![ok_entry]), &base, 10.0).is_empty());
        // 3.0 -> 4.5 allocs/event: regression.
        let mut bad_entry = cold("set1/cold", 100_000.0);
        bad_entry.allocs_per_event = 4.5;
        let regs = compare(&report(vec![bad_entry]), &base, 10.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "allocs_per_event");
        assert!((regs[0].delta_pct - 50.0).abs() < 1e-9);
        // A report without alloc data (feature off) is exempt.
        let mut off_entry = cold("set1/cold", 100_000.0);
        off_entry.allocs = 0;
        off_entry.allocs_per_event = 0.0;
        assert!(compare(&report(vec![off_entry.clone()]), &base, 10.0).is_empty());
        // ... and a baseline without alloc data never gates on it.
        let no_alloc_base = report(vec![off_entry]);
        let mut cur = cold("set1/cold", 100_000.0);
        cur.allocs_per_event = 99.0;
        assert!(compare(&report(vec![cur]), &no_alloc_base, 10.0).is_empty());
    }

    #[test]
    fn gate_flags_warm_wall_growth_and_missing_entries() {
        let base = report(vec![warm("set1/warm", 0.010), cold("set2/cold", 5e5)]);
        let slower = report(vec![warm("set1/warm", 0.020), cold("set2/cold", 5e5)]);
        let regs = compare(&slower, &base, 50.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "wall_s");
        assert!(regs[0].delta_pct > 99.0);
        // A shrunken matrix does not sneak past the gate.
        let shrunk = report(vec![warm("set1/warm", 0.010)]);
        let regs = compare(&shrunk, &base, 50.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "missing");
        assert_eq!(regs[0].id, "set2/cold");
    }

    #[test]
    fn gate_ignores_warm_jitter_below_noise_floor() {
        // 0.1 ms -> 0.4 ms is +300%, but both are timer noise: the
        // absolute floor keeps the warm check quiet until the cache
        // path is slow enough to mean something.
        let base = report(vec![warm("set1/warm", 0.0001)]);
        let jitter = report(vec![warm("set1/warm", 0.0004)]);
        assert!(compare(&jitter, &base, 50.0).is_empty());
        // A genuinely slow cache path still regresses.
        let slow = report(vec![warm("set1/warm", 0.0200)]);
        let regs = compare(&slow, &base, 50.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "wall_s");
    }
}
