//! Shared helpers for the benchmark harness and the `figures`,
//! `gridmon-bench` and `gridmon-inspect` binaries.

pub mod profile;
pub mod suite;

use gridmon_core::figures::{self, FigureData, FigureError, SetData};
use gridmon_core::runcfg::RunConfig;
use gridmon_runner::{RunnerConfig, SweepStats};
use simcore::SimDuration;

/// A run profile for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// The paper's discipline: 2 min warm-up + 10 min window, full
    /// sweeps.
    Paper,
    /// Shorter windows and thinned sweeps (~6× faster) for smoke runs.
    Quick,
    /// Tiny windows for Criterion micro-runs.
    Bench,
}

impl Profile {
    pub fn run_config(self, seed: u64) -> RunConfig {
        match self {
            Profile::Paper => RunConfig::paper(seed),
            Profile::Quick => RunConfig::quick(seed),
            Profile::Bench => {
                let mut c = RunConfig::quick(seed);
                c.warmup = SimDuration::from_secs(20);
                c.window = SimDuration::from_secs(40);
                c
            }
        }
    }

    /// Sweep thinning factor.
    pub fn scale(self) -> f64 {
        match self {
            Profile::Paper => 1.0,
            Profile::Quick => 1.0,
            Profile::Bench => 0.2,
        }
    }
}

/// Run one experiment set under a profile through the parallel sweep
/// engine.  Results are byte-identical for every `rc.jobs` value.
pub fn run_set(
    set: u32,
    profile: Profile,
    seed: u64,
    rc: &RunnerConfig,
) -> Result<(SetData, SweepStats), FigureError> {
    gridmon_runner::run_set(set, &profile.run_config(seed), profile.scale(), rc)
}

/// All four figures of a set.
pub fn figures_of_set(data: &SetData) -> Result<Vec<FigureData>, FigureError> {
    figures::figures_of_set(data.set)?
        .iter()
        .map(|&f| figures::figure(data, f))
        .collect()
}
