//! Shared helpers for the benchmark harness and the `figures` binary.

use gridmon_core::figures::{figure, run_set, FigureData, SetData};
use gridmon_core::runcfg::RunConfig;
use simcore::SimDuration;

/// A run profile for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// The paper's discipline: 2 min warm-up + 10 min window, full
    /// sweeps.
    Paper,
    /// Shorter windows and thinned sweeps (~6× faster) for smoke runs.
    Quick,
    /// Tiny windows for Criterion micro-runs.
    Bench,
}

impl Profile {
    pub fn run_config(self, seed: u64) -> RunConfig {
        match self {
            Profile::Paper => RunConfig::paper(seed),
            Profile::Quick => RunConfig::quick(seed),
            Profile::Bench => {
                let mut c = RunConfig::quick(seed);
                c.warmup = SimDuration::from_secs(20);
                c.window = SimDuration::from_secs(40);
                c
            }
        }
    }

    /// Sweep thinning factor.
    pub fn scale(self) -> f64 {
        match self {
            Profile::Paper => 1.0,
            Profile::Quick => 1.0,
            Profile::Bench => 0.2,
        }
    }
}

/// Run one experiment set under a profile, printing progress to stderr.
pub fn run_set_with_progress(set: u32, profile: Profile, seed: u64) -> SetData {
    let cfg = profile.run_config(seed);
    let mut progress = |label: &str, x: f64| {
        eprintln!("  [set {set}] {label} @ x={x}");
    };
    run_set(set, &cfg, profile.scale(), Some(&mut progress))
}

/// All four figures of a set.
pub fn figures_of_set(data: &SetData) -> Vec<FigureData> {
    let figs: [u32; 4] = match data.set {
        1 => [5, 6, 7, 8],
        2 => [9, 10, 11, 12],
        3 => [13, 14, 15, 16],
        4 => [17, 18, 19, 20],
        _ => panic!("sets are 1..=4"),
    };
    figs.iter().map(|&f| figure(data, f)).collect()
}
