//! gridmon-bench — the continuous benchmark suite and perf gate.
//!
//! ```text
//! gridmon-bench [--label L] [--seed N] [--jobs N] [--sets LIST]
//!               [--out PATH] [--compare PATH]
//!               [--baseline PATH] [--tolerance PCT] [--quiet]
//!
//! --label L      report label; the default output file is
//!                BENCH_<L>.json (default label: 0).
//! --seed N       base seed for the pinned matrix (default 20030622).
//! --jobs N       worker threads; 0 = one per available hardware
//!                thread, the default — the suite benchmarks the
//!                machine as the sweeps would actually use it.
//! --sets LIST    comma-separated experiment sets (default
//!                1,2,3,4,5,6).
//! --out PATH     where to write the report (default BENCH_<L>.json).
//! --compare PATH gate an existing report instead of running the
//!                matrix (PATH is the "current" side; nothing is run
//!                or written).
//! --baseline P   compare against baseline report P after the run; the
//!                process exits 1 if any entry regresses beyond the
//!                tolerance.
//! --tolerance T  gate tolerance in percent (default 25).
//! --quiet        suppress per-point progress lines.
//! ```
//!
//! Cold entries pin simulator throughput (sim-events per wall second);
//! warm entries pin the result-cache path's wall time.  Event counts
//! are deterministic; wall numbers are machine-dependent, so gate
//! against baselines from the same hardware class and keep the
//! tolerance loose.
//!
//! Built with `--features alloc-profile`, every entry additionally
//! carries `allocs` / `peak_bytes` / `allocs_per_event` from the
//! counting global allocator, and the gate also fails cold entries
//! whose allocations per event grow beyond the tolerance.

use gbench::suite::{compare, render_regressions, run_matrix, BenchReport, BENCH_SETS};
use std::path::PathBuf;

fn main() {
    let mut label = "0".to_string();
    let mut seed = 20030622u64;
    let mut jobs = 0usize;
    let mut sets: Vec<u32> = BENCH_SETS.to_vec();
    let mut out: Option<PathBuf> = None;
    let mut compare_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut tolerance = 25.0f64;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = args.next().unwrap_or_else(|| die("--label needs a value")),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--jobs" | "-j" => {
                jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs an integer (0 = all cores)"));
            }
            "--sets" => {
                let list = args.next().unwrap_or_else(|| die("--sets needs a list"));
                sets = list
                    .split(',')
                    .map(|s| {
                        let n = s
                            .trim()
                            .parse()
                            .unwrap_or_else(|_| die(&format!("bad set {s:?}")));
                        if !(1..=6).contains(&n) {
                            die(&format!("no experiment set {n}"));
                        }
                        n
                    })
                    .collect();
            }
            "--out" => {
                out = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--out needs a path")),
                ))
            }
            "--compare" => {
                compare_path = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--compare needs a path")),
                ));
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--baseline needs a path")),
                ));
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--tolerance needs a percentage"));
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: gridmon-bench [--label L] [--seed N] [--jobs N] [--sets LIST] \
                     [--out PATH] [--compare PATH] [--baseline PATH] [--tolerance PCT] [--quiet]"
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    let current = match &compare_path {
        Some(path) => read_report(path),
        None => {
            let resolved = gridmon_runner::pool::resolve_workers(jobs);
            eprintln!("== benchmark matrix: sets {sets:?}, seed {seed}, {resolved} worker(s) ==",);
            let scratch = std::env::temp_dir().join(format!(
                "gridmon-bench-{}-{}",
                std::process::id(),
                label
            ));
            let _ = std::fs::remove_dir_all(&scratch);
            let entries = run_matrix(&sets, seed, jobs, &scratch, quiet)
                .unwrap_or_else(|e| die(&e.to_string()));
            let _ = std::fs::remove_dir_all(&scratch);
            let report = BenchReport {
                label: label.clone(),
                seed,
                jobs: resolved,
                entries,
            };
            let path = out.unwrap_or_else(|| PathBuf::from(format!("BENCH_{label}.json")));
            std::fs::write(&path, report.to_json())
                .unwrap_or_else(|e| die(&format!("write {}: {e}", path.display())));
            eprintln!("wrote {}", path.display());
            report
        }
    };
    print!("{}", current.render());

    if let Some(path) = baseline_path {
        let baseline = read_report(&path);
        let regs = compare(&current, &baseline, tolerance);
        print!("{}", render_regressions(&regs, tolerance));
        if !regs.is_empty() {
            std::process::exit(1);
        }
    }
}

fn read_report(path: &std::path::Path) -> BenchReport {
    let doc = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("read {}: {e}", path.display())));
    BenchReport::from_json(&doc).unwrap_or_else(|e| die(&format!("{}: {e}", path.display())))
}

fn die(msg: &str) -> ! {
    eprintln!("gridmon-bench: {msg}");
    std::process::exit(2);
}
