//! gridmon-inspect — summarize a gridmon Chrome-trace JSON file.
//!
//! ```text
//! gridmon-inspect [--self-check] [--profile RUN_DIR] [FILE]
//! ```
//!
//! FILE is a `<point>.trace.json` written by `figures --trace` (it
//! defaults to the committed golden fixture in
//! `crates/bench/fixtures/`).  The summary shows, for the measurement
//! window the trace covers: the per-phase latency breakdown of the
//! completed query spans, the top queues by time-weighted depth, and
//! every drop/refusal cause with counts.
//!
//! `--profile RUN_DIR` instead renders the harness self-profile a
//! `figures --perf` run wrote to `RUN_DIR/perf.json`: the run's phase
//! breakdown together with the per-point perf records (wall vs
//! simulated time, engine events, sim-events/s, worker and cache
//! attribution), cache traffic and pool utilization.  RUN_DIR may also
//! be the path of a perf.json itself.
//!
//! `--self-check` additionally validates the trace's internal
//! accounting: the per-phase means must sum to the span-level mean
//! response time within 1 %, and that span-level mean must agree with
//! the response time the figure pipeline reported for the same point
//! (carried in the trace metadata) within 1 %.  The process exits
//! non-zero on any violation, which makes it usable as a CI gate on
//! the golden fixture.

use gtrace::inspect::{render, self_check, summarize};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/golden_trace.json");

fn main() {
    let mut check = false;
    let mut file: Option<String> = None;
    let mut profile_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--self-check" => check = true,
            "--profile" => {
                profile_dir = Some(
                    args.next()
                        .unwrap_or_else(|| die("--profile needs a RUN_DIR or perf.json path")),
                );
            }
            "--help" | "-h" => {
                eprintln!("usage: gridmon-inspect [--self-check] [--profile RUN_DIR] [FILE]");
                return;
            }
            f if !f.starts_with('-') => {
                if file.replace(f.to_string()).is_some() {
                    die("expected at most one FILE");
                }
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    if let Some(dir) = profile_dir {
        let mut path = std::path::PathBuf::from(&dir);
        if path.is_dir() {
            path = path.join("perf.json");
        }
        let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            die(&format!(
                "read {}: {e} (run figures --perf?)",
                path.display()
            ))
        });
        let text = gbench::profile::render_perf(&doc).unwrap_or_else(|e| die(&e));
        print!("{text}");
        return;
    }
    let path = file.unwrap_or_else(|| GOLDEN.to_string());
    let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let summary = summarize(&doc).unwrap_or_else(|e| die(&e));
    print!("{}", render(&summary));
    if check {
        match self_check(&summary) {
            Ok(()) => println!("\nself-check: OK (phase sum and reported mean agree within 1%)"),
            Err(e) => die(&format!("self-check FAILED: {e}")),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("gridmon-inspect: {msg}");
    std::process::exit(2);
}
