//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [--profile paper|quick|bench] [--seed N] [--out DIR] [TARGET...]
//!
//! TARGET:  table1 | set1..set4 | fig5..fig20 | ext | all   (default: all)
//!
//! `ext` runs the future-work extension studies (WAN sweep, hierarchy
//! vs flat aggregation, aggregate-vs-direct, open-loop arrivals,
//! composite producer).
//! ```
//!
//! For every requested figure this prints the aligned data table and an
//! ASCII chart, and writes `DIR/figNN.csv` (default `results/`).

use gbench::{figures_of_set, run_set_with_progress, Profile};
use gridmon_core::figures::set_of_figure;
use gridmon_core::mapping::render_table1;
use gridmon_core::report::{ascii_chart, csv, text_table};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn main() {
    let mut profile = Profile::Paper;
    let mut seed = 20030622u64; // HPDC'03, Seattle
    let mut out_dir = PathBuf::from("results");
    let mut targets: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--profile" => {
                profile = match args.next().as_deref() {
                    Some("paper") => Profile::Paper,
                    Some("quick") => Profile::Quick,
                    Some("bench") => Profile::Bench,
                    other => die(&format!("unknown profile {other:?}")),
                };
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a dir")));
            }
            "--help" | "-h" => {
                eprintln!("usage: figures [--profile paper|quick|bench] [--seed N] [--out DIR] [table1|setN|figN|all]...");
                return;
            }
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".into());
    }

    // Resolve targets into: table1? + the sets to run.
    let mut want_ext = false;
    let mut want_table1 = false;
    let mut sets: BTreeSet<u32> = BTreeSet::new();
    let mut only_figs: BTreeSet<u32> = BTreeSet::new();
    for t in &targets {
        match t.as_str() {
            "all" => {
                want_table1 = true;
                sets.extend([1, 2, 3, 4]);
            }
            "table1" => want_table1 = true,
            "ext" => want_ext = true,
            s if s.starts_with("set") => {
                let n: u32 = s[3..].parse().unwrap_or_else(|_| die(&format!("bad target {s}")));
                if !(1..=4).contains(&n) {
                    die(&format!("no such set {n}"));
                }
                sets.insert(n);
            }
            f if f.starts_with("fig") => {
                let n: u32 = f[3..].parse().unwrap_or_else(|_| die(&format!("bad target {f}")));
                let set = set_of_figure(n).unwrap_or_else(|| die(&format!("no such figure {n}")));
                sets.insert(set);
                only_figs.insert(n);
            }
            other => die(&format!("unknown target {other:?}")),
        }
    }

    std::fs::create_dir_all(&out_dir).expect("create output dir");

    if want_table1 {
        println!("Table 1: Component Mapping\n");
        println!("{}", render_table1());
        std::fs::write(out_dir.join("table1.txt"), render_table1()).expect("write table1");
    }

    for &set in &sets {
        eprintln!("== running experiment set {set} ({profile:?}) ==");
        let start = std::time::Instant::now();
        let data = run_set_with_progress(set, profile, seed);
        eprintln!("== set {set} done in {:.1?} ==", start.elapsed());
        for fig in figures_of_set(&data) {
            let n: u32 = fig.id.trim_start_matches("Figure ").parse().unwrap();
            if !only_figs.is_empty() && !only_figs.contains(&n) {
                continue;
            }
            println!("{}", text_table(&fig));
            println!("{}", ascii_chart(&fig, 64, 16));
            let path = out_dir.join(format!("fig{n:02}.csv"));
            std::fs::write(&path, csv(&fig)).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }

    if want_ext {
        run_extensions(profile, seed, &out_dir);
    }
}

#[allow(clippy::too_many_lines)]
fn run_extensions(profile: Profile, seed: u64, out_dir: &std::path::Path) {
    use gridmon_core::ext;
    let cfg = profile.run_config(seed);
    let mut out = String::new();

    eprintln!("== extension: WAN study ==");
    out.push_str("Extension 1: directory server (GIIS, 100 users) across WAN qualities
");
    out.push_str(&format!(
        "{:<30} {:>10} {:>12} {:>12} {:>8} {:>8}
",
        "link", "mbps", "throughput", "resp (s)", "load1", "cpu %"
    ));
    for p in ext::wan_study(&cfg, 100) {
        out.push_str(&format!(
            "{:<30} {:>10.0} {:>12.2} {:>12.3} {:>8.2} {:>8.1}
",
            p.label, p.wan_mbps, p.m.throughput, p.m.response_time, p.m.load1, p.m.cpu_load
        ));
    }

    eprintln!("== extension: hierarchy study ==");
    let (flat, hier) = ext::hierarchy_study(&cfg, 120, 5);
    out.push_str("
Extension 2: flat vs hierarchical GIIS aggregation (120 GRIS, 10 users)
");
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>8} {:>8}
",
        "architecture", "throughput", "resp (s)", "load1", "cpu %"
    ));
    for (label, m) in [("flat (1 GIIS)", flat), ("2-level (5 branches)", hier)] {
        out.push_str(&format!(
            "{:<24} {:>12.2} {:>12.3} {:>8.2} {:>8.1}
",
            label, m.throughput, m.response_time, m.load1, m.cpu_load
        ));
    }

    eprintln!("== extension: aggregate vs direct ==");
    let (direct, via) = ext::aggregate_vs_direct(&cfg, 50);
    out.push_str("
Extension 3: same information, direct GRIS vs via the GIIS (50 users)
");
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>14}
",
        "path", "throughput", "resp (s)", "cpu%/query"
    ));
    for (label, m) in [("direct (GRIS, GSI)", direct), ("aggregate (GIIS)", via)] {
        out.push_str(&format!(
            "{:<24} {:>12.2} {:>12.3} {:>14.3}
",
            label,
            m.throughput,
            m.response_time,
            m.cpu_load / m.throughput.max(1e-9)
        ));
    }

    eprintln!("== extension: open-loop arrivals ==");
    out.push_str("
Extension 4: Poisson open-loop arrivals at the ProducerServlet
");
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12}
",
        "offered/s", "completed/s", "lost/s", "resp (s)"
    ));
    for p in ext::open_loop_study(&cfg, &[5.0, 15.0, 30.0, 60.0]) {
        out.push_str(&format!(
            "{:<12.1} {:>12.2} {:>12.2} {:>12.3}
",
            p.offered_per_sec, p.completed_per_sec, p.lost_per_sec, p.response_time
        ));
    }

    eprintln!("== extension: composite producer ==");
    out.push_str("
Extension 5: R-GMA composite Consumer/Producer (10 users, *ALL* query)
");
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>8} {:>8}
",
        "sources", "throughput", "resp (s)", "load1", "cpu %"
    ));
    for n in [2u32, 5, 10] {
        let m = ext::composite_study(&cfg, n);
        out.push_str(&format!(
            "{:<12} {:>12.2} {:>12.3} {:>8.2} {:>8.1}
",
            n, m.throughput, m.response_time, m.load1, m.cpu_load
        ));
    }

    println!("{out}");
    std::fs::write(out_dir.join("extensions.txt"), out).expect("write extensions");
}

fn die(msg: &str) -> ! {
    eprintln!("figures: {msg}");
    std::process::exit(2);
}
