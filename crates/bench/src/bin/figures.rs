//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [--profile paper|quick|bench] [--seed N] [--out DIR]
//!         [--jobs N] [--no-cache] [--only figN] [--faults PLAN]
//!         [--scenario FILE] [--trace SUBSTR] [--metrics] [--perf]
//!         [--list] [TARGET...]
//!
//! TARGET:  table1 | set1..set6 | fig5..fig28 | ext | all   (default: all)
//!
//! --jobs N    run sweep points on N worker threads (0 = all cores;
//!             default 0).  Output is byte-identical for every N.
//! --no-cache  ignore and do not write the result cache
//!             (DIR/.cache/); by default unchanged points are reused.
//! --only figN print/write only figure N of the sets that run (may be
//!             given several times; `figN` as a TARGET implies it).
//! --faults P  fault plan for the Set-5 resilience sweep:
//!             `SCENARIO[@START:HEAL]` with SCENARIO one of
//!             none|auto|churn|partition|freeze|connburst and
//!             START/HEAL fractions of the measurement window (default
//!             `auto@0.25:0.6`; `auto` picks each series' canonical
//!             scenario).  The number of faulted components is the
//!             sweep's x value.  Only set 5 injects faults; other sets
//!             ignore the flag.
//! --scenario F run a user-authored scenario spec (the declarative
//!             text format of `gridmon-scenario`, see
//!             examples/scenarios/) through the same runner, cache and
//!             pool as the built-in sets, and write
//!             `DIR/scenario-<name>.csv` with all four metrics per
//!             sweep point.  Repeatable; output is byte-identical for
//!             every --jobs value.  If the spec declares a `[faults]`
//!             section it runs under the --faults plan (default
//!             `auto@0.25:0.6`, where `auto` means the kind the spec
//!             declares); specs without one always run pristine.
//! --trace S   after the sweep, re-run every point of the selected sets
//!             whose id (`setN/<series>/x=<x>`) contains the substring S
//!             with event tracing on, and write per-point Chrome-trace
//!             JSON (`DIR/trace/<point>.trace.json`, loadable in
//!             Perfetto / chrome://tracing and readable by
//!             `gridmon-inspect`) plus raw JSONL.  Repeatable.
//! --metrics   also snapshot the metrics registry per point and write
//!             `DIR/trace/<point>.metrics.csv`.  Without --trace this
//!             covers every point of the selected sets.
//! --perf      profile the harness itself and write `DIR/perf.json`
//!             (schema gridmon-perf-v1): phase breakdown, per-point
//!             wall/sim/event records, cache traffic and pool
//!             utilization.  Render it with
//!             `gridmon-inspect --profile DIR`.  Profiling only reads
//!             engine counters after each run, so figure CSVs stay
//!             byte-identical with or without it.
//! --list      print the catalogue — every figure with its title and
//!             every `setN/<series>/x=<x>` point key the selected
//!             targets would run — and exit without running anything.
//!
//! `ext` runs the future-work extension studies (WAN sweep, hierarchy
//! vs flat aggregation, aggregate-vs-direct, open-loop arrivals,
//! composite producer).
//! ```
//!
//! For every requested figure this prints the aligned data table and an
//! ASCII chart, and writes `DIR/figNN.csv` (default `results/`).
//! Observability never changes the figures: the traced re-run uses the
//! same seeds and produces bit-identical measurements (pinned by
//! `tests/parallel_figures.rs`), so the CSVs stand whatever is traced.

use gbench::{figures_of_set, Profile};
use gfaults::{FaultSpec, Scenario};
use gridmon_core::experiments::set5;
use gridmon_core::figures::{self, enumerate_set, set_of_figure, PointSpec};
use gridmon_core::mapping::render_table1;
use gridmon_core::report::{ascii_chart, csv, text_table};
use gridmon_core::ObsMode;
use gridmon_runner::{ExtPoint, Job, JobOutput, RunnerConfig};
use gtrace::{chrome_trace, jsonl, metrics_csv, TraceMeta};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn main() {
    let mut profile = Profile::Paper;
    let mut seed = 20030622u64; // HPDC'03, Seattle
    let mut out_dir = PathBuf::from("results");
    let mut jobs = 0usize;
    let mut use_cache = true;
    let mut targets: Vec<String> = Vec::new();
    let mut only_figs: BTreeSet<u32> = BTreeSet::new();
    let mut trace_substrs: Vec<String> = Vec::new();
    let mut want_metrics = false;
    let mut want_perf = false;
    let mut want_list = false;
    let mut faults: Option<FaultSpec> = None;
    let mut scenario_files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--profile" => {
                profile = match args.next().as_deref() {
                    Some("paper") => Profile::Paper,
                    Some("quick") => Profile::Quick,
                    Some("bench") => Profile::Bench,
                    other => die(&format!("unknown profile {other:?}")),
                };
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a dir")));
            }
            "--jobs" | "-j" => {
                jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs an integer (0 = all cores)"));
            }
            "--no-cache" => use_cache = false,
            "--trace" => {
                trace_substrs.push(
                    args.next()
                        .unwrap_or_else(|| die("--trace needs a substring")),
                );
            }
            "--metrics" => want_metrics = true,
            "--perf" => want_perf = true,
            "--list" => want_list = true,
            "--faults" => {
                let plan = args.next().unwrap_or_else(|| die("--faults needs a plan"));
                faults = Some(parse_faults(&plan));
            }
            "--scenario" => {
                scenario_files.push(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--scenario needs a file")),
                ));
            }
            "--only" => {
                let f = args.next().unwrap_or_else(|| die("--only needs figN"));
                only_figs.insert(parse_fig(&f));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [--profile paper|quick|bench] [--seed N] [--out DIR] \
                     [--jobs N] [--no-cache] [--only figN] [--faults PLAN] [--scenario FILE] \
                     [--trace SUBSTR] [--metrics] [--perf] [--list] \
                     [table1|setN|figN|ext|all]..."
                );
                return;
            }
            t => targets.push(t.to_string()),
        }
    }
    // `figures --scenario FILE` alone runs just the scenario(s); the
    // built-in suite only defaults in when nothing at all was selected.
    if targets.is_empty() && scenario_files.is_empty() {
        targets.push("all".into());
    }

    // Resolve targets into: table1? + ext? + the sets to run.
    let mut want_ext = false;
    let mut want_table1 = false;
    let mut sets: BTreeSet<u32> = BTreeSet::new();
    for t in &targets {
        match t.as_str() {
            "all" => {
                want_table1 = true;
                sets.extend([1, 2, 3, 4, 5, 6]);
            }
            "table1" => want_table1 = true,
            "ext" => want_ext = true,
            s if s.starts_with("set") => {
                let n: u32 = s[3..]
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad target {s}")));
                if !(1..=6).contains(&n) {
                    die(&format!(
                        "no experiment set {n}: sets 1-4 are the paper's, \
                         5 is resilience, 6 is federation"
                    ));
                }
                sets.insert(n);
            }
            f if f.starts_with("fig") => {
                let n = parse_fig(f);
                sets.insert(set_of_figure(n).expect("parse_fig validated the range"));
                only_figs.insert(n);
            }
            other => die(&format!("unknown target {other:?}")),
        }
    }
    // `--only fig9` with no explicit set target also selects set 2.
    for &n in &only_figs {
        sets.insert(set_of_figure(n).expect("parse_fig validated the range"));
    }

    // The Set-5 resilience sweep injects the requested (or canonical)
    // fault plan; every other set runs pristine whatever the flag says,
    // so fig05-fig20 stay byte-identical.
    let spec_for = |set: u32| -> FaultSpec {
        if set == 5 {
            faults.unwrap_or_else(set5::default_spec)
        } else {
            FaultSpec::NONE
        }
    };

    // Parse user-authored scenarios up front so a typo in the file dies
    // before any sweep has burned CPU (and so `--list` can show them).
    let scenarios: Vec<(String, gscenario::ScenarioSpec)> = scenario_files
        .iter()
        .map(|path| {
            let origin = path.display().to_string();
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("{origin}: {e}")));
            let spec = gscenario::parse(&text).unwrap_or_else(|e| die(&format!("{origin}: {e}")));
            spec.validate()
                .unwrap_or_else(|e| die(&format!("{origin}: {e}")));
            (origin, spec)
        })
        .collect();

    if want_list {
        list_catalogue(&sets, &only_figs, want_table1, want_ext, profile);
        for (_, spec) in &scenarios {
            for &x in &spec.x_values {
                println!("  scenario/{}/x={x}", spec.name);
            }
        }
        return;
    }

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let rc = RunnerConfig {
        jobs,
        cache_dir: use_cache.then(|| out_dir.join(".cache")),
        quiet: false,
    };

    if want_table1 {
        println!("Table 1: Component Mapping\n");
        println!("{}", render_table1());
        std::fs::write(out_dir.join("table1.txt"), render_table1()).expect("write table1");
    }

    // Self-profiling sink: collects across every sweep of this
    // invocation; written as one perf.json at the end.
    let mut perf_sink = want_perf.then(gperf::PerfSink::new);

    for &set in &sets {
        eprintln!(
            "== running experiment set {set} ({profile:?}, jobs={}) ==",
            if rc.jobs == 0 {
                "auto".to_string()
            } else {
                rc.jobs.to_string()
            }
        );
        let mut cfg = profile.run_config(seed);
        cfg.faults = spec_for(set);
        let (data, stats) =
            gridmon_runner::run_set_profiled(set, &cfg, profile.scale(), &rc, perf_sink.as_mut())
                .unwrap_or_else(|e| die(&e.to_string()));
        eprintln!(
            "== set {set} done in {:.1?} ({} points: {} executed, {} cached) ==",
            stats.wall, stats.total, stats.executed, stats.cache_hits
        );
        for fig in figures_of_set(&data).unwrap_or_else(|e| die(&e.to_string())) {
            let n: u32 = fig.id.trim_start_matches("Figure ").parse().unwrap();
            if !only_figs.is_empty() && !only_figs.contains(&n) {
                continue;
            }
            println!("{}", text_table(&fig));
            println!("{}", ascii_chart(&fig, 64, 16));
            let path = out_dir.join(format!("fig{n:02}.csv"));
            std::fs::write(&path, csv(&fig)).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }

    if !scenarios.is_empty() {
        run_scenarios(&scenarios, profile, seed, &out_dir, &rc, spec_for(5));
    }

    if want_ext {
        run_extensions(profile, seed, &out_dir, &rc, perf_sink.as_mut());
    }

    if !trace_substrs.is_empty() || want_metrics {
        if sets.is_empty() {
            die("--trace/--metrics need at least one set/figure target");
        }
        run_observability(
            &sets,
            profile,
            seed,
            &rc,
            &out_dir,
            &trace_substrs,
            want_metrics,
            spec_for(5),
            perf_sink.as_mut(),
        );
    }

    if let Some(sink) = &perf_sink {
        let path = out_dir.join("perf.json");
        std::fs::write(&path, gperf::report::perf_json(sink)).expect("write perf.json");
        eprintln!("wrote {}", path.display());
    }
}

/// `--list`: the catalogue of what the selected targets cover — figure
/// numbers with their titles, then every point key the sweep would run
/// (`setN/<series>/x=<x>`, the ids `--trace` matches against).
fn list_catalogue(
    sets: &BTreeSet<u32>,
    only_figs: &BTreeSet<u32>,
    want_table1: bool,
    want_ext: bool,
    profile: Profile,
) {
    // Writes go through one handle with errors ignored: `--list | head`
    // must not die of a broken pipe.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if want_table1 {
        let _ = writeln!(out, "table1  Component Mapping");
    }
    if want_ext {
        let _ = writeln!(out, "ext     Future-work extension studies");
    }
    for &set in sets {
        for fig in figures::figures_of_set(set).unwrap_or_else(|e| die(&e.to_string())) {
            if !only_figs.is_empty() && !only_figs.contains(&fig) {
                continue;
            }
            let title = figures::figure_title(fig).expect("figures_of_set yields known figures");
            let _ = writeln!(out, "fig{fig:02}   {title}");
        }
        for spec in enumerate_set(set, profile.scale()).unwrap_or_else(|e| die(&e.to_string())) {
            let _ = writeln!(out, "  {}", spec.key());
        }
    }
}

/// Run every user-authored scenario through the same runner/cache/pool
/// stack as the built-in sets and write `DIR/scenario-<name>.csv` with
/// all the measured metrics per sweep point.  Points come back in
/// `x_values` order whatever `--jobs` is, so the CSV is byte-identical
/// for every worker count.
fn run_scenarios(
    scenarios: &[(String, gscenario::ScenarioSpec)],
    profile: Profile,
    seed: u64,
    out_dir: &std::path::Path,
    rc: &RunnerConfig,
    fault_spec: FaultSpec,
) {
    for (origin, spec) in scenarios {
        eprintln!(
            "== running scenario \"{}\" from {origin} ({} points) ==",
            spec.name,
            spec.x_values.len()
        );
        let mut cfg = profile.run_config(seed);
        // The runtime fault plan only matters to specs that declare a
        // [faults] section (`auto` resolves to the declared kind);
        // keeping it out of the others' configs keeps their cache
        // digests stable whatever --faults says.
        if spec.faults.is_some() {
            cfg.faults = fault_spec;
        }
        let (data, stats) = gridmon_runner::run_scenario(spec, &cfg, rc)
            .unwrap_or_else(|e| die(&format!("{origin}: {e}")));
        eprintln!(
            "== scenario \"{}\" done in {:.1?} ({} points: {} executed, {} cached) ==",
            spec.name, stats.wall, stats.total, stats.executed, stats.cache_hits
        );

        let mut table = format!(
            "Scenario: {} (fingerprint {})\n",
            spec.name,
            spec.fingerprint()
        );
        table.push_str(&format!(
            "{:>8} {:>12} {:>12} {:>8} {:>8} {:>8} {:>12} {:>12}\n",
            "x", "throughput", "resp (s)", "load1", "cpu %", "avail", "stale (s)", "recov (s)"
        ));
        let mut csv = String::from(
            "x,throughput,response_s,load1,cpu_pct,availability,staleness_s,recovery_s,\
             completions,refused\n",
        );
        for m in &data {
            table.push_str(&format!(
                "{:>8.0} {:>12.2} {:>12.3} {:>8.2} {:>8.1} {:>8.3} {:>12.3} {:>12.3}\n",
                m.x,
                m.throughput,
                m.response_time,
                m.load1,
                m.cpu_load,
                m.availability,
                m.staleness_s,
                m.recovery_s
            ));
            csv.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{},{}\n",
                m.x,
                m.throughput,
                m.response_time,
                m.load1,
                m.cpu_load,
                m.availability,
                m.staleness_s,
                m.recovery_s,
                m.completions,
                m.refused
            ));
        }
        println!("{table}");
        let path = out_dir.join(format!("scenario-{}.csv", slug(&spec.name)));
        std::fs::write(&path, csv).expect("write scenario csv");
        eprintln!("wrote {}", path.display());
    }
}

/// Parse the `--faults` plan: `SCENARIO[@START:HEAL]`, fractions of the
/// measurement window.  The faulted-component count is not part of the
/// plan — the Set-5 sweep faults each point's x components.
fn parse_faults(plan: &str) -> FaultSpec {
    let (name, fracs) = match plan.split_once('@') {
        Some((n, f)) => (n, Some(f)),
        None => (plan, None),
    };
    let scenario = Scenario::parse(name).unwrap_or_else(|| {
        die(&format!(
            "unknown fault scenario {name:?} (none|auto|churn|partition|freeze|connburst)"
        ))
    });
    if scenario == Scenario::None {
        return FaultSpec::NONE;
    }
    let mut spec = set5::default_spec();
    spec.scenario = scenario;
    if let Some(fracs) = fracs {
        let (s, h) = fracs
            .split_once(':')
            .unwrap_or_else(|| die("--faults fractions look like START:HEAL, e.g. 0.25:0.6"));
        spec.start_frac = parse_frac(s);
        spec.heal_frac = parse_frac(h);
        if spec.heal_frac <= spec.start_frac {
            die("--faults HEAL must come after START");
        }
    }
    spec
}

fn parse_frac(s: &str) -> f64 {
    let v: f64 = s
        .parse()
        .unwrap_or_else(|_| die(&format!("bad window fraction {s:?}")));
    if !(0.0..=1.0).contains(&v) {
        die(&format!("window fraction {v} outside 0..=1"));
    }
    v
}

/// The observability pass: re-run the matching points with tracing
/// and/or metrics enabled and export the artifacts under `DIR/trace/`.
/// Points are re-executed (never served from the result cache) because
/// events and metric streams are not part of the cached measurement;
/// the measurements themselves still come out bit-identical.
#[allow(clippy::too_many_arguments)]
fn run_observability(
    sets: &BTreeSet<u32>,
    profile: Profile,
    seed: u64,
    rc: &RunnerConfig,
    out_dir: &std::path::Path,
    trace_substrs: &[String],
    want_metrics: bool,
    fault_spec: FaultSpec,
    perf_sink: Option<&mut gperf::PerfSink>,
) {
    let mut specs: Vec<PointSpec> = Vec::new();
    for &set in sets {
        specs.extend(enumerate_set(set, profile.scale()).unwrap_or_else(|e| die(&e.to_string())));
    }
    if !trace_substrs.is_empty() {
        specs.retain(|s| {
            let k = s.key();
            trace_substrs.iter().any(|t| k.contains(t.as_str()))
        });
        if specs.is_empty() {
            die("--trace matched no point id; ids look like \"set1/MDS GRIS (cache)/x=10\"");
        }
    }
    let tracing = !trace_substrs.is_empty();
    let mut cfg = profile.run_config(seed);
    cfg.obs = ObsMode {
        trace: tracing,
        metrics: want_metrics,
    };
    // Inert outside set 5 (only the resilience experiments build a
    // fault plan from it), so a mixed selection is safe.
    cfg.faults = fault_spec;

    let obs_dir = out_dir.join("trace");
    std::fs::create_dir_all(&obs_dir).expect("create trace dir");
    eprintln!(
        "== observability pass: {} point(s), {} ==",
        specs.len(),
        cfg.obs.fingerprint()
    );
    let observed = gridmon_runner::run_points_observed_profiled(&specs, &cfg, rc, perf_sink);

    for (spec, op) in specs.iter().zip(&observed) {
        let slug = slug(&spec.key());
        if tracing {
            let meta = TraceMeta {
                key: spec.key(),
                x: op.m.x,
                seed: spec.derived_seed(seed),
                window_start: cfg.window_start(),
                window_end: cfg.window_end(),
                mean_response_time_us: op.m.response_time * 1e6,
                completions: op.m.completions,
                refused: op.m.refused,
                services: op.services.clone(),
                nodes: op.nodes.clone(),
            };
            let path = obs_dir.join(format!("{slug}.trace.json"));
            std::fs::write(
                &path,
                chrome_trace(&meta, &op.report.events, op.report.dropped),
            )
            .expect("write chrome trace");
            eprintln!("wrote {}", path.display());
            let path = obs_dir.join(format!("{slug}.jsonl"));
            std::fs::write(&path, jsonl(&op.report.events)).expect("write jsonl");
            eprintln!("wrote {}", path.display());
        }
        if want_metrics {
            let path = obs_dir.join(format!("{slug}.metrics.csv"));
            std::fs::write(&path, metrics_csv(&op.report.metrics)).expect("write metrics csv");
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Filesystem-safe name for a point id: runs of non-`[a-z0-9.=]`
/// characters collapse to one `-`.
fn slug(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    let mut dash = false;
    for c in key.chars() {
        if c.is_ascii_alphanumeric() || c == '.' || c == '=' {
            out.push(c.to_ascii_lowercase());
            dash = false;
        } else if !dash && !out.is_empty() {
            out.push('-');
            dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

fn parse_fig(arg: &str) -> u32 {
    let n: u32 = arg
        .trim_start_matches("fig")
        .parse()
        .unwrap_or_else(|_| die(&format!("bad figure {arg:?} (expected figN)")));
    if set_of_figure(n).is_none() {
        die(&format!(
            "no figure {n}: figures 5-20 are the paper's, 21-24 are resilience, \
             25-28 are federation"
        ));
    }
    n
}

/// The extension-study suite as one pooled job list: the WAN cases,
/// hierarchy comparison, aggregate-vs-direct pair, open-loop rates and
/// composite sizes all schedule together, so `--jobs N` speeds up the
/// whole section, not each study in turn.
const OPEN_LOOP_RATES: [f64; 4] = [5.0, 15.0, 30.0, 60.0];
const COMPOSITE_SOURCES: [u32; 3] = [2, 5, 10];

fn run_extensions(
    profile: Profile,
    seed: u64,
    out_dir: &std::path::Path,
    rc: &RunnerConfig,
    perf_sink: Option<&mut gperf::PerfSink>,
) {
    use gridmon_core::ext::WAN_CASES;
    let cfg = profile.run_config(seed);

    let mut ext_jobs: Vec<Job> = Vec::new();
    for case in 0..WAN_CASES.len() {
        ext_jobs.push(Job::Ext(ExtPoint::Wan { users: 100, case }));
    }
    ext_jobs.push(Job::Ext(ExtPoint::HierFlat { n: 120 }));
    ext_jobs.push(Job::Ext(ExtPoint::HierTree {
        n: 120,
        branches: 5,
    }));
    ext_jobs.push(Job::Ext(ExtPoint::AggDirect { users: 50 }));
    ext_jobs.push(Job::Ext(ExtPoint::AggViaGiis { users: 50 }));
    for rate in OPEN_LOOP_RATES {
        ext_jobs.push(Job::Ext(ExtPoint::OpenLoop { rate }));
    }
    for sources in COMPOSITE_SOURCES {
        ext_jobs.push(Job::Ext(ExtPoint::Composite { sources }));
    }

    eprintln!(
        "== running extension studies ({} points) ==",
        ext_jobs.len()
    );
    let (outputs, stats) = gridmon_runner::run_jobs_profiled(&ext_jobs, &cfg, rc, perf_sink);
    eprintln!(
        "== extensions done in {:.1?} ({} executed, {} cached) ==",
        stats.wall, stats.executed, stats.cache_hits
    );

    let measurement = |o: &JobOutput| o.measurement().expect("measurement-kind job");
    let mut cursor = outputs.iter();
    let mut out = String::new();

    out.push_str("Extension 1: directory server (GIIS, 100 users) across WAN qualities\n");
    out.push_str(&format!(
        "{:<30} {:>10} {:>12} {:>12} {:>8} {:>8}\n",
        "link", "mbps", "throughput", "resp (s)", "load1", "cpu %"
    ));
    for _ in 0..WAN_CASES.len() {
        let JobOutput::Wan(p) = cursor.next().unwrap() else {
            unreachable!("wan jobs yield wan points")
        };
        out.push_str(&format!(
            "{:<30} {:>10.0} {:>12.2} {:>12.3} {:>8.2} {:>8.1}\n",
            p.label, p.wan_mbps, p.m.throughput, p.m.response_time, p.m.load1, p.m.cpu_load
        ));
    }

    let flat = measurement(cursor.next().unwrap());
    let hier = measurement(cursor.next().unwrap());
    out.push_str("\nExtension 2: flat vs hierarchical GIIS aggregation (120 GRIS, 10 users)\n");
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>8} {:>8}\n",
        "architecture", "throughput", "resp (s)", "load1", "cpu %"
    ));
    for (label, m) in [("flat (1 GIIS)", flat), ("2-level (5 branches)", hier)] {
        out.push_str(&format!(
            "{:<24} {:>12.2} {:>12.3} {:>8.2} {:>8.1}\n",
            label, m.throughput, m.response_time, m.load1, m.cpu_load
        ));
    }

    let direct = measurement(cursor.next().unwrap());
    let via = measurement(cursor.next().unwrap());
    out.push_str("\nExtension 3: same information, direct GRIS vs via the GIIS (50 users)\n");
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>14}\n",
        "path", "throughput", "resp (s)", "cpu%/query"
    ));
    for (label, m) in [("direct (GRIS, GSI)", direct), ("aggregate (GIIS)", via)] {
        out.push_str(&format!(
            "{:<24} {:>12.2} {:>12.3} {:>14.3}\n",
            label,
            m.throughput,
            m.response_time,
            m.cpu_load / m.throughput.max(1e-9)
        ));
    }

    out.push_str("\nExtension 4: Poisson open-loop arrivals at the ProducerServlet\n");
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12}\n",
        "offered/s", "completed/s", "lost/s", "resp (s)"
    ));
    for _ in OPEN_LOOP_RATES {
        let JobOutput::OpenLoop(p) = cursor.next().unwrap() else {
            unreachable!("open-loop jobs yield open-loop points")
        };
        out.push_str(&format!(
            "{:<12.1} {:>12.2} {:>12.2} {:>12.3}\n",
            p.offered_per_sec, p.completed_per_sec, p.lost_per_sec, p.response_time
        ));
    }

    out.push_str("\nExtension 5: R-GMA composite Consumer/Producer (10 users, *ALL* query)\n");
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>8} {:>8}\n",
        "sources", "throughput", "resp (s)", "load1", "cpu %"
    ));
    for n in COMPOSITE_SOURCES {
        let m = measurement(cursor.next().unwrap());
        out.push_str(&format!(
            "{:<12} {:>12.2} {:>12.3} {:>8.2} {:>8.1}\n",
            n, m.throughput, m.response_time, m.load1, m.cpu_load
        ));
    }

    println!("{out}");
    std::fs::write(out_dir.join("extensions.txt"), out).expect("write extensions");
}

fn die(msg: &str) -> ! {
    eprintln!("figures: {msg}");
    std::process::exit(2);
}
