//! Rendering for `perf.json` harness profiles.
//!
//! `figures --perf` writes `RUN_DIR/perf.json`
//! (schema `gridmon-perf-v1`, see `gperf::report`);
//! `gridmon-inspect --profile RUN_DIR` parses it back here and prints
//! the phase breakdown, cache/pool summary and per-point records.

use gtrace::json::{parse, Val};

/// Render a `gridmon-perf-v1` document as console tables.
pub fn render_perf(doc: &str) -> Result<String, String> {
    let v = parse(doc)?;
    let schema = v.get("schema").and_then(Val::as_str).unwrap_or("");
    if schema != gperf::report::PERF_SCHEMA {
        return Err(format!(
            "unsupported profile schema {schema:?} (expected {:?})",
            gperf::report::PERF_SCHEMA
        ));
    }
    let mut out = String::new();

    out.push_str("phases\n");
    let phases = v.get("phases").and_then(Val::as_arr).unwrap_or(&[]);
    let total: f64 = phases
        .iter()
        .filter_map(|p| p.get("wall_s").and_then(Val::as_f64))
        .sum();
    for p in phases {
        let name = p.get("name").and_then(Val::as_str).unwrap_or("?");
        let wall = p.get("wall_s").and_then(Val::as_f64).unwrap_or(0.0);
        let share = if total > 0.0 {
            wall / total * 100.0
        } else {
            0.0
        };
        out.push_str(&format!("  {name:<14} {wall:>10.4}s  {share:>5.1}%\n"));
    }

    if let Some(c) = v.get("cache") {
        let f = |k| c.get(k).and_then(Val::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "\ncache: {} hit(s), {} miss(es), {:.1} KiB read, {:.1} KiB written\n",
            f("hits"),
            f("misses"),
            f("bytes_read") / 1024.0,
            f("bytes_written") / 1024.0
        ));
    }

    if let Some(p) = v.get("pool") {
        let workers = p.get("workers").and_then(Val::as_f64).unwrap_or(0.0);
        let wall = p.get("wall_s").and_then(Val::as_f64).unwrap_or(0.0);
        let share = p.get("busy_share").and_then(Val::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "pool:  {workers} worker(s), {wall:.4}s execution wall, {:.1}% busy\n",
            share * 100.0
        ));
        if let (Some(busy), Some(jobs)) = (
            p.get("busy_s").and_then(Val::as_arr),
            p.get("jobs").and_then(Val::as_arr),
        ) {
            for (w, (b, j)) in busy.iter().zip(jobs).enumerate() {
                out.push_str(&format!(
                    "  worker {w}: {} point(s), {:.4}s busy\n",
                    j.as_f64().unwrap_or(0.0),
                    b.as_f64().unwrap_or(0.0)
                ));
            }
        }
    }

    match v.get("alloc") {
        Some(Val::Null) | None => {}
        Some(a) => {
            let f = |k| a.get(k).and_then(Val::as_f64).unwrap_or(0.0);
            out.push_str(&format!(
                "alloc: {} allocation(s), {:.1} MiB total, {:.1} MiB peak in use\n",
                f("allocs"),
                f("bytes_total") / (1024.0 * 1024.0),
                f("peak") / (1024.0 * 1024.0)
            ));
        }
    }

    if let Some(t) = v.get("totals") {
        let f = |k| t.get(k).and_then(Val::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "total: {} executed, {} cached, {:.4}s execution wall, {:.0} sim-events/s\n",
            f("executed"),
            f("cached"),
            f("exec_wall_s"),
            f("events_per_sec")
        ));
    }

    let points = v.get("points").and_then(Val::as_arr).unwrap_or(&[]);
    if !points.is_empty() {
        out.push_str(&format!(
            "\n{:<44} {:>3} {:>6} {:>10} {:>9} {:>10} {:>12}\n",
            "point", "wkr", "src", "wall (s)", "sim (s)", "events", "events/s"
        ));
        for p in points {
            let f = |k| p.get(k).and_then(Val::as_f64).unwrap_or(0.0);
            let cached = p.get("cached").and_then(Val::as_bool).unwrap_or(false);
            out.push_str(&format!(
                "{:<44} {:>3} {:>6} {:>10.4} {:>9.1} {:>10} {:>12.0}\n",
                p.get("key").and_then(Val::as_str).unwrap_or("?"),
                f("worker"),
                if cached { "cache" } else { "exec" },
                f("wall_s"),
                f("sim_s"),
                f("events"),
                f("events_per_sec")
            ));
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gperf::{PerfSink, PointSample, SimCounters};
    use std::time::Duration;

    #[test]
    fn renders_a_real_sink_document() {
        let mut sink = PerfSink::new();
        sink.phases.add("execute", Duration::from_millis(20));
        sink.record_pool_run(2, Duration::from_millis(20));
        sink.record_miss();
        sink.record_executed(
            "set1/MDS GRIS (cache)/x=10".into(),
            1,
            PointSample {
                wall: Duration::from_millis(20),
                sim: SimCounters {
                    sim_us: 60_000_000,
                    events: 4000,
                    popped: 4100,
                    advances: 0,
                    engine_runs: 1,
                },
            },
        );
        sink.record_cached("set1/MDS GRIS (cache)/x=20".into(), Duration::ZERO, 256);
        let doc = gperf::report::perf_json(&sink);
        let text = render_perf(&doc).unwrap();
        assert!(text.contains("phases"));
        assert!(text.contains("execute"));
        assert!(text.contains("set1/MDS GRIS (cache)/x=10"));
        assert!(text.contains("cache: 1 hit(s), 1 miss(es)"));
        assert!(text.contains("pool:  2 worker(s)"));
        assert!(text.contains("exec"));
        assert!(text.contains("cache"));
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(render_perf("{\"schema\": \"other\"}")
            .unwrap_err()
            .contains("schema"));
        assert!(render_perf("not json").is_err());
    }
}
