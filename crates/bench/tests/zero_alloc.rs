//! Pinned steady-state allocation behaviour of the event kernel.
//!
//! The closure pool exists so that the schedule/fire loop — the inner
//! loop of every experiment — performs **zero** heap allocations once
//! warm.  This test pins that property under the counting allocator:
//! it warms a set-1-shaped world (periodic per-host probe events that
//! reschedule themselves, like the GRIS cache refreshers), then runs
//! thousands of further events and asserts the process allocation
//! counter did not move at all.
//!
//! Runs only with `--features alloc-profile` (which compiles the
//! counting global allocator in); without it the test is a no-op so
//! plain `cargo test` stays green.

use simcore::{Engine, SimDuration, SimTime};

/// The measured world: per-host counters bumped by self-rescheduling
/// probe events, the shape of the set-1 MDS refresh loop.
struct World {
    fired: Vec<u64>,
}

fn arm(eng: &mut Engine<World>, host: usize, period: SimDuration) {
    eng.schedule_in(period, move |w: &mut World, e: &mut Engine<World>| {
        w.fired[host] += 1;
        arm(e, host, period);
    });
}

#[test]
fn steady_state_event_loop_allocates_nothing() {
    let Some(_) = gperf::alloc::stats() else {
        eprintln!("count-alloc not compiled in; skipping (run with --features alloc-profile)");
        return;
    };

    const HOSTS: usize = 50;
    let mut world = World {
        fired: vec![0; HOSTS],
    };
    let mut eng: Engine<World> = Engine::new(20030622);
    for h in 0..HOSTS {
        // Co-prime-ish periods so the heap sees interleaved orderings,
        // not one synchronized batch.
        arm(&mut eng, h, SimDuration::from_micros(900 + 7 * h as u64));
    }

    // Warm-up: size the heap, the slot table and the closure pool.
    eng.run_until(&mut world, SimTime::from_secs_f64(0.5));
    let fired_warm: u64 = world.fired.iter().sum();
    assert!(fired_warm > 10_000, "warm-up fired {fired_warm}");

    // Steady state: every event must recycle its own buffer.
    let before = gperf::alloc::stats().unwrap();
    eng.run_until(&mut world, SimTime::from_secs(1));
    let after = gperf::alloc::stats().unwrap();

    let fired: u64 = world.fired.iter().sum::<u64>() - fired_warm;
    assert!(fired > 10_000, "measured window fired {fired}");
    assert_eq!(
        after.allocs - before.allocs,
        0,
        "steady-state loop allocated {} times over {} events",
        after.allocs - before.allocs,
        fired
    );
    assert_eq!(after.bytes_total, before.bytes_total);
}
