//! The committed golden trace (`fixtures/golden_trace.json`) must stay
//! parseable and internally consistent: `gridmon-inspect --self-check`
//! gates CI on it, and this test gates plain `cargo test` the same way.
//!
//! Regenerate it (after an intentional change to the trace format or
//! the simulation) with:
//!
//! ```text
//! cargo run --release -p gridmon-bench --bin figures -- \
//!     --profile bench --out /tmp/obs --no-cache set1 --only fig5 \
//!     --trace "MDS GRIS (cache)/x=2"
//! cp "/tmp/obs/trace/set1-mds-gris-cache-x=2.trace.json" \
//!     crates/bench/fixtures/golden_trace.json
//! ```
//!
//! The point is deliberately refusal-free (2 users on the cached GRIS):
//! with retries in play the recorded response time includes backoff
//! that no single span covers, and the ±1 % phase-sum check would not
//! be meaningful.

use gtrace::inspect::{self_check, summarize};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/golden_trace.json");

#[test]
fn golden_trace_passes_self_check() {
    let doc = std::fs::read_to_string(GOLDEN).expect("read golden fixture");
    let s = summarize(&doc).expect("golden fixture parses");
    assert!(s.queries > 0, "fixture must contain measured queries");
    assert_eq!(s.refused, 0, "fixture point must be refusal-free");
    assert!(
        s.phases.iter().any(|p| p.phase == "handshake"),
        "cached-GRIS latency is dominated by the GSI handshake"
    );
    self_check(&s).expect("phase sum and reported mean agree within 1%");
}
