//! The committed golden trace (`fixtures/golden_trace.json`) must stay
//! parseable and internally consistent: `gridmon-inspect --self-check`
//! gates CI on it, and this test gates plain `cargo test` the same way.
//!
//! Regenerate it (after an intentional change to the trace format or
//! the simulation) with:
//!
//! ```text
//! cargo run --release -p gridmon-bench --bin figures -- \
//!     --profile bench --out /tmp/obs --no-cache set1 --only fig5 \
//!     --trace "MDS GRIS (cache)/x=2"
//! cp "/tmp/obs/trace/set1-mds-gris-cache-x=2.trace.json" \
//!     crates/bench/fixtures/golden_trace.json
//! ```
//!
//! The point is deliberately refusal-free (2 users on the cached GRIS):
//! with retries in play the recorded response time includes backoff
//! that no single span covers, and the ±1 % phase-sum check would not
//! be meaningful.

//! The Set-5 fixture (`fixtures/golden_set5_trace.json`) is the same
//! idea for the resilience experiments: a traced Hawkeye agent-churn
//! point whose fault-cause breakdown `gridmon-inspect` must keep
//! surfacing.  Regenerate with:
//!
//! ```text
//! cargo run --release -p gridmon-bench --bin figures -- \
//!     --profile bench --out /tmp/obs5 --no-cache set5 \
//!     --trace "Hawkeye (agent churn)/x=1"
//! cp "/tmp/obs5/trace/set5-hawkeye-agent-churn-x=1.trace.json" \
//!     crates/bench/fixtures/golden_set5_trace.json
//! ```

use gtrace::inspect::{render, self_check, summarize};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/golden_trace.json");
const GOLDEN_SET5: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/fixtures/golden_set5_trace.json"
);

#[test]
fn golden_trace_passes_self_check() {
    let doc = std::fs::read_to_string(GOLDEN).expect("read golden fixture");
    let s = summarize(&doc).expect("golden fixture parses");
    assert!(s.queries > 0, "fixture must contain measured queries");
    assert_eq!(s.refused, 0, "fixture point must be refusal-free");
    assert!(
        s.phases.iter().any(|p| p.phase == "handshake"),
        "cached-GRIS latency is dominated by the GSI handshake"
    );
    self_check(&s).expect("phase sum and reported mean agree within 1%");
}

/// The Set-5 fixture carries an injected agent crash and its later
/// restart; `gridmon-inspect` must attribute both in its cause
/// breakdown, and the service must have kept answering queries through
/// the churn (the Hawkeye resilience claim).
#[test]
fn golden_set5_trace_shows_fault_causes() {
    let doc = std::fs::read_to_string(GOLDEN_SET5).expect("read set5 golden fixture");
    let s = summarize(&doc).expect("set5 fixture parses");
    assert!(
        s.queries > 0,
        "manager must keep serving Status queries through agent churn"
    );
    let count_of = |prefix: &str| -> u64 {
        s.causes
            .iter()
            .filter(|c| c.cause.starts_with(prefix))
            .map(|c| c.count)
            .sum()
    };
    assert_eq!(count_of("fault_crash"), 1, "one agent crash injected");
    assert_eq!(count_of("fault_restart"), 1, "and its matching restart");
    // The breakdown names the faulted component, not just the kind.
    let report = render(&s);
    assert!(
        report.contains("fault_crash hawkeye-agent@"),
        "report must attribute the crash to the agent:\n{report}"
    );
}
