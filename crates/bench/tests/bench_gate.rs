//! End-to-end tests of the `gridmon-bench` regression gate: the binary
//! must exit nonzero when the current report regresses beyond the
//! tolerance, exit zero when it is within tolerance, and produce a
//! valid schema-versioned report when it actually runs the matrix.

use gbench::suite::{BenchEntry, BenchReport, BENCH_SCHEMA};
use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_gridmon-bench");

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridmon-bench-gate-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn synthetic(label: &str, eps: f64, warm_wall: f64) -> BenchReport {
    BenchReport {
        label: label.into(),
        seed: 1,
        jobs: 1,
        entries: vec![
            BenchEntry {
                id: "set1/cold".into(),
                warm: false,
                points: 2,
                wall_s: 1.0,
                events: eps as u64,
                sim_s: 120.0,
                events_per_sec: eps,
                allocs: (eps * 2.0) as u64,
                peak_bytes: 1 << 20,
                allocs_per_event: 2.0,
            },
            BenchEntry {
                id: "set1/warm".into(),
                warm: true,
                points: 2,
                wall_s: warm_wall,
                events: 0,
                sim_s: 0.0,
                events_per_sec: 0.0,
                allocs: 100,
                peak_bytes: 4096,
                allocs_per_event: 0.0,
            },
        ],
    }
}

#[test]
fn gate_exits_nonzero_on_injected_regression() {
    let dir = scratch("regress");
    let base = dir.join("base.json");
    let cur = dir.join("cur.json");
    std::fs::write(&base, synthetic("base", 100_000.0, 0.010).to_json()).unwrap();
    // 40% throughput drop: far beyond the 10% tolerance.
    std::fs::write(&cur, synthetic("cur", 60_000.0, 0.010).to_json()).unwrap();
    let out = Command::new(BIN)
        .args(["--compare"])
        .arg(&cur)
        .arg("--baseline")
        .arg(&base)
        .args(["--tolerance", "10"])
        .output()
        .expect("run gridmon-bench");
    assert_eq!(out.status.code(), Some(1), "regression must fail the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("events_per_sec"),
        "names the metric:\n{stdout}"
    );
    assert!(stdout.contains("set1/cold"), "names the entry:\n{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gate_passes_within_tolerance() {
    let dir = scratch("pass");
    let base = dir.join("base.json");
    let cur = dir.join("cur.json");
    std::fs::write(&base, synthetic("base", 100_000.0, 0.010).to_json()).unwrap();
    // 5% slower, warm path twice as fast: within a 10% gate.
    std::fs::write(&cur, synthetic("cur", 95_000.0, 0.005).to_json()).unwrap();
    let out = Command::new(BIN)
        .args(["--compare"])
        .arg(&cur)
        .arg("--baseline")
        .arg(&base)
        .args(["--tolerance", "10"])
        .output()
        .expect("run gridmon-bench");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("perf gate: OK"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbled_reports_fail_cleanly() {
    let dir = scratch("garbled");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"schema\": \"wrong\"}").unwrap();
    let out = Command::new(BIN)
        .args(["--compare"])
        .arg(&bad)
        .output()
        .expect("run gridmon-bench");
    assert_eq!(out.status.code(), Some(2), "usage-level failure");
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn matrix_run_emits_a_valid_report() {
    let dir = scratch("matrix");
    let out_path = dir.join("BENCH_test.json");
    // One set keeps the smoke fast; --jobs 2 exercises the pool path.
    let out = Command::new(BIN)
        .args([
            "--sets", "1", "--jobs", "2", "--label", "test", "--quiet", "--out",
        ])
        .arg(&out_path)
        .output()
        .expect("run gridmon-bench");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&out_path).expect("report written");
    assert!(doc.contains(BENCH_SCHEMA));
    let report = BenchReport::from_json(&doc).expect("valid schema-versioned report");
    assert_eq!(report.label, "test");
    assert_eq!(report.entries.len(), 2, "set1 cold + warm");
    let cold = &report.entries[0];
    assert_eq!(cold.id, "set1/cold");
    assert!(cold.events > 0, "cold entry carries engine events");
    assert!(cold.events_per_sec > 0.0);
    assert!(cold.sim_s > 0.0);
    let warm = &report.entries[1];
    assert_eq!(warm.id, "set1/warm");
    assert!(warm.warm);
    assert_eq!(warm.points, cold.points, "warm serves what cold stored");
    assert_eq!(warm.events, 0);
    // A self-compare passes the gate (event counts are deterministic;
    // wall times trivially match themselves).
    let gate = Command::new(BIN)
        .args(["--compare"])
        .arg(&out_path)
        .arg("--baseline")
        .arg(&out_path)
        .args(["--tolerance", "5"])
        .output()
        .expect("run gridmon-bench gate");
    assert!(gate.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
