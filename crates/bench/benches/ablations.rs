//! Ablation benches: vary the design choices DESIGN.md calls out and
//! observe their effect on the headline metrics.  Criterion times the
//! wall-clock cost of the simulated run; the interesting output is the
//! simulated metric each configuration produces (black-boxed so the whole
//! pipeline runs).

use criterion::{criterion_group, criterion_main, Criterion};
use gbench::Profile;
use gridmon_core::experiments::{set1, set2};
use gridmon_core::runcfg::RunConfig;
use simcore::SimDuration;

fn base_cfg() -> RunConfig {
    Profile::Bench.run_config(13)
}

/// Ablation 1 — the GSI bind cost: the paper's flat ~4 s cached-GRIS
/// response comes from session establishment, not the search.  Remove it
/// and the cached GRIS response collapses to milliseconds.
fn ablate_gsi_bind(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_gsi_bind");
    g.sample_size(10);
    for (label, fixed_ms) in [("gsi_3500ms", 3_500u64), ("anonymous_0ms", 0)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = base_cfg();
                cfg.params.gris_setup.fixed = SimDuration::from_millis(fixed_ms);
                let m = set1::run_point(set1::Set1Series::GrisCache, 30, &cfg);
                criterion::black_box(m.response_time)
            })
        });
    }
    g.finish();
}

/// Ablation 2 — admission control: shrink/expand the Hawkeye Agent's
/// accept queue.  Tiny queues refuse early and keep served response
/// times flat; big queues trade refusals for queueing delay.
fn ablate_accept_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_agent_accept_queue");
    g.sample_size(10);
    for (label, conns, backlog) in [("tight_12+6", 12u32, 6u32), ("wide_128+128", 128, 128)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = base_cfg();
                cfg.params.agent_conn_capacity = conns;
                cfg.params.agent_backlog = backlog;
                let m = set1::run_point(set1::Set1Series::HawkeyeAgent, 80, &cfg);
                criterion::black_box((m.throughput, m.refused))
            })
        });
    }
    g.finish();
}

/// Ablation 3 — the WAN pipe: the paper blames server-side network
/// saturation for its thresholds.  Vary the UC-ANL capacity.
fn ablate_wan_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_wan_capacity");
    g.sample_size(10);
    for (label, bps) in [("10mbit", 10e6), ("40mbit", 40e6), ("100mbit", 100e6)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = base_cfg();
                cfg.params.wan_bps = bps;
                let m = set2::run_point(set2::Set2Series::Giis, 60, &cfg);
                criterion::black_box(m.throughput)
            })
        });
    }
    g.finish();
}

/// Ablation 4 — the client-side query-tool cost: what caps the fast
/// directory servers at high user counts.
fn ablate_client_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_client_cpu");
    g.sample_size(10);
    for (label, us) in [("free_client", 0.0), ("condor_status_180ms", 180_000.0)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = base_cfg();
                cfg.params.condor_client_cpu_us = us;
                let m = set2::run_point(set2::Set2Series::HawkeyeManager, 80, &cfg);
                criterion::black_box(m.throughput)
            })
        });
    }
    g.finish();
}

/// Ablation 5 — retry backoff: how fast refused users hammer back
/// changes the equilibrium a saturated server settles into.
fn ablate_retry_backoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_retry_backoff");
    g.sample_size(10);
    for (label, cap_s) in [("cap_12s", 12u64), ("cap_60s", 60)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = base_cfg();
                cfg.params.retry_cap = SimDuration::from_secs(cap_s);
                let m = set1::run_point(set1::Set1Series::HawkeyeAgent, 80, &cfg);
                criterion::black_box((m.throughput, m.refused))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_gsi_bind,
    ablate_accept_queue,
    ablate_wan_capacity,
    ablate_client_cpu,
    ablate_retry_backoff
);
criterion_main!(benches);
