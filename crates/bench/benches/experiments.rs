//! Criterion benches: one group per paper table/figure.
//!
//! Each experiment set produces four figures from the same simulation
//! runs, so the benches are organised per set with one benchmark per
//! figure-defining series at a representative sweep point, using the
//! `Bench` profile (short windows) so `cargo bench` completes quickly.

use criterion::{criterion_group, criterion_main, Criterion};
use gbench::Profile;
use gridmon_core::experiments::{set1, set2, set3, set4};

fn cfg() -> gridmon_core::runcfg::RunConfig {
    Profile::Bench.run_config(7)
}

/// Table 1 is a static mapping; benchmark its rendering for completeness.
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/render", |b| {
        b.iter(gridmon_core::mapping::render_table1)
    });
}

/// Figures 5-8: information server vs users.
fn bench_set1(c: &mut Criterion) {
    let mut g = c.benchmark_group("set1_figs5-8");
    g.sample_size(10);
    for s in set1::Set1Series::ALL {
        g.bench_function(format!("{}/users=40", s.label()), |b| {
            b.iter(|| set1::run_point(s, 40, &cfg()))
        });
    }
    g.finish();
}

/// Figures 9-12: directory server vs users.
fn bench_set2(c: &mut Criterion) {
    let mut g = c.benchmark_group("set2_figs9-12");
    g.sample_size(10);
    for s in set2::Set2Series::ALL {
        g.bench_function(format!("{}/users=40", s.label()), |b| {
            b.iter(|| set2::run_point(s, 40, &cfg()))
        });
    }
    g.finish();
}

/// Figures 13-16: information server vs collectors.
fn bench_set3(c: &mut Criterion) {
    let mut g = c.benchmark_group("set3_figs13-16");
    g.sample_size(10);
    for s in set3::Set3Series::ALL {
        g.bench_function(format!("{}/collectors=30", s.label()), |b| {
            b.iter(|| set3::run_point(s, 30, &cfg()))
        });
    }
    g.finish();
}

/// Figures 17-20: aggregate information server vs sources.
fn bench_set4(c: &mut Criterion) {
    let mut g = c.benchmark_group("set4_figs17-20");
    g.sample_size(10);
    for s in set4::Set4Series::ALL {
        g.bench_function(format!("{}/servers=50", s.label()), |b| {
            b.iter(|| set4::run_point(s, 50, &cfg()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_set1,
    bench_set2,
    bench_set3,
    bench_set4
);
criterion_main!(benches);
