//! Criterion benches of the sweep-execution engine itself: one full
//! (thinned) experiment-set sweep, sequentially and through the
//! work-stealing pool, plus a warm-cache pass.  The interesting numbers
//! are the jobs=1 vs jobs=N ratio (scheduling overhead / speedup) and
//! the cached pass (pure cache-read cost).

use criterion::{criterion_group, criterion_main, Criterion};
use gbench::Profile;
use gridmon_runner::RunnerConfig;

fn seq_rc() -> RunnerConfig {
    RunnerConfig::sequential()
}

fn par_rc() -> RunnerConfig {
    RunnerConfig {
        jobs: 0,
        cache_dir: None,
        quiet: true,
    }
}

fn bench_set1_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_set1");
    g.sample_size(10);
    g.bench_function("jobs=1", |b| {
        b.iter(|| gbench::run_set(1, Profile::Bench, 7, &seq_rc()).unwrap())
    });
    g.bench_function("jobs=auto", |b| {
        b.iter(|| gbench::run_set(1, Profile::Bench, 7, &par_rc()).unwrap())
    });
    g.finish();
}

fn bench_warm_cache(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("gridmon-sweep-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rc = RunnerConfig {
        jobs: 0,
        cache_dir: Some(dir.clone()),
        quiet: true,
    };
    // Prime once; the measured iterations are then pure cache reads.
    gbench::run_set(1, Profile::Bench, 7, &rc).unwrap();
    c.bench_function("sweep_set1/warm_cache", |b| {
        b.iter(|| {
            let (_, stats) = gbench::run_set(1, Profile::Bench, 7, &rc).unwrap();
            assert_eq!(stats.executed, 0);
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(sweeps, bench_set1_sweep, bench_warm_cache);
criterion_main!(sweeps);
