//! Micro-benchmarks of the substrate crates: the hot paths of the
//! simulation (event calendar, CPU model, fair-share recomputation) and
//! of the protocol engines (ClassAd evaluation, LDAP search, SQL
//! execution).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_engine_event_churn(c: &mut Criterion) {
    use simcore::{Engine, SimDuration, SimTime};
    c.bench_function("simcore/engine_10k_events", |b| {
        b.iter(|| {
            struct W {
                count: u64,
            }
            let mut eng: Engine<W> = Engine::new(1);
            let mut w = W { count: 0 };
            fn tick(w: &mut W, eng: &mut Engine<W>) {
                w.count += 1;
                if w.count < 10_000 {
                    eng.schedule_in(SimDuration(10), tick);
                }
            }
            eng.schedule_at(SimTime(0), tick);
            eng.run_to_completion(&mut w);
            criterion::black_box(w.count)
        })
    });
}

fn bench_ps_cpu(c: &mut Criterion) {
    use simcore::{PsCpu, SimTime};
    c.bench_function("simcore/ps_cpu_1k_tasks", |b| {
        b.iter(|| {
            let mut cpu = PsCpu::new(2, 1.0);
            let mut now = SimTime(0);
            let mut done = 0usize;
            for i in 0..1_000u64 {
                cpu.submit(now, 500.0, i);
                if let Some(next) = cpu.next_completion(now) {
                    now = next;
                    done += cpu.advance(now).len();
                }
            }
            while let Some(next) = cpu.next_completion(now) {
                now = next;
                done += cpu.advance(now).len();
            }
            criterion::black_box(done)
        })
    });
}

fn bench_classad(c: &mut Criterion) {
    use classad::{eval, matchmaker, parse_expr, ClassAd};
    let machine = ClassAd::parse(
        "Machine = \"lucky4\"\nOpSys = \"LINUX\"\nCpuLoad = 62.5\n\
         Memory = 512\nRequirements = TRUE\nRank = Memory / 64\n",
    )
    .unwrap();
    let expr = parse_expr("CpuLoad > 50 && OpSys == \"LINUX\" && Memory >= 256").unwrap();
    c.bench_function("classad/parse_expr", |b| {
        b.iter(|| parse_expr("TARGET.CpuLoad > 50 && TARGET.OpSys == \"LINUX\"").unwrap())
    });
    c.bench_function("classad/eval_constraint", |b| {
        b.iter(|| criterion::black_box(eval(&expr, &machine, None)))
    });
    let trigger = ClassAd::parse("Requirements = TARGET.CpuLoad > 50\n").unwrap();
    c.bench_function("classad/symmetric_match", |b| {
        b.iter(|| criterion::black_box(matchmaker::symmetric_match(&trigger, &machine)))
    });
}

fn bench_ldap(c: &mut Criterion) {
    use ldapdir::{Dit, Dn, Entry, Filter, Scope};
    let suffix = Dn::parse("o=grid").unwrap();
    let mut dit = Dit::new(suffix.clone());
    for i in 0..500 {
        let dn = suffix.child("host", &format!("h{i}"));
        let mut e = Entry::new(dn);
        e.add("objectclass", "MdsHost")
            .add("mds-cpu-total", format!("{}", i % 8))
            .add("mds-memory-mb", format!("{}", 128 * (i % 16)));
        dit.add(e).unwrap();
    }
    let filter = Filter::parse("(&(objectclass=mdshost)(mds-cpu-total>=4))").unwrap();
    c.bench_function("ldap/filter_parse", |b| {
        b.iter(|| Filter::parse("(&(objectclass=mdshost)(mds-cpu-total>=4))").unwrap())
    });
    c.bench_function("ldap/sub_search_500", |b| {
        b.iter(|| criterion::black_box(dit.search(&suffix, Scope::Sub, &filter).len()))
    });
}

fn bench_relsql(c: &mut Criterion) {
    use relsql::Database;
    c.bench_function("relsql/insert_500", |b| {
        b.iter(|| {
            let mut db = Database::new();
            db.execute("CREATE TABLE m (id INT PRIMARY KEY, v REAL)")
                .unwrap();
            for i in 0..500 {
                db.execute(&format!("INSERT INTO m VALUES ({i}, {}.5)", i % 97))
                    .unwrap();
            }
            criterion::black_box(db)
        })
    });
    let mut db = Database::new();
    db.execute("CREATE TABLE m (id INT PRIMARY KEY, v REAL)")
        .unwrap();
    for i in 0..500 {
        db.execute(&format!("INSERT INTO m VALUES ({i}, {}.5)", i % 97))
            .unwrap();
    }
    c.bench_function("relsql/indexed_point_query", |b| {
        b.iter(|| criterion::black_box(db.execute("SELECT v FROM m WHERE id = 250").unwrap()))
    });
    c.bench_function("relsql/scan_with_order_by", |b| {
        b.iter(|| {
            criterion::black_box(
                db.execute("SELECT id FROM m WHERE v >= 50 ORDER BY v DESC LIMIT 10")
                    .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_engine_event_churn,
    bench_ps_cpu,
    bench_classad,
    bench_ldap,
    bench_relsql
);
criterion_main!(benches);
