//! Observability overhead benches — the "zero-cost-when-off" pin.
//!
//! Two levels:
//!
//! * `obs_gate/*` — the micro cost of one instrumented site.  With
//!   [`ObsMode::OFF`] every `ev_with`/`incr` call is a load of a plain
//!   `bool` and a predicted-not-taken branch; the closure building the
//!   event never runs.  Compare `ev_with_off` against `spin` (the same
//!   loop with no call at all) to see the per-site cost, and against
//!   `ev_with_on` for the recording cost.
//!
//! * `sweep_point/*` — the macro cost on a full figure point: the same
//!   cached-GRIS point simulated with observability off, with metrics
//!   only, and with full tracing.  `off` is what every default figure
//!   sweep pays for the instrumentation being compiled in (budgeted
//!   <2 % over the pre-instrumentation baseline; compare `off` runs
//!   across commits to watch it), `trace_full` is the opt-in price of
//!   `figures --trace`.
//!
//! * `perf_gate/*` — the same pin for the self-profiler.  With no
//!   `PerfSink` alive, `gperf::sim_report` is one relaxed load and a
//!   predictable branch (`sim_report_off` vs `spin`), and a whole
//!   figure point with profiling compiled in but disabled
//!   (`point_unprofiled`) must stay within the same <2 % budget of the
//!   pre-profiler baseline; `point_profiled` shows the opt-in cost of
//!   `figures --perf` / `gridmon-bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use gbench::Profile;
use gridmon_core::experiments::{set1, Set1Series};
use gridmon_core::ObsMode;
use gtrace::{Ev, Obs};
use simcore::SimTime;

/// One instrumented-site call, off vs on.
fn obs_gate(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_gate");
    const N: u64 = 100_000;

    g.bench_function("spin", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc = acc.wrapping_add(criterion::black_box(i));
            }
            criterion::black_box(acc)
        })
    });
    g.bench_function("ev_with_off", |b| {
        let mut obs = Obs::off();
        b.iter(|| {
            for i in 0..N {
                obs.ev_with(SimTime(i), || Ev::Dispatch { seq: i });
            }
            criterion::black_box(obs.tracing())
        })
    });
    g.bench_function("ev_with_on", |b| {
        b.iter(|| {
            let mut obs = Obs::from_mode(ObsMode::FULL);
            for i in 0..N {
                obs.ev_with(SimTime(i), || Ev::Dispatch { seq: i });
            }
            criterion::black_box(obs.finish(SimTime(N)).map(|r| r.events.len()))
        })
    });
    g.finish();
}

/// A whole simulated figure point under each observability mode.
fn sweep_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_point");
    g.sample_size(10);
    let modes = [
        ("off", ObsMode::OFF),
        (
            "metrics_only",
            ObsMode {
                trace: false,
                metrics: true,
            },
        ),
        ("trace_full", ObsMode::FULL),
    ];
    for (label, mode) in modes {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = Profile::Bench.run_config(13);
                cfg.obs = mode;
                let m = set1::run_point(Set1Series::GrisCache, 10, &cfg);
                criterion::black_box(m.response_time)
            })
        });
    }
    g.finish();
}

/// The self-profiler's gate: per-site cost of `sim_report` off vs on,
/// and a whole figure point unprofiled vs profiled.
fn perf_gate(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf_gate");
    const N: u64 = 100_000;

    g.bench_function("spin", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc = acc.wrapping_add(criterion::black_box(i));
            }
            criterion::black_box(acc)
        })
    });
    g.bench_function("sim_report_off", |b| {
        assert!(!gperf::profiling(), "no sink may leak into this bench");
        b.iter(|| {
            for i in 0..N {
                gperf::sim_report(criterion::black_box(i), i, i, i);
            }
            criterion::black_box(gperf::profiling())
        })
    });
    g.bench_function("sim_report_on", |b| {
        let _sink = gperf::PerfSink::new();
        b.iter(|| {
            let (_, sample) = gperf::measure_point(|| {
                for i in 0..N {
                    gperf::sim_report(criterion::black_box(i), i, i, i);
                }
            });
            criterion::black_box(sample.sim.engine_runs)
        })
    });

    g.sample_size(10);
    g.bench_function("point_unprofiled", |b| {
        b.iter(|| {
            let cfg = Profile::Bench.run_config(13);
            let m = set1::run_point(Set1Series::GrisCache, 10, &cfg);
            criterion::black_box(m.response_time)
        })
    });
    g.bench_function("point_profiled", |b| {
        let _sink = gperf::PerfSink::new();
        b.iter(|| {
            let cfg = Profile::Bench.run_config(13);
            let (m, sample) =
                gperf::measure_point(|| set1::run_point(Set1Series::GrisCache, 10, &cfg));
            criterion::black_box((m.response_time, sample.sim.events))
        })
    });
    g.finish();
}

criterion_group!(benches, obs_gate, sweep_point, perf_gate);
criterion_main!(benches);
