//! Offline stand-in for the `criterion` crate.
//!
//! The real `criterion` cannot be fetched in a registry-less build.
//! This shim implements the surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — with a
//! simple calibrated wall-clock loop: each benchmark is warmed once,
//! then timed over enough iterations to fill a small measurement
//! budget, and the mean/min per-iteration times are printed.
//!
//! In `cargo test` mode (the harness receives `--test`) every benchmark
//! runs exactly once, as the real criterion does.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as in real criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    /// Measurement budget for one benchmark.
    budget: Duration,
    /// Hard cap on timed iterations.
    max_iters: u64,
    /// Collected per-iteration mean of each sample batch.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f` repeatedly until the budget or the iteration cap is
    /// exhausted.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < self.max_iters && started.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<48} mean {mean:>12.3?}  min {min:>12.3?}  ({} iters)",
            self.samples.len()
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
    max_iters: u64,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test` runs bench executables with `--test`; `cargo
        // bench` passes `--bench`.  Smoke-run (one iteration) in test
        // mode, exactly like real criterion.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            budget: Duration::from_millis(300),
            max_iters: 200,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        let mut b = Bencher {
            budget: if self.test_mode {
                Duration::ZERO
            } else {
                self.budget
            },
            max_iters: if self.test_mode { 1 } else { self.max_iters },
            samples: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            println!("{name:<48} ok (smoke)");
        } else {
            b.report(&name);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (`sample_size` is accepted for API
/// compatibility; the shim's loop is budget-driven instead).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.parent.bench_function(full, f);
        self
    }

    pub fn finish(self) {}
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
