//! # gridmon-diff — differential reference-oracle test layer
//!
//! Each measured hot path in the workspace keeps its original, simple
//! implementation alive as a *reference kernel* (exposed by the crates'
//! `reference-kernel` feature).  The property tests in this crate's
//! `tests/` directory drive the fast and reference paths with the same
//! randomly generated inputs and assert **bit-exact** agreement:
//!
//! * `classad_diff` — compiled postfix ClassAd VM vs the tree-walking
//!   evaluator, over random expressions, ads and matchmaking pairs;
//! * `flownet_diff` — incremental component-local max-min fair-share vs
//!   the from-scratch water-filler, over random topologies and
//!   start/abort/complete schedules;
//! * `engine_diff` — the compacting event calendar vs pure lazy deletion,
//!   over random schedule/cancel patterns;
//! * `dit_diff` — the indexed DIT search vs the exhaustive reference
//!   scan, over random trees and queries.
//!
//! The generators come from the in-tree `proptest` shim, so every case is
//! deterministic and reproducible by number.  Bit-exactness (not
//! approximate equality) is the contract: the optimizations are
//! restructurings of identical arithmetic, so any divergence — even in
//! the last ulp — is a bug.

use classad::Value;

/// Bit-exact ClassAd value equality: `Real` compares by `to_bits` so NaN
/// payloads and signed zeros must agree too; other variants use plain
/// structural equality.
pub fn values_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Real(x), Value::Real(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// Render a value for failure messages, exposing the exact bits of reals.
pub fn value_repr(v: &Value) -> String {
    match v {
        Value::Real(x) => format!("Real({x:?} bits={:#x})", x.to_bits()),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_values_compare_by_bits() {
        let nan1 = Value::Real(f64::NAN);
        let nan2 = Value::Real(f64::NAN);
        assert!(values_identical(&nan1, &nan2));
        assert!(!values_identical(&Value::Real(0.0), &Value::Real(-0.0)));
        assert!(values_identical(&Value::Int(3), &Value::Int(3)));
        assert!(!values_identical(&Value::Int(3), &Value::Real(3.0)));
    }
}
