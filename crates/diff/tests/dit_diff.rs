//! Indexed DIT search vs the exhaustive reference scan.
//!
//! The fast path prunes the tree walk (sorted child-walk, Sub fast path);
//! `search_reference` scans every entry.  Both must return the same
//! entries in the same order for any tree, base, scope and filter —
//! including after the mutation patterns (upserts, subtree removals) that
//! bump the generation counter the MDS result cache keys on.

use ldapdir::{Dit, Dn, Entry, Filter, Scope};
use proptest::prelude::*;

fn arb_filter() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        ("[a-c]", "[a-z0-9]{1,4}").prop_map(|(a, v)| Filter::Eq(a, v)),
        "[a-c]".prop_map(Filter::Present),
        ("[a-c]", "[0-9]{1,2}").prop_map(|(a, v)| Filter::Ge(a, v)),
        ("[a-c]", "[0-9]{1,2}").prop_map(|(a, v)| Filter::Le(a, v)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Filter::And),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Filter::Or),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

/// A random tree: suffix `o=grid`, depth-1 `vo=` entries, depth-2
/// `host=` children, attributes from the filter alphabet.
fn build_dit(spec: &[(String, Vec<(String, String)>)]) -> (Dit, Dn) {
    let suffix = Dn::parse("o=grid").unwrap();
    let mut dit = Dit::new(suffix.clone());
    for (i, (name, attrs)) in spec.iter().enumerate() {
        let dn = if i % 3 == 0 {
            suffix.child("vo", name)
        } else {
            suffix.child("vo", name).child("host", &format!("h{i}"))
        };
        let mut e = Entry::new(dn);
        e.add("objectclass", "thing");
        for (a, v) in attrs {
            e.add(a, v);
        }
        let _ = dit.upsert(e);
    }
    (dit, suffix)
}

fn arb_spec() -> impl Strategy<Value = Vec<(String, Vec<(String, String)>)>> {
    proptest::collection::vec(
        (
            "[a-z0-9]{1,5}",
            proptest::collection::vec(("[a-c]", "[a-z0-9]{1,4}"), 0..4),
        ),
        0..24,
    )
}

fn assert_same_search(dit: &Dit, base: &Dn, scope: Scope, filter: &Filter) {
    let fast: Vec<String> = dit
        .search(base, scope, filter)
        .iter()
        .map(|e| e.dn.to_string())
        .collect();
    let slow: Vec<String> = dit
        .search_reference(base, scope, filter)
        .iter()
        .map(|e| e.dn.to_string())
        .collect();
    assert_eq!(
        fast, slow,
        "search diverged for scope {scope:?} filter {filter}"
    );
}

proptest! {
    /// Every (tree, scope, filter) triple returns identical hit lists.
    #[test]
    fn search_agrees_with_reference(spec in arb_spec(), filter in arb_filter()) {
        let (dit, suffix) = build_dit(&spec);
        for scope in [Scope::Base, Scope::One, Scope::Sub] {
            assert_same_search(&dit, &suffix, scope, &filter);
            assert_same_search(&dit, &suffix, scope, &Filter::any());
        }
        // Non-suffix bases too (including missing ones).
        if let Some((name, _)) = spec.first() {
            let base = suffix.child("vo", name);
            for scope in [Scope::Base, Scope::One, Scope::Sub] {
                assert_same_search(&dit, &base, scope, &filter);
            }
        }
        let missing = suffix.child("vo", "no-such-vo");
        assert_same_search(&dit, &missing, Scope::Sub, &filter);
    }

    /// Mutations (remove_subtree + re-upsert) keep the paths agreeing and
    /// always bump the generation counter the MDS cache depends on.
    #[test]
    fn mutated_tree_still_agrees(spec in arb_spec(), filter in arb_filter()) {
        let (mut dit, suffix) = build_dit(&spec);
        let before = dit.generation();
        if let Some((name, _)) = spec.first() {
            let victim = suffix.child("vo", name);
            let _ = dit.remove_subtree(&victim);
            prop_assert!(dit.generation() > before, "mutation must bump generation");
        }
        let mut e = Entry::new(suffix.child("vo", "fresh"));
        e.add("objectclass", "thing");
        e.add("a", "zz9");
        let _ = dit.upsert(e);
        for scope in [Scope::Base, Scope::One, Scope::Sub] {
            assert_same_search(&dit, &suffix, scope, &filter);
        }
    }
}
