//! Compacting event calendar vs pure lazy deletion.
//!
//! Compaction rebuilds the binary heap without stale keys once cancelled
//! events dominate.  `QKey` ordering is total, so the dispatch stream —
//! times, FIFO tie-breaks, `fired`, `advances` — must be identical to the
//! reference engine; only `popped` (stale churn) may shrink.

use proptest::prelude::*;
use simcore::reference::RefEngine;
use simcore::{Engine, SimTime};

#[derive(Default)]
struct World {
    dispatched: Vec<(u64, u32)>,
}

/// Replay `(time, cancel?)` scheduling rounds on one engine.
fn replay(compaction: bool, plan: &[(u64, bool)]) -> (Vec<(u64, u32)>, u64, u64, u64) {
    let mut eng: Engine<World> = if compaction {
        Engine::new(42)
    } else {
        Engine::new_reference(42)
    };
    let mut w = World::default();
    let mut doomed = Vec::new();
    for (i, &(t, cancel)) in plan.iter().enumerate() {
        let i = i as u32;
        let h = eng.schedule_at(SimTime(t), move |w: &mut World, eng| {
            w.dispatched.push((eng.now().as_micros(), i));
        });
        if cancel {
            doomed.push(h);
        }
        // Cancel in bursts so stale keys pile up the way timeout-heavy
        // services produce them.
        if doomed.len() >= 16 {
            for h in doomed.drain(..) {
                assert!(eng.cancel(h));
            }
        }
    }
    for h in doomed {
        assert!(eng.cancel(h));
    }
    eng.run_until(&mut w, SimTime(1_000_000));
    (w.dispatched, eng.fired, eng.popped, eng.advances)
}

proptest! {
    /// Any schedule/cancel pattern dispatches identically under both
    /// engines; heavy cancellation must reduce pop churn.
    #[test]
    fn dispatch_stream_is_identical(
        plan in proptest::collection::vec((0u64..5000, any::<bool>()), 1..400),
    ) {
        let (fast, fast_fired, fast_popped, fast_advances) = replay(true, &plan);
        let (slow, slow_fired, slow_popped, slow_advances) = replay(false, &plan);
        prop_assert_eq!(&fast, &slow, "dispatch order diverged");
        prop_assert_eq!(fast_fired, slow_fired);
        prop_assert_eq!(fast_advances, slow_advances);
        prop_assert!(fast_popped <= slow_popped, "compaction must never add pops");
        // The reference pops every stale key eventually.
        let cancelled = plan.iter().filter(|&&(_, c)| c).count() as u64;
        prop_assert_eq!(slow_popped, slow_fired + cancelled);
    }

    /// Events scheduled *from inside events* (the common self-rescheduling
    /// service pattern) interleave with compaction correctly.
    #[test]
    fn nested_scheduling_agrees(seed_times in proptest::collection::vec(0u64..100, 1..40)) {
        fn run(compaction: bool, seed_times: &[u64]) -> (Vec<(u64, u32)>, u64) {
            let mut eng: Engine<World> = Engine::new(7);
            eng.set_compaction(compaction);
            let mut w = World::default();
            for (i, &t) in seed_times.iter().enumerate() {
                let i = i as u32;
                eng.schedule_at(SimTime(t), move |w: &mut World, eng| {
                    w.dispatched.push((eng.now().as_micros(), i));
                    // Schedule a follow-up and a timeout; cancel the
                    // timeout immediately (retry-style churn).
                    eng.schedule_in(simcore::SimDuration(10), move |w: &mut World, eng| {
                        w.dispatched.push((eng.now().as_micros(), 1000 + i));
                    });
                    let doomed = eng.schedule_in(simcore::SimDuration(500), |_w, _e| {});
                    eng.cancel(doomed);
                });
            }
            eng.run_until(&mut w, SimTime(10_000));
            (w.dispatched, eng.fired)
        }
        let fast = run(true, &seed_times);
        let slow = run(false, &seed_times);
        prop_assert_eq!(fast, slow);
    }

    /// Pooled closure storage vs the verbatim pre-pool box-per-event
    /// engine: identical schedule/cancel scripts must yield the same
    /// dispatch stream, clock and all three counters.  The script mixes
    /// small captures (pooled), 1 KiB captures (the `Box` fallback) and
    /// burst cancellation so recycled buffers interleave with stale keys.
    #[test]
    fn pooled_storage_matches_boxed_reference(
        plan in proptest::collection::vec(
            (0u64..5000, any::<bool>(), any::<bool>()), 1..300),
    ) {
        fn run_new(plan: &[(u64, bool, bool)]) -> (Vec<(u64, u32)>, u64, u64, u64, u64) {
            let mut eng: Engine<World> = Engine::new(42);
            let mut w = World::default();
            let mut doomed = Vec::new();
            for (i, &(t, cancel, big)) in plan.iter().enumerate() {
                let i = i as u32;
                let h = if big {
                    let pad = [u64::from(i); 128]; // forces the Box fallback
                    eng.schedule_at(SimTime(t), move |w: &mut World, eng| {
                        w.dispatched.push((eng.now().as_micros(), i + pad[0] as u32 - i));
                    })
                } else {
                    eng.schedule_at(SimTime(t), move |w: &mut World, eng| {
                        w.dispatched.push((eng.now().as_micros(), i));
                    })
                };
                if cancel {
                    doomed.push(h);
                }
                if doomed.len() >= 16 {
                    for h in doomed.drain(..) {
                        assert!(eng.cancel(h));
                    }
                }
            }
            for h in doomed {
                assert!(eng.cancel(h));
            }
            eng.run_until(&mut w, SimTime(1_000_000));
            (w.dispatched, eng.fired, eng.popped, eng.advances, eng.now().as_micros())
        }
        fn run_ref(plan: &[(u64, bool, bool)]) -> (Vec<(u64, u32)>, u64, u64, u64, u64) {
            let mut eng: RefEngine<World> = RefEngine::new(42);
            let mut w = World::default();
            let mut doomed = Vec::new();
            for (i, &(t, cancel, big)) in plan.iter().enumerate() {
                let i = i as u32;
                let h = if big {
                    let pad = [u64::from(i); 128];
                    eng.schedule_at(SimTime(t), move |w: &mut World, eng| {
                        w.dispatched.push((eng.now().as_micros(), i + pad[0] as u32 - i));
                    })
                } else {
                    eng.schedule_at(SimTime(t), move |w: &mut World, eng| {
                        w.dispatched.push((eng.now().as_micros(), i));
                    })
                };
                if cancel {
                    doomed.push(h);
                }
                if doomed.len() >= 16 {
                    for h in doomed.drain(..) {
                        assert!(eng.cancel(h));
                    }
                }
            }
            for h in doomed {
                assert!(eng.cancel(h));
            }
            eng.run_until(&mut w, SimTime(1_000_000));
            (w.dispatched, eng.fired, eng.popped, eng.advances, eng.now().as_micros())
        }
        prop_assert_eq!(run_new(&plan), run_ref(&plan));
    }

    /// Self-rescheduling from inside pooled events (buffer recycled and
    /// immediately reused by the successor) matches the boxed reference.
    #[test]
    fn pooled_nested_scheduling_matches_reference(
        seed_times in proptest::collection::vec(0u64..100, 1..30),
    ) {
        fn run_new(seed_times: &[u64]) -> (Vec<(u64, u32)>, u64) {
            let mut eng: Engine<World> = Engine::new(7);
            let mut w = World::default();
            for (i, &t) in seed_times.iter().enumerate() {
                let i = i as u32;
                eng.schedule_at(SimTime(t), move |w: &mut World, eng| {
                    w.dispatched.push((eng.now().as_micros(), i));
                    eng.schedule_in(simcore::SimDuration(10), move |w: &mut World, eng| {
                        w.dispatched.push((eng.now().as_micros(), 1000 + i));
                    });
                    let doomed = eng.schedule_in(simcore::SimDuration(500), |_w, _e| {});
                    eng.cancel(doomed);
                });
            }
            eng.run_until(&mut w, SimTime(10_000));
            (w.dispatched, eng.fired)
        }
        fn run_ref(seed_times: &[u64]) -> (Vec<(u64, u32)>, u64) {
            let mut eng: RefEngine<World> = RefEngine::new(7);
            let mut w = World::default();
            for (i, &t) in seed_times.iter().enumerate() {
                let i = i as u32;
                eng.schedule_at(SimTime(t), move |w: &mut World, eng| {
                    w.dispatched.push((eng.now().as_micros(), i));
                    eng.schedule_in(simcore::SimDuration(10), move |w: &mut World, eng| {
                        w.dispatched.push((eng.now().as_micros(), 1000 + i));
                    });
                    let doomed = eng.schedule_in(simcore::SimDuration(500), |_w, _e| {});
                    eng.cancel(doomed);
                });
            }
            eng.run_until(&mut w, SimTime(10_000));
            (w.dispatched, eng.fired)
        }
        prop_assert_eq!(run_new(&seed_times), run_ref(&seed_times));
    }
}
