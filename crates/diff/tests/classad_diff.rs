//! Compiled ClassAd VM vs the tree-walking reference evaluator.
//!
//! The compiled kernel (`CompiledExpr`) flattens an expression into a
//! postfix op-vec with jump-based short-circuiting; the tree walker is the
//! oracle.  Every random expression must evaluate to a bit-identical
//! value in both, with and without a TARGET ad, and the matchmaking
//! wrappers must agree on every random ad pair.

use classad::reference::{
    eval_reference, matches_constraint_reference, requirements_met_reference,
    symmetric_match_reference,
};
use classad::{matchmaker, BinOp, ClassAd, CompiledExpr, Expr, Scope, UnOp, Value};
use gridmon_diff::{value_repr, values_identical};
use proptest::prelude::*;

/// Arbitrary expressions over a deliberately small attribute alphabet so
/// references frequently resolve — and frequently collide into cycles.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Expr::int),
        (-100.0f64..100.0).prop_map(Expr::real),
        Just(Expr::int(0)), // divisors hit zero often enough to matter
        "[a-f]".prop_map(|s| Expr::attr(&s)),
        "[a-f]".prop_map(|s| Expr::scoped_attr(Scope::My, &s)),
        "[a-f]".prop_map(|s| Expr::scoped_attr(Scope::Target, &s)),
        "[a-zA-Z0-9 ]{0,6}".prop_map(|s| Expr::string(&s)),
        Just(Expr::boolean(true)),
        Just(Expr::boolean(false)),
        Just(Expr::Lit(Value::Undefined)),
        Just(Expr::Lit(Value::Error)),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        let bin = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Mod),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::And),
            Just(BinOp::Or),
            Just(BinOp::MetaEq),
            Just(BinOp::MetaNe),
        ];
        prop_oneof![
            (bin, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::Cond(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e))),
            (
                prop_oneof![
                    Just("floor"),
                    Just("ceiling"),
                    Just("round"),
                    Just("int"),
                    Just("real"),
                    Just("string"),
                    Just("isundefined"),
                    Just("iserror"),
                    Just("size"),
                    Just("tolower"),
                ],
                inner.clone()
            )
                .prop_map(|(f, a)| Expr::Call(f.into(), vec![a])),
            (
                prop_oneof![Just("min"), Just("max"), Just("strcat"), Just("strcmp")],
                inner.clone(),
                inner
            )
                .prop_map(|(f, a, b)| Expr::Call(f.into(), vec![a, b])),
        ]
    })
}

/// Arbitrary ads binding the same small alphabet, so generated expressions
/// resolve against them (including self- and mutually-recursive bodies).
fn arb_ad() -> impl Strategy<Value = ClassAd> {
    proptest::collection::vec(("[a-f]", arb_expr()), 0..6).prop_map(|attrs| {
        let mut ad = ClassAd::new();
        for (name, e) in attrs {
            ad.insert(&name, e);
        }
        ad
    })
}

fn assert_identical(e: &Expr, my: &ClassAd, target: Option<&ClassAd>) {
    let compiled = CompiledExpr::compile(e);
    let slow = eval_reference(e, my, target);
    let fast = compiled.eval(my, target);
    assert!(
        values_identical(&fast, &slow),
        "compiled {} != reference {} for {e}\n  my:\n{my}  target:\n{}",
        value_repr(&fast),
        value_repr(&slow),
        target.map(|t| t.to_string()).unwrap_or_default(),
    );
}

proptest! {
    /// Core agreement: any expression, any ad, no target.
    #[test]
    fn compiled_matches_reference_solo(e in arb_expr(), ad in arb_ad()) {
        assert_identical(&e, &ad, None);
    }

    /// With a TARGET ad: scope swaps, cross-ad references and the
    /// false-cycle bookkeeping must line up too.
    #[test]
    fn compiled_matches_reference_with_target(
        e in arb_expr(),
        my in arb_ad(),
        target in arb_ad(),
    ) {
        assert_identical(&e, &my, Some(&target));
    }

    /// Requirements matching: the compiled wrapper seeds its context the
    /// same way entering through the `requirements` attribute would.
    #[test]
    fn requirements_met_agrees(mut ad in arb_ad(), req in arb_expr(), target in arb_ad()) {
        ad.insert("Requirements", req);
        let compiled = matchmaker::compile_requirements(&ad);
        prop_assert_eq!(
            matchmaker::requirements_met_compiled(&ad, compiled.as_ref(), &target),
            requirements_met_reference(&ad, &target)
        );
        // An ad with no requirements is permissive in both.
        let open = ClassAd::new();
        prop_assert!(matchmaker::requirements_met_compiled(&open, None, &target));
        prop_assert!(requirements_met_reference(&open, &target));
    }

    /// Symmetric (gang) matching over random ad-store pairs.
    #[test]
    fn symmetric_match_agrees(
        mut a in arb_ad(),
        ra in arb_expr(),
        mut b in arb_ad(),
        rb in arb_expr(),
    ) {
        a.insert("Requirements", ra);
        b.insert("Requirements", rb);
        let ca = matchmaker::compile_requirements(&a);
        let cb = matchmaker::compile_requirements(&b);
        prop_assert_eq!(
            matchmaker::symmetric_match_compiled(&a, ca.as_ref(), &b, cb.as_ref()),
            symmetric_match_reference(&a, &b)
        );
    }

    /// Constraint scans (the Experiment-4 Hawkeye workload shape).
    #[test]
    fn matches_constraint_agrees(c in arb_expr(), ad in arb_ad()) {
        let compiled = CompiledExpr::compile(&c);
        prop_assert_eq!(
            matchmaker::matches_constraint_compiled(&ad, &compiled),
            matches_constraint_reference(&ad, &c)
        );
    }
}
