//! Interned, copy-on-write `Entry`/`Dn` vs the owned-`String` oracle.
//!
//! The fast path interns attribute types and DN components (`Sym`)
//! and shares the attribute map behind an `Rc` (clones are pointer
//! bumps; the first mutation of a shared entry copies).  The oracle
//! (`ldapdir::reference`, compiled under `reference-kernel`) is the
//! pre-interning implementation kept verbatim.  Any sequence of
//! mutations, projections and queries must observe identical state
//! through both — including after clone-then-mutate patterns that
//! exercise the copy-on-write split.

use ldapdir::reference::{RefDn, RefEntry};
use ldapdir::{Dn, Entry};
use proptest::prelude::*;

/// One step of an entry workout.  Attribute names mix cases to cover
/// the lowercase-normalisation paths on both sides.
#[derive(Debug, Clone)]
enum Op {
    Add(String, String),
    Put(String, String),
    Remove(String),
    /// Clone the entry, mutate the clone, drop it: the original must
    /// be unaffected (copy-on-write split, deep copy in the oracle).
    CloneMutate(String, String),
}

fn arb_attr() -> impl Strategy<Value = String> {
    "[a-cA-C]{1,3}"
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_attr(), "[a-z0-9]{0,5}").prop_map(|(a, v)| Op::Add(a, v)),
        (arb_attr(), "[a-z0-9]{0,5}").prop_map(|(a, v)| Op::Put(a, v)),
        arb_attr().prop_map(Op::Remove),
        (arb_attr(), "[a-z0-9]{0,5}").prop_map(|(a, v)| Op::CloneMutate(a, v)),
    ]
}

fn assert_same(fast: &Entry, oracle: &RefEntry) {
    assert_eq!(fast.attr_count(), oracle.attr_count());
    assert_eq!(fast.wire_size(), oracle.wire_size());
    for ((fa, fvs), (oa, ovs)) in fast.iter().zip(oracle.iter()) {
        assert_eq!(fa, oa, "attribute order diverged");
        assert_eq!(fvs, ovs, "values diverged for {fa}");
    }
}

proptest! {
    /// Any op sequence leaves the interned entry and the oracle in
    /// observably identical states, and every query agrees.
    #[test]
    fn entry_matches_reference(
        ops in proptest::collection::vec(arb_op(), 0..40),
        probes in proptest::collection::vec((arb_attr(), "[a-z0-9]{0,5}"), 0..8),
    ) {
        let dn = Dn::parse("host=lucky3, vo=Cms, o=grid").unwrap();
        let rdn = RefDn::parse("host=lucky3, vo=Cms, o=grid").unwrap();
        let mut fast = Entry::new(dn);
        let mut oracle = RefEntry::new(&rdn);
        for op in &ops {
            match op {
                Op::Add(a, v) => {
                    fast.add(a, v.clone());
                    oracle.add(a, v.clone());
                }
                Op::Put(a, v) => {
                    fast.put(a, v.clone());
                    oracle.put(a, v.clone());
                }
                Op::Remove(a) => {
                    prop_assert_eq!(fast.remove(a), oracle.remove(a));
                }
                Op::CloneMutate(a, v) => {
                    // The clone shares attrs (Rc); its mutation must
                    // split, never write through to `fast`.
                    let mut shared = fast.clone();
                    prop_assert!(shared.shares_attrs_with(&fast));
                    shared.add(a, v.clone());
                    prop_assert!(!shared.shares_attrs_with(&fast));
                }
            }
            assert_same(&fast, &oracle);
        }
        for (a, v) in &probes {
            prop_assert_eq!(fast.get(a), oracle.get(a));
            prop_assert_eq!(fast.has_attr(a), oracle.has_attr(a));
            prop_assert_eq!(fast.has_value(a, v), oracle.has_value(a, v));
        }
    }

    /// Projection agrees with the oracle for any attribute selection —
    /// including names absent from the entry and mixed-case requests —
    /// and the projected wire size is the projection's wire size.
    #[test]
    fn projection_matches_reference(
        adds in proptest::collection::vec((arb_attr(), "[a-z0-9]{0,5}"), 0..20),
        selection in proptest::collection::vec(arb_attr(), 0..6),
    ) {
        let dn = Dn::parse("vo=atlas, o=grid").unwrap();
        let rdn = RefDn::parse("vo=atlas, o=grid").unwrap();
        let mut fast = Entry::new(dn);
        let mut oracle = RefEntry::new(&rdn);
        for (a, v) in &adds {
            fast.add(a, v.clone());
            oracle.add(a, v.clone());
        }
        let sel_owned: Vec<String> = selection.clone();
        let pf = fast.project(&selection);
        let po = oracle.project(&sel_owned);
        assert_same(&pf, &po);
        prop_assert_eq!(fast.projected_wire_size(&selection), oracle.projected_wire_size(&sel_owned));
        prop_assert_eq!(pf.wire_size(), fast.projected_wire_size(&selection));
    }
}

/// DN operations agree with the oracle (parse, hierarchy, rebase,
/// display length) over a fixed interesting namespace.
#[test]
fn dn_matches_reference() {
    let cases = [
        "",
        "o=grid",
        "vo=cms, o=grid",
        "host=Lucky3, vo=CMS, o=Grid",
        "a=1, b=2, c=3, d=4",
    ];
    for s in cases {
        let f = Dn::parse(s).unwrap();
        let o = RefDn::parse(s).unwrap();
        assert_eq!(f.to_string(), o.to_string(), "{s:?}");
        assert_eq!(f.display_len(), o.display_len(), "{s:?}");
        assert_eq!(f.depth(), o.depth(), "{s:?}");
        assert_eq!(
            f.parent().map(|d| d.to_string()),
            o.parent().map(|d| d.to_string()),
            "{s:?}"
        );
        let fc = f.child("host", "new1");
        let oc = o.child("host", "new1");
        assert_eq!(fc.to_string(), oc.to_string());
        assert!(fc.is_under(&f) && oc.is_under(&o));
    }
    // Rebase across suffixes matches.
    let f = Dn::parse("host=h1, vo=cms, o=grid").unwrap();
    let o = RefDn::parse("host=h1, vo=cms, o=grid").unwrap();
    let f2 = f
        .rebase(
            &Dn::parse("o=grid").unwrap(),
            &Dn::parse("giis=top, o=world").unwrap(),
        )
        .unwrap();
    let o2 = o
        .rebase(
            &RefDn::parse("o=grid").unwrap(),
            &RefDn::parse("giis=top, o=world").unwrap(),
        )
        .unwrap();
    assert_eq!(f2.to_string(), o2.to_string());
}
