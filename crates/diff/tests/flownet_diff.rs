//! Incremental max-min fair-share vs the from-scratch water-filler.
//!
//! `FlowNet` re-levels only the connected component a mutation touches;
//! the oracle (`recompute_reference`) rebuilds the whole rate vector.
//! After every mutation of a random schedule the two must agree on every
//! flow's rate, bit for bit.

use proptest::prelude::*;
use simcore::{SimRng, SimTime};
use simnet::flow::FlowNet;
use simnet::topology::{LinkId, Topology};

fn build_topology(link_caps: &[f64], seed_latency_us: u64) -> (Topology, Vec<LinkId>) {
    let mut t = Topology::new();
    let _ = t.add_node("host", 1, 1.0);
    let links = link_caps
        .iter()
        .enumerate()
        .map(|(i, &cap)| {
            t.add_link(
                format!("l{i}"),
                cap,
                simcore::SimDuration::from_micros(seed_latency_us),
            )
        })
        .collect();
    (t, links)
}

/// Assert the incremental rate vector equals a full recompute of a clone.
fn assert_rates_match(fnet: &FlowNet, topo: &Topology, context: &str) {
    let mut fast = Vec::new();
    fnet.for_each_rate(|tok, r| fast.push((tok, r.to_bits())));
    let mut oracle = fnet.clone();
    oracle.recompute_reference(topo);
    let mut slow = Vec::new();
    oracle.for_each_rate(|tok, r| slow.push((tok, r.to_bits())));
    assert_eq!(
        fast, slow,
        "incremental diverged from reference after {context}"
    );
}

proptest! {
    /// Random link-capacity vectors and start/abort/complete schedules:
    /// the incremental kernel tracks the oracle through every mutation.
    #[test]
    fn random_schedule_agrees(
        caps in proptest::collection::vec(0.1f64..20.0, 1..8),
        seed in any::<u64>(),
        steps in 20usize..120,
    ) {
        let caps_bps: Vec<f64> = caps.iter().map(|c| c * 1e6).collect();
        let (topo, links) = build_topology(&caps_bps, 5);
        let mut fnet = FlowNet::new();
        let mut rng = SimRng::new(seed);
        let mut now = SimTime(0);
        let mut live = Vec::new();
        for step in 0..steps as u64 {
            match rng.next_below(4) {
                0 | 1 => {
                    // Start: biased toward short, overlapping paths.
                    let mut path = Vec::new();
                    for &l in &links {
                        if rng.chance(0.35) {
                            path.push(l);
                        }
                    }
                    let bytes = rng.next_below(100_000);
                    live.push(fnet.start(&topo, now, path, bytes, step));
                }
                2 => {
                    if !live.is_empty() {
                        let i = rng.next_below(live.len() as u64) as usize;
                        let k = live.swap_remove(i);
                        fnet.abort(&topo, k);
                    }
                }
                _ => {
                    if let Some(next) = fnet.next_completion(now) {
                        now = next;
                        fnet.advance(&topo, now);
                        live.retain(|&k| fnet.rate_of(k).is_some());
                    }
                }
            }
            assert_rates_match(&fnet, &topo, &format!("step {step}"));
        }
        // Drain: completions must keep agreeing until the net is empty.
        while let Some(next) = fnet.next_completion(now) {
            now = next;
            fnet.advance(&topo, now);
            assert_rates_match(&fnet, &topo, "drain");
        }
        prop_assert_eq!(fnet.active(), 0);
    }

    /// Capacity changes (fault injection) fall back to the full pass and
    /// must leave the net in a state the oracle reproduces.
    #[test]
    fn capacity_change_resyncs(seed in any::<u64>()) {
        let (topo, links) = build_topology(&[4e6, 8e6, 2e6], 1);
        let mut fnet = FlowNet::new();
        let mut rng = SimRng::new(seed);
        for tok in 0..12u64 {
            let mut path = Vec::new();
            for &l in &links {
                if rng.chance(0.5) {
                    path.push(l);
                }
            }
            fnet.start(&topo, SimTime(0), path, 10_000 + tok, tok);
        }
        fnet.capacity_changed(&topo);
        assert_rates_match(&fnet, &topo, "capacity_changed");
        // And incremental mutations on top of the resync still agree.
        let k = fnet.start(&topo, SimTime(0), vec![links[1]], 5000, 99);
        assert_rates_match(&fnet, &topo, "start after capacity_changed");
        fnet.abort(&topo, k);
        assert_rates_match(&fnet, &topo, "abort after capacity_changed");
    }
}
