//! Optimized relsql paths vs the SQL-text oracle.
//!
//! The allocation pass rebuilt several relsql internals — interned
//! index keys (`Sym`/f64-bit keys instead of `format!`ed strings),
//! borrowed predicate evaluation, the parsed-statement cache, and the
//! direct row APIs (`insert_row`/`delete_where_eq`).  Each of those
//! must be *observably identical* to the plain SQL-text path it
//! bypasses: same result rows in the same order, same `scanned` and
//! `used_index` accounting (they feed simulated CPU costs), same
//! errors.  These properties drive random value mixes (INT/REAL
//! collisions, quotes in text, NULLs) through both paths and compare
//! whole `QueryResult`s.

use proptest::prelude::*;
use relsql::{parse_stmt, Database, QueryResult, SqlError, SqlValue};

/// A value pool that exercises every index-key class: whole reals that
/// collide with ints, negative zero, quoted text, NULL.
fn value_strategy() -> impl Strategy<Value = SqlValue> {
    prop_oneof![
        (-50i64..50).prop_map(SqlValue::Int),
        (-50i64..50).prop_map(|i| SqlValue::Real(i as f64)), // collides with Int
        (-500i64..500).prop_map(|i| SqlValue::Real(i as f64 / 10.0)),
        Just(SqlValue::Real(-0.0)),
        "[a-z '_%]{0,8}".prop_map(SqlValue::Text),
        Just(SqlValue::Null),
    ]
}

/// Literal form that round-trips through the lexer exactly like the
/// services' old `format!` queries did (whole reals printed `x.0`
/// still lex as REAL; ints as INT; quotes escape by doubling).
fn lit(v: &SqlValue) -> String {
    v.to_string()
}

#[derive(Debug, Clone)]
enum Op {
    /// Upsert `pk` — via SQL text on the oracle, direct APIs on the
    /// optimized side.
    Upsert(SqlValue, SqlValue, SqlValue),
    /// DELETE WHERE col = value (col 0 = indexed pk, col 1 = scan).
    DeleteEq(usize, SqlValue),
    /// SELECT with a WHERE shape: 0 = pk probe, 1 = unindexed eq,
    /// 2 = AND of both, 3 = full table.
    Select(usize, SqlValue, SqlValue),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let v = value_strategy;
    prop_oneof![
        (v(), v(), v()).prop_map(|(a, b, c)| Op::Upsert(a, b, c)),
        (0usize..2, v()).prop_map(|(c, x)| Op::DeleteEq(c, x)),
        (0usize..4, v(), v()).prop_map(|(s, a, b)| Op::Select(s, a, b)),
    ]
}

const SCHEMA: &str = "CREATE TABLE m (entity TEXT PRIMARY KEY, value REAL, note TEXT)";
const COLS: [&str; 2] = ["entity", "value"];

/// The oracle: every statement goes through fresh SQL text, parsed
/// anew each time (no statement cache, no direct row APIs).
fn oracle_exec(db: &mut Database, sql: &str) -> Result<QueryResult, SqlError> {
    let stmt = parse_stmt(sql)?;
    db.run(&stmt)
}

fn select_sql(shape: usize, a: &SqlValue, b: &SqlValue) -> String {
    match shape {
        0 => format!("SELECT * FROM m WHERE entity = {}", lit(a)),
        1 => format!("SELECT * FROM m WHERE value = {}", lit(a)),
        2 => format!(
            "SELECT * FROM m WHERE entity = {} AND value = {}",
            lit(a),
            lit(b)
        ),
        _ => "SELECT * FROM m".to_string(),
    }
}

proptest! {
    /// Any op sequence leaves the optimized database (direct APIs +
    /// statement cache + interned index keys) observably identical to
    /// the SQL-text oracle: same SELECT results — rows, order,
    /// `scanned`, `used_index` — and same row counts affected.
    #[test]
    fn optimized_paths_match_sql_oracle(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut fast = Database::new();
        let mut slow = Database::new();
        fast.execute(SCHEMA).unwrap();
        oracle_exec(&mut slow, SCHEMA).unwrap();

        for op in &ops {
            match op {
                Op::Upsert(k, v, n) => {
                    let affected = fast.delete_where_eq("m", "entity", k).unwrap();
                    let del = oracle_exec(
                        &mut slow,
                        &format!("DELETE FROM m WHERE entity = {}", lit(k)),
                    )
                    .unwrap();
                    prop_assert_eq!(affected, del.affected);
                    let direct = fast.insert_row("m", vec![k.clone(), v.clone(), n.clone()]);
                    let sql = oracle_exec(
                        &mut slow,
                        &format!("INSERT INTO m VALUES ({}, {}, {})", lit(k), lit(v), lit(n)),
                    );
                    prop_assert_eq!(direct.is_ok(), sql.is_ok(), "insert error surface diverged");
                }
                Op::DeleteEq(c, x) => {
                    let affected = fast.delete_where_eq("m", COLS[*c], x).unwrap();
                    let del = oracle_exec(
                        &mut slow,
                        &format!("DELETE FROM m WHERE {} = {}", COLS[*c], lit(x)),
                    )
                    .unwrap();
                    prop_assert_eq!(affected, del.affected);
                }
                Op::Select(shape, a, b) => {
                    let sql = select_sql(*shape, a, b);
                    // `execute` exercises the statement cache (repeat
                    // shapes re-hit the same text); the oracle re-parses.
                    let f = fast.execute(&sql).unwrap();
                    let s = oracle_exec(&mut slow, &sql).unwrap();
                    prop_assert_eq!(f, s, "select diverged for {}", sql);
                }
            }
            // Full-table dump after every mutation: identical stores.
            let f = fast.execute("SELECT * FROM m").unwrap();
            let s = oracle_exec(&mut slow, "SELECT * FROM m").unwrap();
            prop_assert_eq!(f, s, "table dump diverged");
        }
    }

    /// The index probe is pure optimization: a probed equality SELECT
    /// returns exactly the rows a full predicate scan keeps, in the
    /// same (row-id) order.
    #[test]
    fn index_probe_matches_scan(
        rows in proptest::collection::vec((value_strategy(), value_strategy()), 0..40),
        needle in value_strategy(),
    ) {
        let mut db = Database::new();
        db.execute(SCHEMA).unwrap();
        for (k, v) in &rows {
            // Ignore duplicate-pk rejections; both paths see one store.
            let _ = db.insert_row("m", vec![k.clone(), v.clone(), SqlValue::Null]);
        }
        let probed = db
            .execute(&format!("SELECT * FROM m WHERE entity = {}", lit(&needle)))
            .unwrap();
        let all = db.execute("SELECT * FROM m").unwrap();
        let scanned: Vec<_> = all
            .rows
            .iter()
            .filter(|r| r[0].compare(&needle) == Some(std::cmp::Ordering::Equal))
            .cloned()
            .collect();
        prop_assert_eq!(&probed.rows, &scanned, "probe vs scan rows diverged");
        if !needle.is_null() {
            prop_assert!(probed.used_index, "pk equality must use the index");
        }
    }
}
