//! Interned symbols vs plain strings.
//!
//! `Sym` replaces `String` keys throughout the hot paths on three
//! promises: id equality is string equality (the per-thread table is
//! deduplicated), `Ord` compares the resolved strings (so every
//! `BTreeMap<Sym, _>` iterates exactly like the `BTreeMap<String, _>`
//! it replaced — the figure CSVs are pinned on that order), and
//! `lookup` probes without inserting (a miss proves the string was
//! never interned, which the `HashMap<Sym, _>` probe pattern relies
//! on).  This suite checks each promise against the `String` oracle.

use gintern::Sym;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_name() -> impl Strategy<Value = String> {
    // The real vocabulary: short, repeat-heavy identifiers.
    "[a-d0-3]{0,6}"
}

proptest! {
    /// Eq/Ord/Display on `Sym` behave exactly like the strings they
    /// intern — including the case where both sides intern the same
    /// string and must collapse to one id.
    #[test]
    fn sym_relations_match_string_relations(a in arb_name(), b in arb_name()) {
        let (sa, sb) = (gintern::intern(&a), gintern::intern(&b));
        prop_assert_eq!(sa == sb, a == b);
        prop_assert_eq!(sa.cmp(&sb), a.cmp(&b));
        prop_assert_eq!(sa.as_str(), a.as_str());
        prop_assert_eq!(sa.to_string(), a.clone());
        // Re-interning is stable.
        prop_assert_eq!(gintern::intern(&a), sa);
        // A probe after interning always hits.
        prop_assert_eq!(gintern::lookup(&a), Some(sa));
    }

    /// A `BTreeMap<Sym, _>` built from any insertion sequence iterates
    /// in the same key order as the `BTreeMap<String, _>` oracle, and
    /// resolves the same values.
    #[test]
    fn btreemap_iteration_order_is_preserved(
        entries in proptest::collection::vec((arb_name(), 0u32..100), 0..32)
    ) {
        let mut by_sym: BTreeMap<Sym, u32> = BTreeMap::new();
        let mut by_str: BTreeMap<String, u32> = BTreeMap::new();
        for (k, v) in &entries {
            by_sym.insert(gintern::intern(k), *v);
            by_str.insert(k.clone(), *v);
        }
        prop_assert_eq!(by_sym.len(), by_str.len());
        for ((sk, sv), (tk, tv)) in by_sym.iter().zip(by_str.iter()) {
            prop_assert_eq!(sk.as_str(), tk.as_str());
            prop_assert_eq!(sv, tv);
        }
    }
}

#[test]
fn lookup_does_not_intern() {
    // A name that nothing in this test binary interns: a miss, and
    // still a miss afterwards (lookup must not grow the table).
    let probe = "intern-diff-never-interned-name";
    assert_eq!(gintern::lookup(probe), None);
    assert_eq!(gintern::lookup(probe), None);
    let len_before = gintern::table_len();
    assert_eq!(gintern::lookup(probe), None);
    assert_eq!(gintern::table_len(), len_before);
    // Interning it afterwards works and makes the probe hit.
    let sym = gintern::intern(probe);
    assert_eq!(gintern::lookup(probe), Some(sym));
}
