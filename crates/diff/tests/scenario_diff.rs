//! Scenario text format vs its own printer: `parse(print(spec))` must
//! reproduce the spec exactly — structure, fingerprint, and canonical
//! text — for randomly generated specs of every backend shape.  The
//! golden tests below pin the author-facing error messages word for
//! word: a misspelled backend, a dangling service reference, a
//! duplicate section and an off-testbed host must each name the
//! offender, because those strings are the scenario author's compiler
//! diagnostics.

use gscenario::{
    ClientCpu, Count, FaultKind, FaultPolicy, Placement, ProbeSpec, Query, ScenarioSpec,
    ServiceKind, ServiceSpec, SystemId, Ttl, WorkloadSpec,
};
use proptest::prelude::*;

/// The testbed's server-class hosts (there is no lucky2).
const LUCKY: [&str; 7] = [
    "lucky0", "lucky1", "lucky3", "lucky4", "lucky5", "lucky6", "lucky7",
];

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,11}"
}

fn arb_xs() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(1u32..300, 1..=4).prop_map(|mut xs| {
        xs.sort_unstable();
        xs.dedup();
        xs
    })
}

fn arb_count() -> impl Strategy<Value = Count> {
    prop_oneof![(1u32..40).prop_map(Count::Lit), Just(Count::X)]
}

fn arb_ttl() -> impl Strategy<Value = Ttl> {
    prop_oneof![
        Just(Ttl::Pinned),
        Just(Ttl::Zero),
        Just(Ttl::Exp4),
        (1u64..600).prop_map(Ttl::Secs),
    ]
}

fn arb_cpu() -> impl Strategy<Value = ClientCpu> {
    prop_oneof![
        Just(ClientCpu::Mds),
        Just(ClientCpu::Condor),
        Just(ClientCpu::Rgma),
    ]
}

fn arb_placement() -> impl Strategy<Value = Placement> {
    prop_oneof![
        Just(Placement::Uc),
        proptest::collection::vec(0usize..20, 1..=3).prop_map(|is| {
            Placement::Hosts(is.into_iter().map(|i| format!("uc{i:02}")).collect())
        }),
    ]
}

fn workload(
    users: Count,
    placement: Placement,
    target: &str,
    query: Query,
    cpu: ClientCpu,
    timeout_s: Option<u64>,
) -> WorkloadSpec {
    WorkloadSpec {
        users,
        placement,
        target: Some(target.to_string()),
        query,
        cpu,
        timeout_s,
    }
}

/// A hierarchical-GIIS federation: one top index, 1–3 branches each
/// carrying a mid-level GIIS plus its GRIS-fleet shard.
fn arb_mds() -> impl Strategy<Value = ScenarioSpec> {
    (
        arb_name(),
        arb_xs(),
        1u32..4,
        arb_ttl(),
        (arb_count(), arb_placement(), arb_cpu()),
        0u8..2,
    )
        .prop_map(
            |(name, xs, branches, ttl, (users, placement, cpu), probe)| {
                let mut services = vec![(
                    "top".to_string(),
                    ServiceSpec {
                        kind: ServiceKind::Giis {
                            cachettl: ttl,
                            parent: None,
                            branch: 0,
                        },
                        host: "lucky0".to_string(),
                    },
                )];
                for b in 0..branches {
                    let host = LUCKY[1 + b as usize].to_string();
                    services.push((
                        format!("mid{b}"),
                        ServiceSpec {
                            kind: ServiceKind::Giis {
                                cachettl: ttl,
                                parent: Some("top".to_string()),
                                branch: b,
                            },
                            host: host.clone(),
                        },
                    ));
                    services.push((
                        format!("shard{b}"),
                        ServiceSpec {
                            kind: ServiceKind::GrisFleet {
                                parent: format!("mid{b}"),
                                providers: 10,
                                share: (b, branches),
                            },
                            host,
                        },
                    ));
                }
                let probe = (probe == 1 && ttl != Ttl::Pinned).then(|| ProbeSpec::GiisFreshness {
                    giis: "top".to_string(),
                });
                ScenarioSpec {
                    name,
                    system: SystemId::Mds,
                    x_values: xs,
                    services,
                    watch: "lucky0".to_string(),
                    workload: workload(users, placement, "top", Query::MdsSearchAllGiis, cpu, None),
                    probe,
                    faults: None,
                }
            },
        )
}

/// An R-GMA mesh: registry, 1–5 ProducerServlets, one ConsumerServlet,
/// optionally churned and probed.
fn arb_rgma() -> impl Strategy<Value = ScenarioSpec> {
    (
        arb_name(),
        arb_xs(),
        1usize..6,
        arb_count(),
        (arb_count(), arb_cpu(), 0u64..20),
        (0u8..2, 0u8..2, 50u64..500),
    )
        .prop_map(
            |(name, xs, n_ps, producers, (users, cpu, timeout), (probe, fault, prime_ms))| {
                let mut services = vec![(
                    "reg".to_string(),
                    ServiceSpec {
                        kind: ServiceKind::Registry,
                        host: "lucky1".to_string(),
                    },
                )];
                let mut ps_hosts = Vec::new();
                for i in 0..n_ps {
                    let host = LUCKY[2 + i].to_string();
                    ps_hosts.push(host.clone());
                    services.push((
                        format!("ps{i}"),
                        ServiceSpec {
                            kind: ServiceKind::ProducerServlet {
                                producers,
                                registry: "reg".to_string(),
                            },
                            host,
                        },
                    ));
                }
                services.push((
                    "cs".to_string(),
                    ServiceSpec {
                        kind: ServiceKind::ConsumerServlet {
                            registry: "reg".to_string(),
                        },
                        host: "lucky0".to_string(),
                    },
                ));
                let faults = (fault == 1).then(|| FaultPolicy {
                    service: "rgma-producer-servlet".to_string(),
                    hosts: ps_hosts,
                    prime_ms,
                    scenario: FaultKind::Churn,
                });
                ScenarioSpec {
                    name,
                    system: SystemId::Rgma,
                    x_values: xs,
                    services,
                    watch: "lucky1".to_string(),
                    workload: workload(
                        users,
                        Placement::Uc,
                        "cs",
                        Query::RgmaConsumerQuery,
                        cpu,
                        (timeout > 0).then_some(timeout),
                    ),
                    probe: (probe == 1).then_some(ProbeSpec::RgmaProducers),
                    faults: None.or(faults),
                }
            },
        )
}

/// A Hawkeye pool: Manager, one Agent, optionally an advertiser fleet.
fn arb_hawkeye() -> impl Strategy<Value = ScenarioSpec> {
    (
        arb_name(),
        arb_xs(),
        (arb_count(), arb_count()),
        prop_oneof![
            Just(Query::HawkeyeAgentStatus),
            Just(Query::HawkeyeAgentFull),
            Just(Query::HawkeyeStatusRandom),
            Just(Query::HawkeyeConstraintMiss),
        ],
        (arb_count(), arb_cpu()),
        (0u8..2, 0u8..2),
    )
        .prop_map(
            |(name, xs, (modules, machines), query, (users, cpu), (fleet, probe))| {
                let mut services = vec![
                    (
                        "mgr".to_string(),
                        ServiceSpec {
                            kind: ServiceKind::Manager,
                            host: "lucky0".to_string(),
                        },
                    ),
                    (
                        "agent".to_string(),
                        ServiceSpec {
                            kind: ServiceKind::Agent {
                                modules,
                                manager: "mgr".to_string(),
                            },
                            host: "lucky3".to_string(),
                        },
                    ),
                ];
                if fleet == 1 {
                    services.push((
                        "ads".to_string(),
                        ServiceSpec {
                            kind: ServiceKind::AdvertiserFleet {
                                machines,
                                manager: "mgr".to_string(),
                            },
                            host: "lucky4".to_string(),
                        },
                    ));
                }
                ScenarioSpec {
                    name,
                    system: SystemId::Hawkeye,
                    x_values: xs,
                    services,
                    watch: "lucky0".to_string(),
                    workload: workload(users, Placement::Uc, "mgr", query, cpu, None),
                    probe: (probe == 1).then(|| ProbeSpec::HawkeyeAds {
                        manager: "mgr".to_string(),
                    }),
                    faults: None,
                }
            },
        )
}

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    prop_oneof![arb_mds(), arb_rgma(), arb_hawkeye()]
}

proptest! {
    /// print → parse is the identity on specs, and the canonical text is
    /// a fixed point (printing the re-parsed spec changes nothing).
    #[test]
    fn spec_round_trips_through_print_and_parse(spec in arb_spec()) {
        assert!(spec.validate().is_ok(), "generator made an invalid spec: {:?}", spec.validate());
        let text = spec.print();
        let back = gscenario::parse(&text)
            .unwrap_or_else(|e| panic!("canonical text failed to parse: {e}\n{text}"));
        assert_eq!(back, spec, "round-trip changed the spec:\n{text}");
        assert_eq!(back.fingerprint(), spec.fingerprint());
        assert_eq!(back.print(), text, "canonical text is not a fixed point");
    }
}

// ---------------------------------------------------------------------
// Golden error messages: the exact strings a scenario author sees.
// ---------------------------------------------------------------------

/// A minimal well-formed spec to mutate in the golden tests.
const GOOD: &str = r#"
name = "golden"
system = "rgma"
x = [1]
watch = "lucky1"

[service.reg]
kind = "rgma-registry"
host = "lucky1"

[service.cs]
kind = "rgma-consumer-servlet"
host = "lucky0"
registry = "reg"

[workload]
users = 5
placement = "uc"
target = "cs"
query = "rgma-consumer-query"
cpu = "rgma"
"#;

/// The author-facing diagnostic for a broken spec — `parse` validates
/// as it goes, so the error may surface at either stage.
fn validate_err(text: &str) -> String {
    match gscenario::parse(text) {
        Err(e) => e.to_string(),
        Ok(spec) => spec
            .validate()
            .expect_err("spec must not validate")
            .to_string(),
    }
}

#[test]
fn golden_spec_is_good() {
    let spec = gscenario::parse(GOOD).expect("golden spec parses");
    assert!(spec.validate().is_ok());
}

#[test]
fn unknown_backend_lists_the_known_ones() {
    let text = GOOD.replace("system = \"rgma\"", "system = \"ldap\"");
    let err = match gscenario::parse(&text) {
        Ok(spec) => spec
            .validate()
            .expect_err("unknown backend must not validate"),
        Err(e) => e,
    };
    assert_eq!(
        err.to_string(),
        "unknown backend \"ldap\": known backends are mds, rgma, hawkeye"
    );
}

#[test]
fn dangling_service_ref_names_field_and_target() {
    let err = validate_err(&GOOD.replace("registry = \"reg\"", "registry = \"nope\""));
    assert_eq!(err, "service \"cs\": registry = \"nope\" names no service");
}

#[test]
fn duplicate_service_name_is_called_out() {
    let err = validate_err(&GOOD.replace("[service.cs]", "[service.reg]"));
    assert_eq!(err, "duplicate service name \"reg\"");
}

#[test]
fn off_testbed_host_gets_the_host_roster() {
    // lucky2 does not exist — the paper's testbed skips it.
    let err = validate_err(&GOOD.replace("host = \"lucky0\"", "host = \"lucky2\""));
    assert_eq!(
        err,
        "service \"cs\": unknown host \"lucky2\" \
         (hosts: lucky0, lucky1, lucky3..lucky7, uc00..uc19)"
    );
}
