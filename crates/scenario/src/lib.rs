//! gridmon-scenario: experiments as data.
//!
//! A [`ScenarioSpec`] describes one sweepable experiment — which services
//! go on which testbed hosts, the closed-loop workload that drives them,
//! an optional resilience probe and an optional fault policy — without
//! any reference to the simulation crates.  The five built-in experiment
//! sets are `ScenarioSpec` values (see `gridmon_core::scenario::catalogue`),
//! and user-authored specs are written in a small TOML-like text format
//! parsed by [`parse`] and printed canonically by [`ScenarioSpec::print`].
//!
//! The crate is dependency-free on purpose: the runner folds
//! [`ScenarioSpec::fingerprint`] into its cache digests, so the identity
//! of a scenario must not hinge on anything but the spec's own canonical
//! text.
//!
//! # Text format
//!
//! ```text
//! name = "my-sweep"            # [A-Za-z0-9_-]+
//! system = "mds"               # mds | rgma | hawkeye
//! x = [1, 10, 50]              # the sweep's x-axis values
//! watch = "lucky0"             # host whose load1/CPU the figures report
//!
//! [service.giis]               # services deploy in file order
//! kind = "giis-pool"
//! host = "lucky0"
//! gris_hosts = ["lucky3", "lucky4"]
//! n_gris = "x"                 # counts are integers or "x"
//! cachettl = "exp4"            # pinned | zero | exp4 | <seconds>
//!
//! [workload]
//! users = 10
//! placement = "uc"             # "uc" | ["host", ...]; or per_service = [...]
//! target = "giis"
//! query = "mds-search-all-giis"
//! cpu = "mds"                  # mds | condor | rgma
//!
//! [probe]                      # optional resilience probe
//! kind = "giis-freshness"
//! giis = "giis"
//!
//! [faults]                     # optional fault policy
//! service = "gris"             # a deployed-service name() token
//! hosts = ["lucky3", "lucky4"]
//! prime_ms = 50
//! scenario = "partition"       # partition | churn
//! ```

use std::fmt;

// ======================================================================
// Data model
// ======================================================================

/// Which monitoring system a scenario measures (used for parameter
/// fingerprinting and catalogue grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemId {
    Mds,
    Rgma,
    Hawkeye,
}

impl SystemId {
    pub const ALL: [SystemId; 3] = [SystemId::Mds, SystemId::Rgma, SystemId::Hawkeye];

    pub fn as_str(self) -> &'static str {
        match self {
            SystemId::Mds => "mds",
            SystemId::Rgma => "rgma",
            SystemId::Hawkeye => "hawkeye",
        }
    }

    pub fn from_token(s: &str) -> Option<SystemId> {
        SystemId::ALL.into_iter().find(|b| b.as_str() == s)
    }
}

/// A count that is either a literal or the sweep variable `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Count {
    Lit(u32),
    X,
}

impl Count {
    pub fn eval(self, x: u32) -> u32 {
        match self {
            Count::Lit(n) => n,
            Count::X => x,
        }
    }
}

/// A cache TTL: pinned forever, zero (never cached), the Experiment-4
/// default, or explicit seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ttl {
    /// Data never expires (deploys with `cachettl = None`).
    Pinned,
    /// Data is never cached.
    Zero,
    /// The run parameters' Experiment-Set-4 cache TTL.
    Exp4,
    Secs(u64),
}

/// One deployable service.  Upstream references (`manager`, `registry`,
/// `parent`) name other services in the same spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceKind {
    /// An MDS GRIS with `providers` information providers.
    Gris {
        providers: Count,
        cache: bool,
        gsi: bool,
    },
    /// An MDS GIIS with `n_gris` child GRISes spread round-robin over
    /// `gris_hosts` (10 providers each) — the classic aggregate server.
    GiisPool {
        gris_hosts: Vec<String>,
        n_gris: Count,
        cachettl: Ttl,
    },
    /// A standalone MDS GIIS; with `parent` set it registers as branch
    /// `branch` of a higher-level index (hierarchical federation).
    Giis {
        cachettl: Ttl,
        parent: Option<String>,
        branch: u32,
    },
    /// A shard of `x` GRISes registered under `parent`: shard `i` of
    /// `of` (`share = "i/of"`) deploys its contiguous slice of the
    /// global 0..x index range, `providers` providers each.
    GrisFleet {
        parent: String,
        providers: u32,
        share: (u32, u32),
    },
    /// A Hawkeye Manager.
    Manager,
    /// A Hawkeye Agent with `modules` modules, advertising to `manager`.
    Agent { modules: Count, manager: String },
    /// The `hawkeye_advertise` fleet: `machines` simulated pool members.
    AdvertiserFleet { machines: Count, manager: String },
    /// The R-GMA Registry.
    Registry,
    /// An R-GMA ProducerServlet with `producers` producers.
    ProducerServlet { producers: Count, registry: String },
    /// An R-GMA ConsumerServlet pointed at `registry`.
    ConsumerServlet { registry: String },
    /// The Ganglia monitor.  Synthesized by the compiler from the
    /// top-level `watch` field; not writable in the text format.
    Monitor,
}

impl ServiceKind {
    /// The text-format token (`kind = "..."`).
    pub fn token(&self) -> &'static str {
        match self {
            ServiceKind::Gris { .. } => "gris",
            ServiceKind::GiisPool { .. } => "giis-pool",
            ServiceKind::Giis { .. } => "giis",
            ServiceKind::GrisFleet { .. } => "gris-fleet",
            ServiceKind::Manager => "hawkeye-manager",
            ServiceKind::Agent { .. } => "hawkeye-agent",
            ServiceKind::AdvertiserFleet { .. } => "hawkeye-advertiser-fleet",
            ServiceKind::Registry => "rgma-registry",
            ServiceKind::ProducerServlet { .. } => "rgma-producer-servlet",
            ServiceKind::ConsumerServlet { .. } => "rgma-consumer-servlet",
            ServiceKind::Monitor => "monitor",
        }
    }

    /// The upstream service this kind must be wired to, if any.
    pub fn upstream_ref(&self) -> Option<&str> {
        match self {
            ServiceKind::Giis { parent, .. } => parent.as_deref(),
            ServiceKind::GrisFleet { parent, .. } => Some(parent),
            ServiceKind::Agent { manager, .. } | ServiceKind::AdvertiserFleet { manager, .. } => {
                Some(manager)
            }
            ServiceKind::ProducerServlet { registry, .. }
            | ServiceKind::ConsumerServlet { registry } => Some(registry),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSpec {
    pub kind: ServiceKind,
    pub host: String,
}

/// Where the closed-loop users sit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Round-robin over the UC cluster (the paper's client farm).
    Uc,
    /// Round-robin over the named hosts.
    Hosts(Vec<String>),
    /// User `i` sits beside — and queries — service `names[i % len]`
    /// (e.g. one ConsumerServlet per client node).
    PerService(Vec<String>),
}

/// The query each user issues, named by system-specific token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// `mds-search-all-gris0`: everything under the GRIS resource suffix.
    MdsSearchAllGris0,
    /// `mds-search-all-giis`: everything under the GIIS site suffix.
    MdsSearchAllGiis,
    /// `mds-search-cpu` / `mds-search-cpu-attrs`: the cpu device group,
    /// optionally device names only.
    MdsSearchCpu { attrs_only: bool },
    /// `hawkeye-agent-status`.
    HawkeyeAgentStatus,
    /// `hawkeye-agent-full`.
    HawkeyeAgentFull,
    /// `hawkeye-status-random`: status of a random deployed agent host.
    HawkeyeStatusRandom,
    /// `hawkeye-constraint-miss`: a constraint no machine satisfies.
    HawkeyeConstraintMiss,
    /// `rgma-consumer-query`: `SELECT * FROM cpuload`.
    RgmaConsumerQuery,
    /// `rgma-producer-query-all`.
    RgmaProducerQueryAll,
    /// `rgma-registry-lookup-random`: lookup of a random producer table.
    RgmaRegistryLookupRandom,
}

impl Query {
    pub const ALL: [Query; 11] = [
        Query::MdsSearchAllGris0,
        Query::MdsSearchAllGiis,
        Query::MdsSearchCpu { attrs_only: false },
        Query::MdsSearchCpu { attrs_only: true },
        Query::HawkeyeAgentStatus,
        Query::HawkeyeAgentFull,
        Query::HawkeyeStatusRandom,
        Query::HawkeyeConstraintMiss,
        Query::RgmaConsumerQuery,
        Query::RgmaProducerQueryAll,
        Query::RgmaRegistryLookupRandom,
    ];

    pub fn token(self) -> &'static str {
        match self {
            Query::MdsSearchAllGris0 => "mds-search-all-gris0",
            Query::MdsSearchAllGiis => "mds-search-all-giis",
            Query::MdsSearchCpu { attrs_only: false } => "mds-search-cpu",
            Query::MdsSearchCpu { attrs_only: true } => "mds-search-cpu-attrs",
            Query::HawkeyeAgentStatus => "hawkeye-agent-status",
            Query::HawkeyeAgentFull => "hawkeye-agent-full",
            Query::HawkeyeStatusRandom => "hawkeye-status-random",
            Query::HawkeyeConstraintMiss => "hawkeye-constraint-miss",
            Query::RgmaConsumerQuery => "rgma-consumer-query",
            Query::RgmaProducerQueryAll => "rgma-producer-query-all",
            Query::RgmaRegistryLookupRandom => "rgma-registry-lookup-random",
        }
    }

    pub fn from_token(s: &str) -> Option<Query> {
        Query::ALL.into_iter().find(|q| q.token() == s)
    }
}

/// The client-side CPU cost model (per-system client stacks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientCpu {
    Mds,
    Condor,
    Rgma,
}

impl ClientCpu {
    pub fn token(self) -> &'static str {
        match self {
            ClientCpu::Mds => "mds",
            ClientCpu::Condor => "condor",
            ClientCpu::Rgma => "rgma",
        }
    }

    pub fn from_token(s: &str) -> Option<ClientCpu> {
        [ClientCpu::Mds, ClientCpu::Condor, ClientCpu::Rgma]
            .into_iter()
            .find(|c| c.token() == s)
    }

    /// The default cost model for a system's native client.
    pub fn default_for(sys: SystemId) -> ClientCpu {
        match sys {
            SystemId::Mds => ClientCpu::Mds,
            SystemId::Rgma => ClientCpu::Rgma,
            SystemId::Hawkeye => ClientCpu::Condor,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    pub users: Count,
    pub placement: Placement,
    /// The queried service (by spec name).  `None` only with
    /// [`Placement::PerService`], where each user queries its own service.
    pub target: Option<String>,
    pub query: Query,
    pub cpu: ClientCpu,
    /// Client-side query timeout; abandoned queries count against
    /// availability.
    pub timeout_s: Option<u64>,
}

/// The passive resilience probe (staleness/recovery gauges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeSpec {
    /// Watch a GIIS's max data age; fresh horizon = its cache TTL + 5 s.
    GiisFreshness { giis: String },
    /// Watch every deployed ProducerServlet's publication age.
    RgmaProducers,
    /// Watch a Manager's ad ages.
    HawkeyeAds { manager: String },
}

impl ProbeSpec {
    pub fn token(&self) -> &'static str {
        match self {
            ProbeSpec::GiisFreshness { .. } => "giis-freshness",
            ProbeSpec::RgmaProducers => "rgma-producers",
            ProbeSpec::HawkeyeAds { .. } => "hawkeye-ads",
        }
    }
}

/// What the fault scenario `auto` resolves to for this spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    Partition,
    Churn,
}

impl FaultKind {
    pub fn token(self) -> &'static str {
        match self {
            FaultKind::Partition => "partition",
            FaultKind::Churn => "churn",
        }
    }
}

/// The spec's fault policy: which deployed services (by `name()` token)
/// and which hosts' access links the schedule may hit, how restarted
/// services re-prime their kick timers, and the default scenario.  The
/// run's `FaultSpec` (onset/heal fractions, scenario override) still
/// comes from the `RunConfig`; the x value sets how many targets fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPolicy {
    /// A deployed-service `name()` token, e.g. `gris` or `hawkeye-agent`.
    pub service: String,
    pub hosts: Vec<String>,
    pub prime_ms: u64,
    pub scenario: FaultKind,
}

/// One declarative, sweepable experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    pub name: String,
    pub system: SystemId,
    pub x_values: Vec<u32>,
    /// Services in deployment order (order is semantic: it fixes the
    /// RNG streams and the t=0 start order, hence the exact trajectory).
    pub services: Vec<(String, ServiceSpec)>,
    /// The host whose load1/CPU the figures report (Ganglia monitor).
    pub watch: String,
    pub workload: WorkloadSpec,
    pub probe: Option<ProbeSpec>,
    pub faults: Option<FaultPolicy>,
}

// ======================================================================
// The testbed's host namespace
// ======================================================================

/// The fixed Lucky/UC testbed host names (`lucky0`..`lucky7` minus the
/// dead `lucky2`, plus `uc00`..`uc19`).  Scenario host references are
/// validated against this list at parse time so a dangling node
/// reference fails with a message instead of a deep deploy panic.
pub fn known_host(name: &str) -> bool {
    match name {
        "lucky0" | "lucky1" | "lucky3" | "lucky4" | "lucky5" | "lucky6" | "lucky7" => true,
        _ => name
            .strip_prefix("uc")
            .filter(|d| d.len() == 2 && d.bytes().all(|b| b.is_ascii_digit()))
            .is_some_and(|d| d.parse::<u32>().is_ok_and(|n| n < 20)),
    }
}

const HOST_HINT: &str = "hosts: lucky0, lucky1, lucky3..lucky7, uc00..uc19";

/// Deployed-service `name()` tokens a fault policy may target.
const FAULTABLE: [&str; 9] = [
    "gris",
    "giis",
    "hawkeye-manager",
    "hawkeye-agent",
    "hawkeye-advertiser-fleet",
    "rgma-registry",
    "rgma-producer-servlet",
    "rgma-consumer-servlet",
    "rgma-composite-producer",
];

// ======================================================================
// Errors
// ======================================================================

/// A typed scenario error with a stable, golden-tested message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    Syntax {
        line: usize,
        msg: String,
    },
    /// `system = "..."` names no known backend.
    UnknownBackend(String),
    /// A `host` (or host list entry) is not on the testbed.
    UnknownHost {
        at: String,
        host: String,
    },
    /// A service reference names no `[service.*]` section.
    DanglingRef {
        at: String,
        field: &'static str,
        target: String,
    },
    /// Two `[service.NAME]` sections share a name.
    DuplicateService(String),
    MissingField {
        at: String,
        field: &'static str,
    },
    BadValue {
        at: String,
        field: String,
        msg: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ScenarioError::UnknownBackend(b) => {
                write!(
                    f,
                    "unknown backend {b:?}: known backends are mds, rgma, hawkeye"
                )
            }
            ScenarioError::UnknownHost { at, host } => {
                write!(f, "{at}: unknown host {host:?} ({HOST_HINT})")
            }
            ScenarioError::DanglingRef { at, field, target } => {
                write!(f, "{at}: {field} = {target:?} names no service")
            }
            ScenarioError::DuplicateService(name) => {
                write!(f, "duplicate service name {name:?}")
            }
            ScenarioError::MissingField { at, field } => {
                write!(f, "{at}: missing required field {field:?}")
            }
            ScenarioError::BadValue { at, field, msg } => {
                write!(f, "{at}: bad value for {field:?}: {msg}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

// ======================================================================
// Parser
// ======================================================================

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    Int(u64),
    Bool(bool),
    StrList(Vec<String>),
    IntList(Vec<u64>),
}

impl Val {
    fn type_name(&self) -> &'static str {
        match self {
            Val::Str(_) => "string",
            Val::Int(_) => "integer",
            Val::Bool(_) => "boolean",
            Val::StrList(_) => "string list",
            Val::IntList(_) => "integer list",
        }
    }
}

struct Fields {
    at: String,
    entries: Vec<(String, Val, usize)>,
    /// Which keys were consumed by the typed extraction (strictness).
    used: Vec<bool>,
}

impl Fields {
    fn new(at: String) -> Fields {
        Fields {
            at,
            entries: Vec::new(),
            used: Vec::new(),
        }
    }

    fn push(&mut self, key: String, val: Val, line: usize) {
        self.entries.push((key, val, line));
        self.used.push(false);
    }

    fn get(&mut self, key: &str) -> Option<&Val> {
        for (i, (k, _, _)) in self.entries.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Some(&self.entries[i].1);
            }
        }
        None
    }

    fn bad(&self, field: &str, msg: impl Into<String>) -> ScenarioError {
        ScenarioError::BadValue {
            at: self.at.clone(),
            field: field.to_string(),
            msg: msg.into(),
        }
    }

    fn require(&mut self, field: &'static str) -> Result<&Val, ScenarioError> {
        let at = self.at.clone();
        // Split borrow dance: look up index first.
        let idx = self.entries.iter().position(|(k, _, _)| k == field);
        match idx {
            Some(i) => {
                self.used[i] = true;
                Ok(&self.entries[i].1)
            }
            None => Err(ScenarioError::MissingField { at, field }),
        }
    }

    fn str_of(&mut self, field: &'static str) -> Result<String, ScenarioError> {
        match self.require(field)? {
            Val::Str(s) => Ok(s.clone()),
            v => {
                let t = v.type_name();
                Err(self.bad(field, format!("expected a string, got {t}")))
            }
        }
    }

    fn opt_str(&mut self, field: &str) -> Result<Option<String>, ScenarioError> {
        match self.get(field) {
            None => Ok(None),
            Some(Val::Str(s)) => Ok(Some(s.clone())),
            Some(v) => {
                let t = v.type_name();
                Err(self.bad(field, format!("expected a string, got {t}")))
            }
        }
    }

    fn opt_int(&mut self, field: &str) -> Result<Option<u64>, ScenarioError> {
        match self.get(field) {
            None => Ok(None),
            Some(Val::Int(n)) => Ok(Some(*n)),
            Some(v) => {
                let t = v.type_name();
                Err(self.bad(field, format!("expected an integer, got {t}")))
            }
        }
    }

    fn opt_bool(&mut self, field: &str) -> Result<Option<bool>, ScenarioError> {
        match self.get(field) {
            None => Ok(None),
            Some(Val::Bool(b)) => Ok(Some(*b)),
            Some(v) => {
                let t = v.type_name();
                Err(self.bad(field, format!("expected true/false, got {t}")))
            }
        }
    }

    fn str_list(&mut self, field: &'static str) -> Result<Vec<String>, ScenarioError> {
        match self.require(field)? {
            Val::StrList(v) if !v.is_empty() => Ok(v.clone()),
            Val::StrList(_) => Err(self.bad(field, "list must not be empty")),
            v => {
                let t = v.type_name();
                Err(self.bad(field, format!("expected a string list, got {t}")))
            }
        }
    }

    /// A count: integer literal or the string `"x"`.
    fn count(&mut self, field: &'static str) -> Result<Count, ScenarioError> {
        match self.require(field)? {
            Val::Int(n) => {
                let n = *n;
                u32::try_from(n)
                    .map(Count::Lit)
                    .map_err(|_| self.bad(field, format!("{n} does not fit in u32")))
            }
            Val::Str(s) if s == "x" => Ok(Count::X),
            v => {
                let t = v.type_name();
                Err(self.bad(field, format!("expected an integer or \"x\", got {t}")))
            }
        }
    }

    /// A TTL: `"pinned"`, `"zero"`, `"exp4"`, or integer seconds.
    fn ttl(&mut self, field: &'static str) -> Result<Ttl, ScenarioError> {
        match self.require(field)? {
            Val::Int(n) => Ok(Ttl::Secs(*n)),
            Val::Str(s) => match s.as_str() {
                "pinned" => Ok(Ttl::Pinned),
                "zero" => Ok(Ttl::Zero),
                "exp4" => Ok(Ttl::Exp4),
                other => {
                    let o = other.to_string();
                    Err(self.bad(
                        field,
                        format!("expected pinned/zero/exp4/seconds, got {o:?}"),
                    ))
                }
            },
            v => {
                let t = v.type_name();
                Err(self.bad(field, format!("expected a TTL, got {t}")))
            }
        }
    }

    /// Reject unknown keys so typos fail loudly.
    fn finish(self) -> Result<(), ScenarioError> {
        for (i, (k, _, line)) in self.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(ScenarioError::Syntax {
                    line: *line,
                    msg: format!("unknown field {k:?} in {}", self.at),
                });
            }
        }
        Ok(())
    }
}

fn parse_value(raw: &str, line: usize) -> Result<Val, ScenarioError> {
    let syntax = |msg: String| ScenarioError::Syntax { line, msg };
    let s = raw.trim();
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| syntax(format!("unterminated string {s:?}")))?;
        if body.contains('"') {
            return Err(syntax(format!("embedded quote in string {s:?}")));
        }
        return Ok(Val::Str(body.to_string()));
    }
    if s == "true" {
        return Ok(Val::Bool(true));
    }
    if s == "false" {
        return Ok(Val::Bool(false));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| syntax(format!("unterminated list {s:?}")))?;
        let items: Vec<&str> = body
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .collect();
        let mut strs = Vec::new();
        let mut ints = Vec::new();
        for item in &items {
            match parse_value(item, line)? {
                Val::Str(v) => strs.push(v),
                Val::Int(v) => ints.push(v),
                other => {
                    return Err(syntax(format!(
                        "lists hold strings or integers, got {}",
                        other.type_name()
                    )))
                }
            }
        }
        if !strs.is_empty() && !ints.is_empty() {
            return Err(syntax("mixed string/integer list".to_string()));
        }
        if !strs.is_empty() {
            return Ok(Val::StrList(strs));
        }
        return Ok(Val::IntList(ints));
    }
    s.parse::<u64>()
        .map(Val::Int)
        .map_err(|_| syntax(format!("unrecognised value {s:?}")))
}

/// Strip a trailing comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// Parse the text format into a validated [`ScenarioSpec`].
pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
    // ---- raw pass: split into the top-level block and named sections.
    let mut top = Fields::new("top level".to_string());
    let mut sections: Vec<Fields> = Vec::new();
    let mut service_names: Vec<String> = Vec::new();
    // Indices into `sections` per role.
    let mut service_idx: Vec<usize> = Vec::new();
    let mut workload_idx: Option<usize> = None;
    let mut probe_idx: Option<usize> = None;
    let mut faults_idx: Option<usize> = None;
    let mut current: Option<usize> = None;

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = lineno + 1;
        let l = strip_comment(raw_line).trim();
        if l.is_empty() {
            continue;
        }
        let syntax = |msg: String| ScenarioError::Syntax { line, msg };
        if let Some(head) = l.strip_prefix('[') {
            let head = head
                .strip_suffix(']')
                .ok_or_else(|| syntax(format!("unterminated section header {l:?}")))?
                .trim();
            if let Some(name) = head.strip_prefix("service.") {
                if !valid_name(name) {
                    return Err(syntax(format!("bad service name {name:?}")));
                }
                if service_names.iter().any(|n| n == name) {
                    return Err(ScenarioError::DuplicateService(name.to_string()));
                }
                service_names.push(name.to_string());
                sections.push(Fields::new(format!("service {name:?}")));
                service_idx.push(sections.len() - 1);
            } else {
                let slot = match head {
                    "workload" => &mut workload_idx,
                    "probe" => &mut probe_idx,
                    "faults" => &mut faults_idx,
                    other => {
                        return Err(syntax(format!("unknown section [{other}]")));
                    }
                };
                if slot.is_some() {
                    return Err(syntax(format!("duplicate section [{head}]")));
                }
                sections.push(Fields::new(format!("[{head}]")));
                *slot = Some(sections.len() - 1);
            }
            current = Some(sections.len() - 1);
            continue;
        }
        let (key, val) = l
            .split_once('=')
            .ok_or_else(|| syntax(format!("expected `key = value`, got {l:?}")))?;
        let key = key.trim();
        if !valid_name(key) {
            return Err(syntax(format!("bad key {key:?}")));
        }
        let val = parse_value(val, line)?;
        match current {
            None => top.push(key.to_string(), val, line),
            Some(i) => sections[i].push(key.to_string(), val, line),
        }
    }

    // ---- typed pass: top level.
    let name = top.str_of("name")?;
    if !valid_name(&name) {
        return Err(top.bad("name", "use [A-Za-z0-9_-]+"));
    }
    let system_s = top.str_of("system")?;
    let system = SystemId::from_token(&system_s).ok_or(ScenarioError::UnknownBackend(system_s))?;
    let x_values: Vec<u32> = match top.require("x")? {
        Val::IntList(v) if !v.is_empty() => v
            .iter()
            .map(|&n| u32::try_from(n))
            .collect::<Result<_, _>>()
            .map_err(|_| top.bad("x", "values must fit in u32"))?,
        Val::IntList(_) => return Err(top.bad("x", "list must not be empty")),
        v => {
            let t = v.type_name();
            return Err(top.bad("x", format!("expected an integer list, got {t}")));
        }
    };
    let watch = top.str_of("watch")?;
    if !known_host(&watch) {
        return Err(ScenarioError::UnknownHost {
            at: "top level".to_string(),
            host: watch,
        });
    }
    top.finish()?;

    // ---- services.
    let mut services: Vec<(String, ServiceSpec)> = Vec::new();
    for (si, &idx) in service_idx.iter().enumerate() {
        let sname = service_names[si].clone();
        let mut f = std::mem::replace(&mut sections[idx], Fields::new(String::new()));
        let at = f.at.clone();
        let host = f.str_of("host")?;
        if !known_host(&host) {
            return Err(ScenarioError::UnknownHost { at, host });
        }
        let kind_s = f.str_of("kind")?;
        let kind = match kind_s.as_str() {
            "gris" => ServiceKind::Gris {
                providers: f.count("providers")?,
                cache: f.opt_bool("cache")?.unwrap_or(true),
                gsi: f.opt_bool("gsi")?.unwrap_or(false),
            },
            "giis-pool" => {
                let gris_hosts = f.str_list("gris_hosts")?;
                for hst in &gris_hosts {
                    if !known_host(hst) {
                        return Err(ScenarioError::UnknownHost {
                            at: f.at.clone(),
                            host: hst.clone(),
                        });
                    }
                }
                ServiceKind::GiisPool {
                    gris_hosts,
                    n_gris: f.count("n_gris")?,
                    cachettl: f.ttl("cachettl")?,
                }
            }
            "giis" => {
                let parent = f.opt_str("parent")?;
                let branch = f.opt_int("branch")?;
                if parent.is_none() && branch.is_some() {
                    return Err(f.bad("branch", "only meaningful with a parent"));
                }
                let branch = match branch {
                    Some(b) => u32::try_from(b).map_err(|_| f.bad("branch", "must fit in u32"))?,
                    None => 0,
                };
                ServiceKind::Giis {
                    cachettl: f.ttl("cachettl")?,
                    parent,
                    branch,
                }
            }
            "gris-fleet" => {
                let share_s = f.str_of("share")?;
                let share = share_s
                    .split_once('/')
                    .and_then(|(i, of)| Some((i.parse().ok()?, of.parse().ok()?)))
                    .filter(|&(i, of): &(u32, u32)| of > 0 && i < of)
                    .ok_or_else(|| f.bad("share", "expected \"i/of\" with i < of"))?;
                let providers = f.opt_int("providers")?.unwrap_or(10);
                ServiceKind::GrisFleet {
                    parent: f.str_of("parent")?,
                    providers: u32::try_from(providers)
                        .map_err(|_| f.bad("providers", "must fit in u32"))?,
                    share,
                }
            }
            "hawkeye-manager" => ServiceKind::Manager,
            "hawkeye-agent" => ServiceKind::Agent {
                modules: f.count("modules")?,
                manager: f.str_of("manager")?,
            },
            "hawkeye-advertiser-fleet" => ServiceKind::AdvertiserFleet {
                machines: f.count("machines")?,
                manager: f.str_of("manager")?,
            },
            "rgma-registry" => ServiceKind::Registry,
            "rgma-producer-servlet" => ServiceKind::ProducerServlet {
                producers: f.count("producers")?,
                registry: f.str_of("registry")?,
            },
            "rgma-consumer-servlet" => ServiceKind::ConsumerServlet {
                registry: f.str_of("registry")?,
            },
            other => {
                let o = other.to_string();
                return Err(f.bad(
                    "kind",
                    format!("unknown service kind {o:?} (the monitor comes from `watch`)"),
                ));
            }
        };
        f.finish()?;
        services.push((sname, ServiceSpec { kind, host }));
    }

    // ---- workload.
    let widx = workload_idx.ok_or(ScenarioError::MissingField {
        at: "top level".to_string(),
        field: "[workload]",
    })?;
    let mut f = std::mem::replace(&mut sections[widx], Fields::new(String::new()));
    let users = f.count("users")?;
    let per_service = match f.get("per_service").cloned() {
        None => None,
        Some(Val::StrList(v)) if !v.is_empty() => Some(v),
        Some(Val::StrList(_)) => return Err(f.bad("per_service", "list must not be empty")),
        Some(v) => {
            let t = v.type_name();
            return Err(f.bad("per_service", format!("expected a string list, got {t}")));
        }
    };
    let placement = match per_service {
        Some(names) => {
            if f.get("placement").is_some() {
                return Err(f.bad("placement", "mutually exclusive with per_service"));
            }
            Placement::PerService(names)
        }
        None => match f.get("placement").cloned() {
            None => Placement::Uc,
            Some(Val::Str(s)) if s == "uc" => Placement::Uc,
            Some(Val::Str(s)) => {
                return Err(f.bad(
                    "placement",
                    format!("expected \"uc\" or a host list, got {s:?}"),
                ))
            }
            Some(Val::StrList(hosts)) => {
                for hst in &hosts {
                    if !known_host(hst) {
                        return Err(ScenarioError::UnknownHost {
                            at: f.at.clone(),
                            host: hst.clone(),
                        });
                    }
                }
                Placement::Hosts(hosts)
            }
            Some(v) => {
                let t = v.type_name();
                return Err(f.bad(
                    "placement",
                    format!("expected \"uc\" or a host list, got {t}"),
                ));
            }
        },
    };
    let target = f.opt_str("target")?;
    if matches!(placement, Placement::PerService(_)) {
        if target.is_some() {
            return Err(f.bad("target", "per_service users query their own service"));
        }
    } else if target.is_none() {
        return Err(ScenarioError::MissingField {
            at: f.at.clone(),
            field: "target",
        });
    }
    let query_s = f.str_of("query")?;
    let query = Query::from_token(&query_s)
        .ok_or_else(|| f.bad("query", format!("unknown query token {query_s:?}")))?;
    let cpu = match f.opt_str("cpu")? {
        None => ClientCpu::default_for(system),
        Some(s) => ClientCpu::from_token(&s)
            .ok_or_else(|| f.bad("cpu", format!("expected mds/condor/rgma, got {s:?}")))?,
    };
    let timeout_s = f.opt_int("timeout_s")?;
    f.finish()?;
    let workload = WorkloadSpec {
        users,
        placement,
        target,
        query,
        cpu,
        timeout_s,
    };

    // ---- probe.
    let probe = match probe_idx {
        None => None,
        Some(idx) => {
            let mut f = std::mem::replace(&mut sections[idx], Fields::new(String::new()));
            let kind = f.str_of("kind")?;
            let p = match kind.as_str() {
                "giis-freshness" => ProbeSpec::GiisFreshness {
                    giis: f.str_of("giis")?,
                },
                "rgma-producers" => ProbeSpec::RgmaProducers,
                "hawkeye-ads" => ProbeSpec::HawkeyeAds {
                    manager: f.str_of("manager")?,
                },
                other => {
                    let o = other.to_string();
                    return Err(f.bad("kind", format!("unknown probe kind {o:?}")));
                }
            };
            f.finish()?;
            Some(p)
        }
    };

    // ---- faults.
    let faults = match faults_idx {
        None => None,
        Some(idx) => {
            let mut f = std::mem::replace(&mut sections[idx], Fields::new(String::new()));
            let service = f.str_of("service")?;
            if !FAULTABLE.contains(&service.as_str()) {
                return Err(f.bad(
                    "service",
                    format!("unknown service token {service:?} (use a deployed name() token)"),
                ));
            }
            let hosts = f.str_list("hosts")?;
            for hst in &hosts {
                if !known_host(hst) {
                    return Err(ScenarioError::UnknownHost {
                        at: f.at.clone(),
                        host: hst.clone(),
                    });
                }
            }
            let prime_ms = f.opt_int("prime_ms")?.ok_or(ScenarioError::MissingField {
                at: f.at.clone(),
                field: "prime_ms",
            })?;
            let scenario_s = f.str_of("scenario")?;
            let scenario = match scenario_s.as_str() {
                "partition" => FaultKind::Partition,
                "churn" => FaultKind::Churn,
                other => {
                    let o = other.to_string();
                    return Err(f.bad("scenario", format!("expected partition/churn, got {o:?}")));
                }
            };
            f.finish()?;
            Some(FaultPolicy {
                service,
                hosts,
                prime_ms,
                scenario,
            })
        }
    };

    let spec = ScenarioSpec {
        name,
        system,
        x_values,
        services,
        watch,
        workload,
        probe,
        faults,
    };
    spec.validate()?;
    Ok(spec)
}

// ======================================================================
// Validation (shared by the parser and hand-built specs)
// ======================================================================

impl ScenarioSpec {
    /// Cross-reference validation: every service reference must resolve
    /// to an *earlier* `[service.*]` section (deploy order is file
    /// order), and referenced kinds must make sense.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let mut seen: Vec<&str> = Vec::new();
        for (name, svc) in &self.services {
            if seen.contains(&name.as_str()) {
                return Err(ScenarioError::DuplicateService(name.clone()));
            }
            let at = format!("service {name:?}");
            if !known_host(&svc.host) {
                return Err(ScenarioError::UnknownHost {
                    at,
                    host: svc.host.clone(),
                });
            }
            if let Some(up) = svc.kind.upstream_ref() {
                if !seen.contains(&up) {
                    let field = match &svc.kind {
                        ServiceKind::Giis { .. } | ServiceKind::GrisFleet { .. } => "parent",
                        ServiceKind::Agent { .. } | ServiceKind::AdvertiserFleet { .. } => {
                            "manager"
                        }
                        _ => "registry",
                    };
                    return Err(ScenarioError::DanglingRef {
                        at,
                        field,
                        target: up.to_string(),
                    });
                }
            }
            if matches!(svc.kind, ServiceKind::Monitor) {
                return Err(ScenarioError::BadValue {
                    at,
                    field: "kind".to_string(),
                    msg: "the monitor is synthesized from `watch`".to_string(),
                });
            }
            seen.push(name);
        }
        let names: Vec<&str> = self.services.iter().map(|(n, _)| n.as_str()).collect();
        let check = |at: &str, field: &'static str, target: &str| {
            if names.contains(&target) {
                Ok(())
            } else {
                Err(ScenarioError::DanglingRef {
                    at: at.to_string(),
                    field,
                    target: target.to_string(),
                })
            }
        };
        match &self.workload.placement {
            Placement::PerService(targets) => {
                for t in targets {
                    check("[workload]", "per_service", t)?;
                }
            }
            Placement::Hosts(hosts) => {
                for hst in hosts {
                    if !known_host(hst) {
                        return Err(ScenarioError::UnknownHost {
                            at: "[workload]".to_string(),
                            host: hst.clone(),
                        });
                    }
                }
            }
            Placement::Uc => {}
        }
        if let Some(t) = &self.workload.target {
            check("[workload]", "target", t)?;
        }
        match &self.probe {
            Some(ProbeSpec::GiisFreshness { giis }) => check("[probe]", "giis", giis)?,
            Some(ProbeSpec::HawkeyeAds { manager }) => check("[probe]", "manager", manager)?,
            Some(ProbeSpec::RgmaProducers) | None => {}
        }
        if let Some(fp) = &self.faults {
            for hst in &fp.hosts {
                if !known_host(hst) {
                    return Err(ScenarioError::UnknownHost {
                        at: "[faults]".to_string(),
                        host: hst.clone(),
                    });
                }
            }
        }
        if !known_host(&self.watch) {
            return Err(ScenarioError::UnknownHost {
                at: "top level".to_string(),
                host: self.watch.clone(),
            });
        }
        Ok(())
    }
}

// ======================================================================
// Canonical printer
// ======================================================================

fn push_count(out: &mut String, key: &str, c: Count) {
    match c {
        Count::Lit(n) => out.push_str(&format!("{key} = {n}\n")),
        Count::X => out.push_str(&format!("{key} = \"x\"\n")),
    }
}

fn push_ttl(out: &mut String, ttl: Ttl) {
    match ttl {
        Ttl::Pinned => out.push_str("cachettl = \"pinned\"\n"),
        Ttl::Zero => out.push_str("cachettl = \"zero\"\n"),
        Ttl::Exp4 => out.push_str("cachettl = \"exp4\"\n"),
        Ttl::Secs(n) => out.push_str(&format!("cachettl = {n}\n")),
    }
}

fn str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("{s:?}")).collect();
    format!("[{}]", quoted.join(", "))
}

impl ScenarioSpec {
    /// Render the spec in the text format, canonically: fixed key order,
    /// one blank line between sections.  `parse(print(spec)) == spec`
    /// for every valid spec, and the fingerprint hashes this text.
    pub fn print(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name = {:?}\n", self.name));
        out.push_str(&format!("system = {:?}\n", self.system.as_str()));
        let xs: Vec<String> = self.x_values.iter().map(u32::to_string).collect();
        out.push_str(&format!("x = [{}]\n", xs.join(", ")));
        out.push_str(&format!("watch = {:?}\n", self.watch));
        for (name, svc) in &self.services {
            out.push_str(&format!("\n[service.{name}]\n"));
            out.push_str(&format!("kind = {:?}\n", svc.kind.token()));
            out.push_str(&format!("host = {:?}\n", svc.host));
            match &svc.kind {
                ServiceKind::Gris {
                    providers,
                    cache,
                    gsi,
                } => {
                    push_count(&mut out, "providers", *providers);
                    out.push_str(&format!("cache = {cache}\n"));
                    out.push_str(&format!("gsi = {gsi}\n"));
                }
                ServiceKind::GiisPool {
                    gris_hosts,
                    n_gris,
                    cachettl,
                } => {
                    out.push_str(&format!("gris_hosts = {}\n", str_list(gris_hosts)));
                    push_count(&mut out, "n_gris", *n_gris);
                    push_ttl(&mut out, *cachettl);
                }
                ServiceKind::Giis {
                    cachettl,
                    parent,
                    branch,
                } => {
                    push_ttl(&mut out, *cachettl);
                    if let Some(p) = parent {
                        out.push_str(&format!("parent = {p:?}\n"));
                        out.push_str(&format!("branch = {branch}\n"));
                    }
                }
                ServiceKind::GrisFleet {
                    parent,
                    providers,
                    share,
                } => {
                    out.push_str(&format!("parent = {parent:?}\n"));
                    out.push_str(&format!("providers = {providers}\n"));
                    out.push_str(&format!("share = \"{}/{}\"\n", share.0, share.1));
                }
                ServiceKind::Agent { modules, manager } => {
                    push_count(&mut out, "modules", *modules);
                    out.push_str(&format!("manager = {manager:?}\n"));
                }
                ServiceKind::AdvertiserFleet { machines, manager } => {
                    push_count(&mut out, "machines", *machines);
                    out.push_str(&format!("manager = {manager:?}\n"));
                }
                ServiceKind::ProducerServlet {
                    producers,
                    registry,
                } => {
                    push_count(&mut out, "producers", *producers);
                    out.push_str(&format!("registry = {registry:?}\n"));
                }
                ServiceKind::ConsumerServlet { registry } => {
                    out.push_str(&format!("registry = {registry:?}\n"));
                }
                ServiceKind::Manager | ServiceKind::Registry | ServiceKind::Monitor => {}
            }
        }
        out.push_str("\n[workload]\n");
        push_count(&mut out, "users", self.workload.users);
        match &self.workload.placement {
            Placement::Uc => out.push_str("placement = \"uc\"\n"),
            Placement::Hosts(hosts) => {
                out.push_str(&format!("placement = {}\n", str_list(hosts)));
            }
            Placement::PerService(names) => {
                out.push_str(&format!("per_service = {}\n", str_list(names)));
            }
        }
        if let Some(t) = &self.workload.target {
            out.push_str(&format!("target = {t:?}\n"));
        }
        out.push_str(&format!("query = {:?}\n", self.workload.query.token()));
        out.push_str(&format!("cpu = {:?}\n", self.workload.cpu.token()));
        if let Some(t) = self.workload.timeout_s {
            out.push_str(&format!("timeout_s = {t}\n"));
        }
        if let Some(p) = &self.probe {
            out.push_str("\n[probe]\n");
            out.push_str(&format!("kind = {:?}\n", p.token()));
            match p {
                ProbeSpec::GiisFreshness { giis } => {
                    out.push_str(&format!("giis = {giis:?}\n"));
                }
                ProbeSpec::HawkeyeAds { manager } => {
                    out.push_str(&format!("manager = {manager:?}\n"));
                }
                ProbeSpec::RgmaProducers => {}
            }
        }
        if let Some(fp) = &self.faults {
            out.push_str("\n[faults]\n");
            out.push_str(&format!("service = {:?}\n", fp.service));
            out.push_str(&format!("hosts = {}\n", str_list(&fp.hosts)));
            out.push_str(&format!("prime_ms = {}\n", fp.prime_ms));
            out.push_str(&format!("scenario = {:?}\n", fp.scenario.token()));
        }
        out
    }

    /// A stable 128-bit fingerprint of the canonical text, as 32 hex
    /// digits.  Folded into runner cache digests: any semantic change to
    /// a spec re-addresses every cached point it produced.
    pub fn fingerprint(&self) -> String {
        let text = self.print();
        let a = fnv1a64(0xcbf2_9ce4_8422_2325, text.as_bytes());
        let b = fnv1a64(a ^ 0x9e37_79b9_7f4a_7c15, text.as_bytes());
        format!("{a:016x}{b:016x}")
    }
}

/// FNV-1a with a selectable basis (the standard offset basis gives the
/// reference FNV-1a).  Kept local: the fingerprint must not depend on
/// another crate's hash evolving.
fn fnv1a64(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ======================================================================
// Tests
// ======================================================================

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioSpec {
        ScenarioSpec {
            name: "sample".to_string(),
            system: SystemId::Mds,
            x_values: vec![1, 10, 50],
            services: vec![(
                "giis".to_string(),
                ServiceSpec {
                    kind: ServiceKind::GiisPool {
                        gris_hosts: vec!["lucky3".to_string(), "lucky4".to_string()],
                        n_gris: Count::X,
                        cachettl: Ttl::Exp4,
                    },
                    host: "lucky0".to_string(),
                },
            )],
            watch: "lucky0".to_string(),
            workload: WorkloadSpec {
                users: Count::Lit(10),
                placement: Placement::Uc,
                target: Some("giis".to_string()),
                query: Query::MdsSearchAllGiis,
                cpu: ClientCpu::Mds,
                timeout_s: None,
            },
            probe: None,
            faults: None,
        }
    }

    #[test]
    fn round_trips_through_text() {
        let spec = sample();
        let text = spec.print();
        let back = parse(&text).unwrap();
        assert_eq!(back, spec);
        // Canonical: printing the reparse reproduces the text.
        assert_eq!(back.print(), text);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let clean = format!("# heading\n\n{}# tail\n", sample().print());
        assert_eq!(parse(&clean).unwrap(), sample());
        let inline = sample()
            .print()
            .replace("placement = \"uc\"", "placement = \"uc\"   # client farm");
        assert_eq!(parse(&inline).unwrap(), sample());
    }

    #[test]
    fn fingerprint_is_stable_and_semantic() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.x_values.push(100);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Pinned reference value: the fingerprint addresses persistent
        // caches, so it must never drift across refactors.
        assert_eq!(a.fingerprint().len(), 32);
    }

    #[test]
    fn unknown_backend_is_golden() {
        let text = sample()
            .print()
            .replace("system = \"mds\"", "system = \"ganglia2\"");
        let err = parse(&text).unwrap_err();
        assert_eq!(
            err.to_string(),
            "unknown backend \"ganglia2\": known backends are mds, rgma, hawkeye"
        );
    }

    #[test]
    fn unknown_host_is_golden() {
        let text = sample()
            .print()
            .replace("host = \"lucky0\"", "host = \"lucky2\"");
        let err = parse(&text).unwrap_err();
        assert_eq!(
            err.to_string(),
            "service \"giis\": unknown host \"lucky2\" \
             (hosts: lucky0, lucky1, lucky3..lucky7, uc00..uc19)"
        );
    }

    #[test]
    fn duplicate_service_is_golden() {
        let mut spec = sample();
        let dup = spec.services[0].clone();
        spec.services.push(dup);
        let err = parse(&spec.print()).unwrap_err();
        assert_eq!(err.to_string(), "duplicate service name \"giis\"");
        // validate() catches the same on hand-built specs.
        assert_eq!(spec.validate().unwrap_err(), err);
    }

    #[test]
    fn dangling_service_ref_is_golden() {
        let text = sample()
            .print()
            .replace("target = \"giis\"", "target = \"nosuch\"");
        let err = parse(&text).unwrap_err();
        assert_eq!(
            err.to_string(),
            "[workload]: target = \"nosuch\" names no service"
        );
    }

    #[test]
    fn upstream_must_be_declared_earlier() {
        let mut spec = sample();
        spec.services.push((
            "agent".to_string(),
            ServiceSpec {
                kind: ServiceKind::Agent {
                    modules: Count::Lit(11),
                    manager: "mgr".to_string(),
                },
                host: "lucky4".to_string(),
            },
        ));
        let err = parse(&spec.print()).unwrap_err();
        assert_eq!(
            err.to_string(),
            "service \"agent\": manager = \"mgr\" names no service"
        );
    }

    #[test]
    fn unknown_fields_and_sections_are_rejected() {
        let text = format!("{}\nbogus = 3\n", sample().print());
        assert!(matches!(parse(&text), Err(ScenarioError::Syntax { .. })));
        let text = format!("{}\n[frobnicator]\n", sample().print());
        assert!(matches!(parse(&text), Err(ScenarioError::Syntax { .. })));
    }

    #[test]
    fn monitor_kind_is_not_writable() {
        let mut spec = sample();
        spec.services.push((
            "mon".to_string(),
            ServiceSpec {
                kind: ServiceKind::Monitor,
                host: "lucky0".to_string(),
            },
        ));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn known_hosts_match_the_testbed() {
        for h in ["lucky0", "lucky1", "lucky3", "lucky7", "uc00", "uc19"] {
            assert!(known_host(h), "{h}");
        }
        for h in ["lucky2", "lucky8", "uc20", "uc1", "uc001", "", "mcs"] {
            assert!(!known_host(h), "{h}");
        }
    }

    #[test]
    fn counts_and_ttls_round_trip() {
        let mut spec = sample();
        spec.services[0].1.kind = ServiceKind::GiisPool {
            gris_hosts: vec!["lucky3".to_string()],
            n_gris: Count::Lit(7),
            cachettl: Ttl::Secs(30),
        };
        spec.workload.users = Count::X;
        spec.workload.timeout_s = Some(10);
        let back = parse(&spec.print()).unwrap();
        assert_eq!(back, spec);
    }
}
