//! The unit of schedulable work: one experiment point, figure or
//! extension, self-contained and deterministic.
//!
//! A [`Job`] carries everything the pool needs: how to run the point
//! ([`Job::run`]), a stable textual identity ([`Job::key`]), the seed it
//! executes under ([`Job::seed`]), and a content address for the result
//! cache ([`Job::cache_digest`]).  Results round-trip through the cache
//! bit-exactly via [`Job::encode`]/[`Job::decode`].

use gridmon_core::ext::{self, OpenLoopPoint, WanPoint, WAN_CASES};
use gridmon_core::figures::PointSpec;
use gridmon_core::mapping::System;
use gridmon_core::runcfg::{Measurement, RunConfig};
use gridmon_core::stablehash::{digest128, fnv1a64, mix64};
use gscenario::{ScenarioSpec, SystemId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Cache schema version: bump when the encoded record or the digest
/// recipe changes, so stale files can never be misread.  v4 folds the
/// scenario fingerprint (the canonical deployed topology) into every
/// figure and scenario address.
const CACHE_SCHEMA: &str = "gridmon-cache-v4";

/// One extension-study point (the Section-4 future-work studies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExtPoint {
    /// Directory-server experiment under [`WAN_CASES`]`[case]`.
    Wan { users: u32, case: usize },
    /// Flat aggregation baseline: one GIIS over `n` GRISes.
    HierFlat { n: u32 },
    /// Two-level aggregation: `n` GRISes over `branches` mid GIISes.
    HierTree { n: u32, branches: usize },
    /// Direct query of the owning GRIS.
    AggDirect { users: u32 },
    /// The same information via the aggregating GIIS.
    AggViaGiis { users: u32 },
    /// Poisson open-loop arrivals at the ProducerServlet.
    OpenLoop { rate: f64 },
    /// R-GMA composite producer over `sources` site servlets.
    Composite { sources: u32 },
}

/// One `(spec, x)` point of a user-authored scenario.  The spec is
/// shared (`Arc`) across the sweep's jobs; its fingerprint — not its
/// address — is the cache identity.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPoint {
    pub spec: Arc<ScenarioSpec>,
    pub x: u32,
}

impl ScenarioPoint {
    /// Stable textual identity (scenario names are author-chosen; two
    /// different topologies under one name still get distinct cache
    /// addresses via the fingerprint).
    pub fn key(&self) -> String {
        format!("scenario/{}/x={}", self.spec.name, self.x)
    }
}

/// A schedulable experiment point.
#[derive(Debug, Clone, PartialEq)]
pub enum Job {
    /// One `(series, x)` point of experiment sets 1-6.
    Figure(PointSpec),
    /// One extension-study point.
    Ext(ExtPoint),
    /// One point of a user-authored scenario sweep.
    Scenario(ScenarioPoint),
}

/// What a job produced.  `Measurement` for figure and most extension
/// points; the WAN and open-loop studies report richer records.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    Measurement(Measurement),
    Wan(WanPoint),
    OpenLoop(OpenLoopPoint),
}

impl JobOutput {
    /// The underlying measurement, if this output carries one.
    pub fn measurement(&self) -> Option<Measurement> {
        match self {
            JobOutput::Measurement(m) => Some(*m),
            JobOutput::Wan(w) => Some(w.m),
            JobOutput::OpenLoop(_) => None,
        }
    }
}

impl Job {
    /// Stable textual identity: drives progress display and, with the
    /// seed and parameter fingerprint, the cache address.
    pub fn key(&self) -> String {
        match *self {
            Job::Scenario(ref p) => p.key(),
            Job::Figure(spec) => spec.key(),
            Job::Ext(ExtPoint::Wan { users, case }) => {
                format!("ext/wan/{}/users={users}", WAN_CASES[case].0)
            }
            Job::Ext(ExtPoint::HierFlat { n }) => format!("ext/hier-flat/n={n}"),
            Job::Ext(ExtPoint::HierTree { n, branches }) => {
                format!("ext/hier-tree/n={n}/branches={branches}")
            }
            Job::Ext(ExtPoint::AggDirect { users }) => format!("ext/agg-direct/users={users}"),
            Job::Ext(ExtPoint::AggViaGiis { users }) => format!("ext/agg-giis/users={users}"),
            Job::Ext(ExtPoint::OpenLoop { rate }) => format!("ext/open-loop/rate={rate}"),
            Job::Ext(ExtPoint::Composite { sources }) => {
                format!("ext/composite/sources={sources}")
            }
        }
    }

    /// The system under test — selects which calibrated parameters are
    /// part of this job's cache identity (see [`gridmon_core::params::Params::fingerprint`]).
    pub fn system(&self) -> System {
        match *self {
            Job::Figure(spec) => spec.series.system(),
            Job::Ext(
                ExtPoint::Wan { .. }
                | ExtPoint::HierFlat { .. }
                | ExtPoint::HierTree { .. }
                | ExtPoint::AggDirect { .. }
                | ExtPoint::AggViaGiis { .. },
            ) => System::Mds,
            Job::Ext(ExtPoint::OpenLoop { .. } | ExtPoint::Composite { .. }) => System::Rgma,
            Job::Scenario(ref p) => match p.spec.system {
                SystemId::Mds => System::Mds,
                SystemId::Rgma => System::Rgma,
                SystemId::Hawkeye => System::Hawkeye,
            },
        }
    }

    /// The seed this job executes under.  Figure points derive a
    /// per-point seed from the sweep's base seed (independent streams;
    /// order-invariant results); extension points run with the base
    /// configuration as given, matching the sequential study functions.
    pub fn seed(&self, cfg: &RunConfig) -> u64 {
        match *self {
            Job::Figure(spec) => spec.derived_seed(cfg.seed),
            Job::Ext(_) => cfg.seed,
            // Scenario points follow the figure discipline: independent
            // per-point streams, order-invariant results.
            Job::Scenario(_) => mix64(cfg.seed ^ fnv1a64(self.key().as_bytes())),
        }
    }

    /// Execute the point.  Pure in `(self, cfg)`: the same job under the
    /// same configuration yields an identical output on any thread.
    pub fn run(&self, cfg: &RunConfig) -> JobOutput {
        match *self {
            Job::Figure(spec) => JobOutput::Measurement(spec.run(cfg)),
            Job::Ext(ExtPoint::Wan { users, case }) => {
                JobOutput::Wan(ext::wan_point(cfg, users, case))
            }
            Job::Ext(ExtPoint::HierFlat { n }) => {
                JobOutput::Measurement(ext::hierarchy_flat_point(cfg, n))
            }
            Job::Ext(ExtPoint::HierTree { n, branches }) => {
                JobOutput::Measurement(ext::hierarchy_tree_point(cfg, n, branches))
            }
            Job::Ext(ExtPoint::AggDirect { users }) => {
                use gridmon_core::experiments::{set1, Set1Series};
                JobOutput::Measurement(set1::run_point(Set1Series::GrisCache, users, cfg))
            }
            Job::Ext(ExtPoint::AggViaGiis { users }) => {
                use gridmon_core::experiments::{set2, Set2Series};
                JobOutput::Measurement(set2::run_point(Set2Series::Giis, users, cfg))
            }
            Job::Ext(ExtPoint::OpenLoop { rate }) => {
                JobOutput::OpenLoop(ext::open_loop_point(cfg, rate))
            }
            Job::Ext(ExtPoint::Composite { sources }) => {
                JobOutput::Measurement(ext::composite_study(cfg, sources))
            }
            Job::Scenario(ref p) => {
                let mut c = *cfg;
                c.seed = self.seed(cfg);
                // Specs are validated (and dry-compiled) before they are
                // enqueued, so a failure here is a runner bug, not user
                // input.
                let m = gridmon_core::scenario::run_point(&p.spec, p.x, &c)
                    .unwrap_or_else(|e| panic!("scenario {:?} x={}: {e}", p.spec.name, p.x));
                JobOutput::Measurement(m)
            }
        }
    }

    /// The canonical-topology fingerprint folded into this job's cache
    /// address: the built-in catalogue spec for figure points, the
    /// authored spec for scenario points, none for extension studies
    /// (their topology lives in code only).
    fn scenario_fingerprint(&self) -> String {
        match *self {
            Job::Figure(spec) => spec.series.scenario_fingerprint(),
            Job::Ext(_) => "-".to_string(),
            Job::Scenario(ref p) => p.spec.fingerprint(),
        }
    }

    /// Content address of this job's result under `cfg`: a stable hash
    /// of everything the outcome depends on — schema version, point
    /// identity, effective seed, measurement discipline, observability
    /// mode, and the calibrated parameters scoped to this job's system.
    /// Editing one system's constants therefore re-runs only that
    /// system's points.
    ///
    /// The observability fingerprint is part of the address even though
    /// tracing is designed not to perturb measurements: the contract is
    /// enforced by tests, not by construction, so a cache entry must
    /// never be allowed to paper over a regression in it.
    pub fn cache_digest(&self, cfg: &RunConfig) -> String {
        let material = format!(
            "{CACHE_SCHEMA}\n{key}\nseed={seed}\nwarmup_us={wu}\nwindow_us={wi}\n{obs}\n{faults}\n{params}\nscenario={fp}",
            key = self.key(),
            seed = self.seed(cfg),
            wu = cfg.warmup.as_micros(),
            wi = cfg.window.as_micros(),
            obs = cfg.obs.fingerprint(),
            faults = cfg.faults.fingerprint(),
            params = cfg.params.fingerprint(self.system()),
            fp = self.scenario_fingerprint(),
        );
        digest128(material.as_bytes())
    }

    /// Serialize an output as `(name, value)` fields.  Floats are stored
    /// as IEEE-754 bit patterns (`f:<16 hex>`) so the round-trip is
    /// bit-exact; counters as `u:<decimal>`.
    pub fn encode(out: &JobOutput) -> Vec<(&'static str, String)> {
        fn f(v: f64) -> String {
            format!("f:{:016x}", v.to_bits())
        }
        fn u(v: u64) -> String {
            format!("u:{v}")
        }
        fn measurement_fields(m: &Measurement) -> Vec<(&'static str, String)> {
            vec![
                ("x", f(m.x)),
                ("throughput", f(m.throughput)),
                ("response_time", f(m.response_time)),
                ("load1", f(m.load1)),
                ("cpu_load", f(m.cpu_load)),
                ("refused", u(m.refused)),
                ("completions", u(m.completions)),
                ("availability", f(m.availability)),
                ("staleness_s", f(m.staleness_s)),
                ("recovery_s", f(m.recovery_s)),
            ]
        }
        match out {
            JobOutput::Measurement(m) => {
                let mut v = vec![("kind", "measurement".to_string())];
                v.extend(measurement_fields(m));
                v
            }
            // The WAN label/link columns are a pure function of the case
            // index (part of the job identity), so only the measurement
            // is stored; `decode` reconstructs the rest.
            JobOutput::Wan(w) => {
                let mut v = vec![("kind", "wan".to_string())];
                v.extend(measurement_fields(&w.m));
                v
            }
            JobOutput::OpenLoop(p) => vec![
                ("kind", "openloop".to_string()),
                ("offered_per_sec", f(p.offered_per_sec)),
                ("completed_per_sec", f(p.completed_per_sec)),
                ("lost_per_sec", f(p.lost_per_sec)),
                ("response_time", f(p.response_time)),
            ],
        }
    }

    /// Reconstruct an output from cached fields.  Returns `None` on any
    /// mismatch (wrong kind for this job, missing/garbled field) — the
    /// caller then falls back to executing the point.
    pub fn decode(&self, fields: &BTreeMap<String, String>) -> Option<JobOutput> {
        fn f(fields: &BTreeMap<String, String>, name: &str) -> Option<f64> {
            let bits = fields.get(name)?.strip_prefix("f:")?;
            Some(f64::from_bits(u64::from_str_radix(bits, 16).ok()?))
        }
        fn u(fields: &BTreeMap<String, String>, name: &str) -> Option<u64> {
            fields.get(name)?.strip_prefix("u:")?.parse().ok()
        }
        fn measurement(fields: &BTreeMap<String, String>) -> Option<Measurement> {
            Some(Measurement {
                x: f(fields, "x")?,
                throughput: f(fields, "throughput")?,
                response_time: f(fields, "response_time")?,
                load1: f(fields, "load1")?,
                cpu_load: f(fields, "cpu_load")?,
                refused: u(fields, "refused")?,
                completions: u(fields, "completions")?,
                availability: f(fields, "availability")?,
                staleness_s: f(fields, "staleness_s")?,
                recovery_s: f(fields, "recovery_s")?,
            })
        }
        let kind = fields.get("kind")?.as_str();
        match (self, kind) {
            (&Job::Ext(ExtPoint::Wan { case, .. }), "wan") => {
                let (label, bps, lat_ms) = WAN_CASES[case];
                Some(JobOutput::Wan(WanPoint {
                    label: label.to_string(),
                    wan_mbps: bps / 1e6,
                    wan_latency_ms: lat_ms,
                    m: measurement(fields)?,
                }))
            }
            (&Job::Ext(ExtPoint::OpenLoop { .. }), "openloop") => {
                Some(JobOutput::OpenLoop(OpenLoopPoint {
                    offered_per_sec: f(fields, "offered_per_sec")?,
                    completed_per_sec: f(fields, "completed_per_sec")?,
                    lost_per_sec: f(fields, "lost_per_sec")?,
                    response_time: f(fields, "response_time")?,
                }))
            }
            (
                Job::Figure(_)
                | Job::Scenario(_)
                | Job::Ext(
                    ExtPoint::HierFlat { .. }
                    | ExtPoint::HierTree { .. }
                    | ExtPoint::AggDirect { .. }
                    | ExtPoint::AggViaGiis { .. }
                    | ExtPoint::Composite { .. },
                ),
                "measurement",
            ) => Some(JobOutput::Measurement(measurement(fields)?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmon_core::figures::enumerate_set;

    fn roundtrip(job: &Job, out: &JobOutput) -> JobOutput {
        let fields: BTreeMap<String, String> = Job::encode(out)
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        job.decode(&fields).expect("decode what encode produced")
    }

    #[test]
    fn outputs_roundtrip_bit_exactly() {
        let m = Measurement {
            x: 50.0,
            throughput: 12.345_678_901,
            response_time: 0.1 + 0.2, // a value with an inexact decimal form
            load1: f64::MIN_POSITIVE,
            cpu_load: 99.999_999,
            refused: 7,
            completions: 123_456,
            availability: 0.875,
            staleness_s: 31.25,
            recovery_s: 12.5,
        };
        let fig = Job::Figure(enumerate_set(1, 1.0).unwrap()[0]);
        assert_eq!(
            roundtrip(&fig, &JobOutput::Measurement(m)),
            JobOutput::Measurement(m)
        );

        let wan = Job::Ext(ExtPoint::Wan {
            users: 100,
            case: 2,
        });
        let wp = JobOutput::Wan(WanPoint {
            label: WAN_CASES[2].0.to_string(),
            wan_mbps: WAN_CASES[2].1 / 1e6,
            wan_latency_ms: WAN_CASES[2].2,
            m,
        });
        assert_eq!(roundtrip(&wan, &wp), wp);

        let ol = Job::Ext(ExtPoint::OpenLoop { rate: 15.0 });
        let op = JobOutput::OpenLoop(OpenLoopPoint {
            offered_per_sec: 15.0,
            completed_per_sec: 14.2,
            lost_per_sec: 0.8,
            response_time: 0.3,
        });
        assert_eq!(roundtrip(&ol, &op), op);
    }

    #[test]
    fn decode_rejects_kind_mismatch() {
        let fields: BTreeMap<String, String> =
            Job::encode(&JobOutput::Measurement(Measurement::default()))
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
        let ol = Job::Ext(ExtPoint::OpenLoop { rate: 5.0 });
        assert_eq!(ol.decode(&fields), None);
    }

    #[test]
    fn digests_separate_points_seeds_and_params() {
        let cfg = RunConfig::quick(1);
        let specs = enumerate_set(1, 1.0).unwrap();
        let a = Job::Figure(specs[0]);
        let b = Job::Figure(specs[1]);
        assert_ne!(a.cache_digest(&cfg), b.cache_digest(&cfg));

        let mut cfg2 = cfg;
        cfg2.seed = 2;
        assert_ne!(a.cache_digest(&cfg), a.cache_digest(&cfg2));

        // Editing a Hawkeye constant must not disturb an MDS point's
        // address...
        let mut hawk = cfg;
        hawk.params.condor_client_cpu_us += 1.0;
        assert_eq!(a.system(), System::Mds);
        assert_eq!(a.cache_digest(&cfg), a.cache_digest(&hawk));
        // ...but a shared WAN constant invalidates it.
        let mut wan = cfg;
        wan.params.wan_bps *= 2.0;
        assert_ne!(a.cache_digest(&cfg), a.cache_digest(&wan));
    }

    #[test]
    fn digests_separate_fault_plans() {
        use gfaults::{FaultSpec, Scenario};
        let cfg = RunConfig::quick(1);
        let a = Job::Figure(enumerate_set(1, 1.0).unwrap()[0]);

        let mut faulted = cfg;
        faulted.faults = FaultSpec {
            scenario: Scenario::Churn,
            targets: 2,
            start_frac: 0.25,
            heal_frac: 0.6,
        };
        assert_ne!(a.cache_digest(&cfg), a.cache_digest(&faulted));

        // Varying only the target count must also separate addresses.
        let mut wider = faulted;
        wider.faults.targets = 3;
        assert_ne!(a.cache_digest(&faulted), a.cache_digest(&wider));

        // An explicit do-nothing spec shares the unfaulted address, so
        // pristine sweeps never lose their cache to the new field.
        let mut none = cfg;
        none.faults = FaultSpec::NONE;
        assert_eq!(a.cache_digest(&cfg), a.cache_digest(&none));
    }

    #[test]
    fn digests_separate_observability_modes() {
        use gridmon_core::ObsMode;
        let cfg = RunConfig::quick(1);
        let a = Job::Figure(enumerate_set(1, 1.0).unwrap()[0]);
        let mut traced = cfg;
        traced.obs = ObsMode::FULL;
        let mut metrics_only = cfg;
        metrics_only.obs = ObsMode {
            trace: false,
            metrics: true,
        };
        let d_off = a.cache_digest(&cfg);
        let d_full = a.cache_digest(&traced);
        let d_metrics = a.cache_digest(&metrics_only);
        assert_ne!(d_off, d_full);
        assert_ne!(d_off, d_metrics);
        assert_ne!(d_full, d_metrics);
    }

    #[test]
    fn ext_jobs_keep_the_base_seed() {
        let cfg = RunConfig::quick(42);
        let job = Job::Ext(ExtPoint::Composite { sources: 5 });
        assert_eq!(job.seed(&cfg), 42);
        let fig = Job::Figure(enumerate_set(1, 1.0).unwrap()[0]);
        assert_ne!(fig.seed(&cfg), 42);
    }
}
