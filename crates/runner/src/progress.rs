//! Sweep progress reporting: per-point wall time, completion counter
//! and a wall-clock ETA, written to stderr so stdout stays clean for
//! tables and CSV.

use std::time::{Duration, Instant};

/// Tracks and prints sweep progress.  With `enabled == false` it only
/// accumulates the counters (used by the library API to build
/// [`SweepStats`](crate::SweepStats) without console noise).
pub struct Reporter {
    total: usize,
    done: usize,
    hits: usize,
    executed: usize,
    started: Instant,
    enabled: bool,
}

impl Reporter {
    pub fn new(total: usize, enabled: bool) -> Reporter {
        Reporter {
            total,
            done: 0,
            hits: 0,
            executed: 0,
            started: Instant::now(),
            enabled,
        }
    }

    /// A point was satisfied from the cache.
    pub fn cache_hit(&mut self, key: &str) {
        self.done += 1;
        self.hits += 1;
        if self.enabled {
            eprintln!("[{:>4}/{}] {key}  (cached)", self.done, self.total);
        }
    }

    /// A point finished executing after `wall` of real time.
    pub fn finished(&mut self, key: &str, wall: Duration) {
        self.done += 1;
        self.executed += 1;
        if self.enabled {
            let eta = match self.eta() {
                Some(eta) => format!("  ETA {}", fmt_duration(eta)),
                None => String::new(),
            };
            eprintln!(
                "[{:>4}/{}] {key}  {}{eta}",
                self.done,
                self.total,
                fmt_duration(wall),
            );
        }
    }

    /// Estimated wall-clock time to finish the remaining points, from
    /// the observed aggregate completion rate.  Because the rate is
    /// measured against real elapsed time, parallelism is accounted for
    /// automatically.
    fn eta(&self) -> Option<Duration> {
        let remaining = self.total - self.done;
        if remaining == 0 || self.executed == 0 {
            return None;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        if elapsed <= 0.0 {
            return None;
        }
        let rate = self.executed as f64 / elapsed;
        Some(Duration::from_secs_f64(remaining as f64 / rate))
    }

    pub fn cache_hits(&self) -> usize {
        self.hits
    }

    pub fn executed(&self) -> usize {
        self.executed
    }
}

/// `93s -> "1m33s"`, `2.34s -> "2.3s"`, `120ms -> "0.1s"`.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{}m{:02}s", (s / 60.0) as u64, (s % 60.0) as u64)
    } else {
        format!("{s:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format_compactly() {
        assert_eq!(fmt_duration(Duration::from_millis(120)), "0.1s");
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.34)), "2.3s");
        assert_eq!(fmt_duration(Duration::from_secs(93)), "1m33s");
        assert_eq!(fmt_duration(Duration::from_secs(3600)), "60m00s");
    }

    #[test]
    fn counters_accumulate_quietly() {
        let mut r = Reporter::new(3, false);
        r.cache_hit("a");
        r.finished("b", Duration::from_millis(5));
        r.finished("c", Duration::from_millis(5));
        assert_eq!(r.cache_hits(), 1);
        assert_eq!(r.executed(), 2);
        assert_eq!(r.done, 3);
    }
}
