//! Sweep progress reporting: per-point wall time, completion counter
//! and a wall-clock ETA, written to stderr so stdout stays clean for
//! tables and CSV.

use std::time::{Duration, Instant};

/// Tracks and prints sweep progress.  With `enabled == false` it only
/// accumulates the counters (used by the library API to build
/// [`SweepStats`](crate::SweepStats) without console noise).
pub struct Reporter {
    total: usize,
    done: usize,
    hits: usize,
    executed: usize,
    started: Instant,
    enabled: bool,
}

impl Reporter {
    pub fn new(total: usize, enabled: bool) -> Reporter {
        Reporter {
            total,
            done: 0,
            hits: 0,
            executed: 0,
            started: Instant::now(),
            enabled,
        }
    }

    /// A point was satisfied from the cache.
    pub fn cache_hit(&mut self, key: &str) {
        self.done += 1;
        self.hits += 1;
        if self.enabled {
            eprintln!("[{:>4}/{}] {key}  (cached)", self.done, self.total);
        }
    }

    /// A point finished executing after `wall` of real time.
    pub fn finished(&mut self, key: &str, wall: Duration) {
        self.done += 1;
        self.executed += 1;
        if self.enabled {
            let eta = match self.eta() {
                Some(eta) => format!("  ETA {}", fmt_duration(eta)),
                None => String::new(),
            };
            eprintln!(
                "[{:>4}/{}] {key}  {}{eta}",
                self.done,
                self.total,
                fmt_duration(wall),
            );
        }
    }

    /// Estimated wall-clock time to finish the remaining points, from
    /// the observed aggregate completion rate.  Because the rate is
    /// measured against real elapsed time, parallelism is accounted for
    /// automatically.
    fn eta(&self) -> Option<Duration> {
        eta_from(
            self.total.saturating_sub(self.done),
            self.executed,
            self.started.elapsed(),
        )
    }

    pub fn cache_hits(&self) -> usize {
        self.hits
    }

    pub fn executed(&self) -> usize {
        self.executed
    }
}

/// The pure ETA estimator behind [`Reporter`]: time to finish
/// `remaining` points given `executed` completions in `elapsed`.
///
/// `None` whenever no estimate is defensible: nothing remaining,
/// nothing executed yet (e.g. every point so far was a cache hit), an
/// elapsed time too small to carry a rate, or a projection beyond what
/// a `Duration` can hold (`try_from_secs_f64` fails closed, so absurd
/// inputs yield "no estimate" rather than a panic).
pub fn eta_from(remaining: usize, executed: usize, elapsed: Duration) -> Option<Duration> {
    if remaining == 0 || executed == 0 {
        return None;
    }
    let elapsed_s = elapsed.as_secs_f64();
    if elapsed_s <= 0.0 {
        return None;
    }
    let per_point = elapsed_s / executed as f64;
    Duration::try_from_secs_f64(per_point * remaining as f64).ok()
}

/// `93s -> "1m33s"`, `2.34s -> "2.3s"`, `120ms -> "120ms"`,
/// `250us -> "250us"`.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{}m{:02}s", (s / 60.0) as u64, (s % 60.0) as u64)
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else if s >= 0.001 {
        format!("{}ms", d.as_millis())
    } else {
        format!("{}us", d.as_micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format_compactly() {
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.34)), "2.3s");
        assert_eq!(fmt_duration(Duration::from_secs(93)), "1m33s");
        assert_eq!(fmt_duration(Duration::from_secs(3600)), "60m00s");
        assert_eq!(fmt_duration(Duration::from_secs(1)), "1.0s");
    }

    #[test]
    fn sub_second_durations_stay_legible() {
        assert_eq!(fmt_duration(Duration::from_millis(120)), "120ms");
        assert_eq!(fmt_duration(Duration::from_millis(999)), "999ms");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1ms");
        assert_eq!(fmt_duration(Duration::from_micros(250)), "250us");
        assert_eq!(fmt_duration(Duration::from_micros(1)), "1us");
        assert_eq!(fmt_duration(Duration::ZERO), "0us");
    }

    #[test]
    fn eta_estimator_handles_edges() {
        let sec = Duration::from_secs(1);
        // Nothing remaining / nothing executed yet: no estimate.
        assert_eq!(eta_from(0, 5, sec), None);
        assert_eq!(eta_from(5, 0, sec), None, "all-cache-hit sweep");
        assert_eq!(eta_from(5, 0, Duration::ZERO), None);
        // Zero elapsed (first completion within clock resolution).
        assert_eq!(eta_from(5, 1, Duration::ZERO), None);
        // Plain case: 2 done in 10 s, 3 to go -> 15 s.
        let eta = eta_from(3, 2, Duration::from_secs(10)).unwrap();
        assert!((eta.as_secs_f64() - 15.0).abs() < 1e-9);
        // Sub-millisecond rates must not lose the estimate entirely.
        let eta = eta_from(1000, 4, Duration::from_micros(100)).unwrap();
        assert!(eta > Duration::ZERO);
        // Absurd projections fail closed (None), never panic.
        assert_eq!(
            eta_from(usize::MAX, 1, Duration::from_secs(u32::MAX as u64)),
            None
        );
    }

    #[test]
    fn counters_accumulate_quietly() {
        let mut r = Reporter::new(3, false);
        r.cache_hit("a");
        r.finished("b", Duration::from_millis(5));
        r.finished("c", Duration::from_millis(5));
        assert_eq!(r.cache_hits(), 1);
        assert_eq!(r.executed(), 2);
        assert_eq!(r.done, 3);
    }
}
