//! Content-addressed on-disk result cache.
//!
//! One file per experiment point, named by the job's
//! [`cache_digest`](crate::job::Job::cache_digest):
//! `<cache dir>/<32-hex digest>.csv`.  Because the digest covers the
//! point identity, seed, measurement window and the relevant calibrated
//! parameters, invalidation is implicit — a changed input simply hashes
//! to an address that does not exist yet, and stale files are never
//! consulted.
//!
//! The record format is line-oriented `name=value` (floats as IEEE-754
//! bit patterns, see [`crate::job::Job::encode`]) with `#` comments
//! carrying the human-readable job key.  A file that fails to parse is
//! treated as a miss, never an error: the point is just re-run.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A directory of cached point results.
#[derive(Debug, Clone)]
pub struct DiskCache {
    root: PathBuf,
}

impl DiskCache {
    /// A cache rooted at `root`.  Nothing is created until the first
    /// [`store`](DiskCache::store).
    pub fn new(root: impl Into<PathBuf>) -> DiskCache {
        DiskCache { root: root.into() }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, digest: &str) -> PathBuf {
        self.root.join(format!("{digest}.csv"))
    }

    /// On-disk size of the record stored under `digest`, if present.
    /// (Profiling-path helper: one `stat`, no content read.)
    pub fn size_of(&self, digest: &str) -> Option<u64> {
        fs::metadata(self.path_of(digest)).ok().map(|m| m.len())
    }

    /// Fetch the record stored under `digest`, if present and parsable.
    pub fn load(&self, digest: &str) -> Option<BTreeMap<String, String>> {
        let text = fs::read_to_string(self.path_of(digest)).ok()?;
        let mut fields = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once('=')?;
            fields.insert(name.to_string(), value.to_string());
        }
        if fields.is_empty() {
            None
        } else {
            Some(fields)
        }
    }

    /// Store `fields` under `digest`.  `key` is recorded as a comment so
    /// the cache is inspectable (`grep -r 'set1/' results/.cache`).
    /// Returns the bytes written, `None` on failure.
    ///
    /// Best-effort: a full disk or read-only tree degrades to "no
    /// cache", it never fails the sweep.  The write goes through a
    /// temporary file and an atomic rename so concurrent sweeps sharing
    /// a cache directory can only ever observe complete records.
    pub fn store(&self, digest: &str, key: &str, fields: &[(&'static str, String)]) -> Option<u64> {
        let final_path = self.path_of(digest);
        let tmp_path = self
            .root
            .join(format!(".{digest}.{}.tmp", std::process::id()));
        let write = || -> std::io::Result<u64> {
            fs::create_dir_all(&self.root)?;
            let mut out = String::new();
            out.push_str("# gridmon-runner result cache\n");
            out.push_str(&format!("# job: {key}\n"));
            for (name, value) in fields {
                out.push_str(&format!("{name}={value}\n"));
            }
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(out.as_bytes())?;
            fs::rename(&tmp_path, &final_path)?;
            Ok(out.len() as u64)
        };
        match write() {
            Ok(bytes) => Some(bytes),
            Err(_) => {
                let _ = fs::remove_file(&tmp_path);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gridmon-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = scratch_dir("roundtrip");
        let cache = DiskCache::new(&dir);
        assert!(cache.load("aa").is_none(), "empty cache misses");
        assert!(cache.size_of("aa").is_none());
        let bytes = cache.store(
            "aa",
            "set1/example/x=1",
            &[
                ("kind", "measurement".into()),
                ("x", "f:0000000000000000".into()),
            ],
        );
        assert!(bytes.expect("store succeeds") > 0);
        assert_eq!(cache.size_of("aa"), bytes, "size_of sees the record");
        let fields = cache.load("aa").expect("hit after store");
        assert_eq!(fields.get("kind").unwrap(), "measurement");
        assert_eq!(fields.get("x").unwrap(), "f:0000000000000000");
        // The human-readable key comment is present but not a field.
        assert_eq!(fields.len(), 2);
        let text = fs::read_to_string(dir.join("aa.csv")).unwrap();
        assert!(text.contains("# job: set1/example/x=1"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbled_record_is_a_miss() {
        let dir = scratch_dir("garbled");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("bb.csv"), "no equals sign here\n").unwrap();
        let cache = DiskCache::new(&dir);
        assert!(cache.load("bb").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_root_degrades_silently() {
        // Storing under a path whose parent is a *file* cannot succeed;
        // it must not panic.
        let dir = scratch_dir("unwritable");
        fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("blocker");
        fs::write(&blocker, "").unwrap();
        let cache = DiskCache::new(blocker.join("nested"));
        assert!(cache
            .store("cc", "k", &[("kind", "measurement".into())])
            .is_none());
        assert!(cache.load("cc").is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
