//! # gridmon-runner — parallel, cache-aware sweep execution
//!
//! The figure harness in `gridmon-core` expresses every sweep as a list
//! of self-contained points (one `(series, x)` pair, or one extension
//! study point).  This crate schedules those points across an in-tree
//! work-stealing thread pool ([`pool`]) and memoizes their results in a
//! content-addressed on-disk cache ([`cache`]), so that
//!
//! * `figures --jobs N` regenerates the paper's figures N-wide with
//!   **byte-identical** output to the sequential runner — every point
//!   derives its own seed from its identity, and results are assembled
//!   in submission order, so neither worker count nor completion order
//!   can influence a single output bit;
//! * editing one system's calibrated parameters and re-running only
//!   recomputes that system's series — every other point is served from
//!   `results/.cache/` (see [`job::Job::cache_digest`]).
//!
//! Built on `std::thread` and channels only; no external dependencies.

pub mod cache;
pub mod job;
pub mod pool;
pub mod progress;

pub use cache::DiskCache;
pub use job::{ExtPoint, Job, JobOutput, ScenarioPoint};

use gperf::PerfSink;
use gridmon_core::deploy::ObservedPoint;
use gridmon_core::figures::{assemble_set, enumerate_set, FigureError, PointSpec, SetData};
use gridmon_core::runcfg::RunConfig;
use progress::Reporter;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// How a sweep should be executed.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Result-cache directory; `None` disables caching entirely.
    pub cache_dir: Option<PathBuf>,
    /// Suppress the per-point progress lines on stderr.
    pub quiet: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            jobs: 0,
            cache_dir: Some(PathBuf::from("results/.cache")),
            quiet: false,
        }
    }
}

impl RunnerConfig {
    /// A sequential, cacheless, silent configuration — the baseline the
    /// determinism tests compare against.
    pub fn sequential() -> Self {
        RunnerConfig {
            jobs: 1,
            cache_dir: None,
            quiet: true,
        }
    }
}

/// What a sweep cost: how many points there were, how many actually
/// executed vs came from the cache, and the wall-clock total.
#[derive(Debug, Clone, Copy)]
pub struct SweepStats {
    pub total: usize,
    pub executed: usize,
    pub cache_hits: usize,
    pub wall: Duration,
}

/// Execute `jobs` under `cfg`: resolve cache hits first, run the misses
/// across the thread pool, store fresh results back.  Outputs are
/// returned in job order regardless of scheduling.
pub fn run_jobs(jobs: &[Job], cfg: &RunConfig, rc: &RunnerConfig) -> (Vec<JobOutput>, SweepStats) {
    run_jobs_profiled(jobs, cfg, rc, None)
}

/// [`run_jobs`] with optional self-profiling.  With a [`PerfSink`] the
/// sweep records one [`gperf::PointRecord`] per point (wall time, engine
/// counters, worker and cache attribution) plus cache traffic and pool
/// utilization; with `None` it is exactly `run_jobs` — profiling only
/// *reads* engine counters after each run, so outputs are identical
/// either way.
pub fn run_jobs_profiled(
    jobs: &[Job],
    cfg: &RunConfig,
    rc: &RunnerConfig,
    mut sink: Option<&mut PerfSink>,
) -> (Vec<JobOutput>, SweepStats) {
    let t0 = Instant::now();
    let cache = rc.cache_dir.as_ref().map(DiskCache::new);
    let mut reporter = Reporter::new(jobs.len(), !rc.quiet);

    // Phase 1: satisfy what the cache already has, so a warm re-run
    // executes nothing at all.
    let digests: Vec<Option<String>> = jobs
        .iter()
        .map(|j| cache.as_ref().map(|_| j.cache_digest(cfg)))
        .collect();
    let mut outputs: Vec<Option<JobOutput>> = vec![None; jobs.len()];
    let mut misses: Vec<usize> = Vec::new();
    for (i, j) in jobs.iter().enumerate() {
        let t_probe = Instant::now();
        let cached = match (&cache, &digests[i]) {
            (Some(c), Some(d)) => c.load(d).and_then(|fields| j.decode(&fields)),
            _ => None,
        };
        match cached {
            Some(out) => {
                reporter.cache_hit(&j.key());
                if let Some(s) = sink.as_deref_mut() {
                    let bytes = match (&cache, &digests[i]) {
                        (Some(c), Some(d)) => c.size_of(d).unwrap_or(0),
                        _ => 0,
                    };
                    s.record_cached(j.key(), t_probe.elapsed(), bytes);
                }
                outputs[i] = Some(out);
            }
            None => {
                if cache.is_some() {
                    if let Some(s) = sink.as_deref_mut() {
                        s.record_miss();
                    }
                }
                misses.push(i);
            }
        }
    }
    if let Some(s) = sink.as_deref_mut() {
        s.phases.add("cache probe", t0.elapsed());
    }

    // Phase 2: execute the misses.  The collector callback runs on this
    // thread, so progress, cache writes and sink updates need no
    // synchronisation.  When profiling, each execution is wrapped in
    // `gperf::measure_point` on its worker thread, harvesting the
    // engine counters the run reported into thread-local scratch.
    let profile = sink.is_some();
    let workers = pool::resolve_workers(rc.jobs).min(misses.len().max(1));
    let t_exec = Instant::now();
    let fresh = pool::run_indexed(
        &misses,
        rc.jobs,
        |&i| {
            if profile {
                let (out, sample) = gperf::measure_point(|| jobs[i].run(cfg));
                (out, Some(sample))
            } else {
                (jobs[i].run(cfg), None)
            }
        },
        |done| {
            let i = misses[done.index];
            reporter.finished(&jobs[i].key(), done.wall);
            let mut stored = None;
            if let (Some(c), Some(d)) = (&cache, &digests[i]) {
                stored = c.store(d, &jobs[i].key(), &Job::encode(&done.result.0));
            }
            if let Some(s) = sink.as_deref_mut() {
                if let Some(sample) = done.result.1 {
                    s.record_executed(jobs[i].key(), done.worker, sample);
                }
                if let Some(bytes) = stored {
                    s.record_store(bytes);
                }
            }
        },
    );
    for (&i, (out, _)) in misses.iter().zip(fresh) {
        outputs[i] = Some(out);
    }
    if let Some(s) = sink {
        let exec_wall = t_exec.elapsed();
        s.record_pool_run(workers, exec_wall);
        s.phases.add("execute", exec_wall);
    }

    let stats = SweepStats {
        total: jobs.len(),
        executed: reporter.executed(),
        cache_hits: reporter.cache_hits(),
        wall: t0.elapsed(),
    };
    let outputs = outputs
        .into_iter()
        .map(|o| o.expect("every job resolved by cache or pool"))
        .collect();
    (outputs, stats)
}

/// Run one experiment set through the pool — the parallel counterpart
/// of [`gridmon_core::figures::run_set`], byte-identical to it for any
/// worker count.
pub fn run_set(
    set: u32,
    cfg: &RunConfig,
    scale: f64,
    rc: &RunnerConfig,
) -> Result<(SetData, SweepStats), FigureError> {
    let (mut sets, stats) = run_sets(&[set], cfg, scale, rc)?;
    Ok((sets.pop().expect("one set in, one set out"), stats))
}

/// [`run_set`] with optional self-profiling (see [`run_jobs_profiled`]).
pub fn run_set_profiled(
    set: u32,
    cfg: &RunConfig,
    scale: f64,
    rc: &RunnerConfig,
    sink: Option<&mut PerfSink>,
) -> Result<(SetData, SweepStats), FigureError> {
    let (mut sets, stats) = run_sets_profiled(&[set], cfg, scale, rc, sink)?;
    Ok((sets.pop().expect("one set in, one set out"), stats))
}

/// Run several experiment sets as one pooled job list, so work from a
/// cheap set backfills idle workers while another set's expensive tail
/// points finish.  Returned `SetData` are in the order of `sets`.
pub fn run_sets(
    sets: &[u32],
    cfg: &RunConfig,
    scale: f64,
    rc: &RunnerConfig,
) -> Result<(Vec<SetData>, SweepStats), FigureError> {
    run_sets_profiled(sets, cfg, scale, rc, None)
}

/// [`run_sets`] with optional self-profiling (see [`run_jobs_profiled`]).
pub fn run_sets_profiled(
    sets: &[u32],
    cfg: &RunConfig,
    scale: f64,
    rc: &RunnerConfig,
    mut sink: Option<&mut PerfSink>,
) -> Result<(Vec<SetData>, SweepStats), FigureError> {
    let t0 = Instant::now();
    let mut specs_of_set = Vec::with_capacity(sets.len());
    let mut jobs = Vec::new();
    for &set in sets {
        let specs = enumerate_set(set, scale)?;
        jobs.extend(specs.iter().map(|&s| Job::Figure(s)));
        specs_of_set.push((set, specs));
    }
    if let Some(s) = sink.as_deref_mut() {
        s.phases.add("enumerate", t0.elapsed());
    }
    let (outputs, stats) = run_jobs_profiled(&jobs, cfg, rc, sink.as_deref_mut());
    let t_assemble = Instant::now();
    let mut cursor = outputs.into_iter();
    let data = specs_of_set
        .into_iter()
        .map(|(set, specs)| {
            let results: Vec<_> = cursor
                .by_ref()
                .take(specs.len())
                .map(|o| o.measurement().expect("figure jobs yield measurements"))
                .collect();
            assemble_set(set, &specs, &results)
        })
        .collect();
    if let Some(s) = sink {
        s.phases.add("assemble", t_assemble.elapsed());
    }
    Ok((data, stats))
}

/// Run a user-authored scenario's full sweep through the pool: one
/// [`Job::Scenario`] per declared x value, cached and scheduled exactly
/// like the built-in figure points.  Results are in `spec.x_values`
/// order, byte-identical for any worker count.
///
/// The spec is dry-compiled at every x first, so authoring mistakes the
/// validator cannot see (an unknown host, a TTL-less freshness probe)
/// surface as an error here instead of a panic on a pool thread.
pub fn run_scenario(
    spec: &gscenario::ScenarioSpec,
    cfg: &RunConfig,
    rc: &RunnerConfig,
) -> Result<(Vec<gridmon_core::runcfg::Measurement>, SweepStats), String> {
    spec.validate().map_err(|e| e.to_string())?;
    let shared = std::sync::Arc::new(spec.clone());
    let jobs: Vec<Job> = spec
        .x_values
        .iter()
        .map(|&x| {
            Job::Scenario(ScenarioPoint {
                spec: shared.clone(),
                x,
            })
        })
        .collect();
    for job in &jobs {
        if let Job::Scenario(p) = job {
            let mut c = *cfg;
            c.seed = job.seed(cfg);
            gridmon_core::scenario::compile(&p.spec, p.x, &c).map_err(|e| e.to_string())?;
        }
    }
    let (outputs, stats) = run_jobs(&jobs, cfg, rc);
    let measurements = outputs
        .into_iter()
        .map(|o| o.measurement().expect("scenario jobs yield measurements"))
        .collect();
    Ok((measurements, stats))
}

/// Run figure points with observability harvested, across the pool.
///
/// Observed runs are never cached: the result cache stores figure
/// measurements (a few floats), while an observed point carries the
/// full event/metrics harvest, which is an artifact to export, not a
/// memoizable scalar.  `cfg.obs` must enable tracing and/or metrics.
pub fn run_points_observed(
    specs: &[PointSpec],
    cfg: &RunConfig,
    rc: &RunnerConfig,
) -> Vec<ObservedPoint> {
    run_points_observed_profiled(specs, cfg, rc, None)
}

/// [`run_points_observed`] with optional self-profiling.  Observed
/// sweeps bypass the cache, so the sink collects execution records and
/// pool attribution only (its cache counters stay zero).
pub fn run_points_observed_profiled(
    specs: &[PointSpec],
    cfg: &RunConfig,
    rc: &RunnerConfig,
    mut sink: Option<&mut PerfSink>,
) -> Vec<ObservedPoint> {
    assert!(
        cfg.obs.enabled(),
        "run_points_observed requires cfg.obs to enable tracing or metrics"
    );
    let mut reporter = Reporter::new(specs.len(), !rc.quiet);
    let profile = sink.is_some();
    let workers = pool::resolve_workers(rc.jobs).min(specs.len().max(1));
    let t_exec = Instant::now();
    let observed = pool::run_indexed(
        specs,
        rc.jobs,
        |spec| {
            if profile {
                let (out, sample) = gperf::measure_point(|| spec.run_observed(cfg));
                (out, Some(sample))
            } else {
                (spec.run_observed(cfg), None)
            }
        },
        |done| {
            reporter.finished(&specs[done.index].key(), done.wall);
            if let (Some(s), Some(sample)) = (sink.as_deref_mut(), done.result.1) {
                s.record_executed(specs[done.index].key(), done.worker, sample);
            }
        },
    );
    if let Some(s) = sink {
        let exec_wall = t_exec.elapsed();
        s.record_pool_run(workers, exec_wall);
        s.phases.add("execute", exec_wall);
    }
    observed.into_iter().map(|(out, _)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmon_core::figures;
    use simcore::SimDuration;

    /// A deliberately tiny configuration: the mechanisms on a very short
    /// clock, so scheduling tests stay fast.
    fn tiny_cfg(seed: u64) -> RunConfig {
        let mut cfg = RunConfig::quick(seed);
        cfg.warmup = SimDuration::from_secs(5);
        cfg.window = SimDuration::from_secs(15);
        cfg
    }

    fn scratch_cache(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gridmon-runner-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn parallel_equals_sequential_bit_for_bit() {
        let cfg = tiny_cfg(7);
        let scale = 0.02;
        let seq = figures::run_set(1, &cfg, scale, None).unwrap();
        for jobs in [2, 4] {
            let rc = RunnerConfig {
                jobs,
                cache_dir: None,
                quiet: true,
            };
            let (par, stats) = run_set(1, &cfg, scale, &rc).unwrap();
            assert_eq!(stats.cache_hits, 0);
            assert_eq!(stats.executed, stats.total);
            assert_eq!(seq.series.len(), par.series.len());
            for ((l1, m1), (l2, m2)) in seq.series.iter().zip(&par.series) {
                assert_eq!(l1, l2);
                for (a, b) in m1.iter().zip(m2) {
                    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
                    assert_eq!(a.response_time.to_bits(), b.response_time.to_bits());
                    assert_eq!(a.load1.to_bits(), b.load1.to_bits());
                    assert_eq!(a.cpu_load.to_bits(), b.cpu_load.to_bits());
                    assert_eq!((a.refused, a.completions), (b.refused, b.completions));
                }
            }
        }
    }

    #[test]
    fn warm_cache_executes_nothing_and_matches() {
        let cfg = tiny_cfg(3);
        let dir = scratch_cache("warm");
        let rc = RunnerConfig {
            jobs: 2,
            cache_dir: Some(dir.clone()),
            quiet: true,
        };
        let (cold, s1) = run_set(2, &cfg, 0.01, &rc).unwrap();
        assert_eq!(s1.cache_hits, 0);
        assert!(s1.executed > 0);
        let (warm, s2) = run_set(2, &cfg, 0.01, &rc).unwrap();
        assert_eq!(
            s2.executed, 0,
            "warm run must be served entirely from cache"
        );
        assert_eq!(s2.cache_hits, s1.total);
        for ((_, m1), (_, m2)) in cold.series.iter().zip(&warm.series) {
            for (a, b) in m1.iter().zip(m2) {
                assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
                assert_eq!(a.response_time.to_bits(), b.response_time.to_bits());
            }
        }
        // A different seed addresses different cache entries.
        let cfg2 = tiny_cfg(4);
        let (_, s3) = run_set(2, &cfg2, 0.01, &rc).unwrap();
        assert_eq!(s3.cache_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_set_scheduling_preserves_per_set_results() {
        let cfg = tiny_cfg(11);
        let rc = RunnerConfig {
            jobs: 3,
            cache_dir: None,
            quiet: true,
        };
        let (both, _) = run_sets(&[1, 3], &cfg, 0.01, &rc).unwrap();
        assert_eq!(both.len(), 2);
        assert_eq!(both[0].set, 1);
        assert_eq!(both[1].set, 3);
        let (alone, _) = run_set(3, &cfg, 0.01, &rc).unwrap();
        for ((l1, m1), (l2, m2)) in alone.series.iter().zip(&both[1].series) {
            assert_eq!(l1, l2);
            for (a, b) in m1.iter().zip(m2) {
                assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
            }
        }
    }

    #[test]
    fn observed_points_match_plain_measurements() {
        use gridmon_core::ObsMode;
        let cfg = tiny_cfg(9);
        let mut ocfg = cfg;
        ocfg.obs = ObsMode::FULL;
        let specs = figures::enumerate_set(1, 0.01).unwrap();
        let specs = &specs[..3.min(specs.len())];
        let rc = RunnerConfig {
            jobs: 2,
            cache_dir: None,
            quiet: true,
        };
        let observed = run_points_observed(specs, &ocfg, &rc);
        assert_eq!(observed.len(), specs.len());
        for (spec, op) in specs.iter().zip(&observed) {
            let plain = spec.run(&cfg);
            assert_eq!(op.m, plain, "tracing must not perturb {}", spec.key());
            assert!(!op.report.events.is_empty());
            assert!(!op.report.metrics.is_empty());
        }
    }

    #[test]
    fn profiled_sweep_pins_cache_and_pool_accounting() {
        let cfg = tiny_cfg(21);
        for jobs in [1usize, 4] {
            let dir = scratch_cache(&format!("prof{jobs}"));
            let rc = RunnerConfig {
                jobs,
                cache_dir: Some(dir.clone()),
                quiet: true,
            };

            // Cold run: every point misses, executes and is stored.
            let mut cold = gperf::PerfSink::new();
            let (_, s1) = run_set_profiled(1, &cfg, 0.02, &rc, Some(&mut cold)).unwrap();
            assert_eq!(cold.cache.misses as usize, s1.total, "jobs={jobs}");
            assert_eq!(cold.cache.hits, 0);
            assert!(cold.cache.bytes_written > 0, "fresh results stored");
            assert_eq!(cold.cache.bytes_read, 0);
            assert_eq!(cold.points.len(), s1.total);
            assert_eq!(cold.executed().count(), s1.total);
            for p in cold.executed() {
                assert!(p.sim.events > 0, "engine counters for {}", p.key);
                assert!(p.sim.engine_runs >= 1);
                assert!(p.sim.popped >= p.sim.events, "pops include every dispatch");
                assert!(p.wall > Duration::ZERO);
                assert!(p.worker < jobs, "worker id within the pool");
            }
            assert_eq!(cold.pool.jobs.iter().sum::<usize>(), s1.total);
            assert!(cold.pool.workers >= 1 && cold.pool.workers <= jobs);
            assert!(cold.pool.busy_total() > Duration::ZERO);
            let share = cold.pool.busy_share();
            assert!(share > 0.0 && share <= 1.0, "busy share {share}");
            let phases: Vec<String> = cold.phases.entries().iter().map(|e| e.0.clone()).collect();
            for want in ["enumerate", "cache probe", "execute", "assemble"] {
                assert!(phases.iter().any(|p| p == want), "phase {want} recorded");
            }

            // Warm run: everything is a hit, nothing executes or stores.
            let mut warm = gperf::PerfSink::new();
            let (_, s2) = run_set_profiled(1, &cfg, 0.02, &rc, Some(&mut warm)).unwrap();
            assert_eq!(s2.executed, 0, "jobs={jobs}: warm run served from cache");
            assert_eq!(warm.cache.hits as usize, s2.total);
            assert_eq!(warm.cache.misses, 0);
            assert!(warm.cache.bytes_read > 0, "hit sizes accounted");
            assert_eq!(warm.cache.bytes_written, 0);
            assert_eq!(warm.executed().count(), 0);
            assert_eq!(warm.totals().cached as usize, s2.total);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn scenario_sweep_is_order_invariant_and_cached() {
        let cfg = tiny_cfg(17);
        let spec =
            gridmon_core::figures::SeriesId::S6(gridmon_core::experiments::Set6Series::Federated3)
                .catalogue_spec();
        let mut spec = spec;
        spec.x_values = vec![3, 6];
        let (seq, _) = run_scenario(&spec, &cfg, &RunnerConfig::sequential()).unwrap();
        let dir = scratch_cache("scenario");
        let rc = RunnerConfig {
            jobs: 8,
            cache_dir: Some(dir.clone()),
            quiet: true,
        };
        let (par, s1) = run_scenario(&spec, &cfg, &rc).unwrap();
        assert_eq!(s1.cache_hits, 0);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a, b, "worker count must not change a bit");
        }
        // Warm: everything from cache, same bits.
        let (warm, s2) = run_scenario(&spec, &cfg, &rc).unwrap();
        assert_eq!(s2.executed, 0);
        assert_eq!(warm, par);
        // Editing the topology (not the name) re-addresses the cache.
        let mut edited = spec.clone();
        edited.workload.users = gscenario::Count::Lit(12);
        let (_, s3) = run_scenario(&edited, &cfg, &rc).unwrap();
        assert_eq!(s3.cache_hits, 0, "fingerprint must fold into the digest");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_errors_surface_before_the_pool() {
        let cfg = tiny_cfg(1);
        let mut spec =
            gridmon_core::figures::SeriesId::S6(gridmon_core::experiments::Set6Series::FlatGiis)
                .catalogue_spec();
        spec.services[0].1.host = "lucky2".to_string();
        let err = run_scenario(&spec, &cfg, &RunnerConfig::sequential()).unwrap_err();
        assert!(err.contains("lucky2"), "{err}");
    }

    #[test]
    fn unknown_set_is_reported_not_panicked() {
        let rc = RunnerConfig::sequential();
        let err = run_set(9, &tiny_cfg(1), 1.0, &rc).unwrap_err();
        assert_eq!(err, FigureError::UnknownSet(9));
    }
}
