//! A work-stealing thread pool for embarrassingly parallel job lists,
//! built on `std::thread` and channels only (no new dependencies).
//!
//! Jobs are dealt round-robin into one deque per worker; each worker
//! drains its own deque from the front and, when empty, steals from the
//! back of a victim's deque.  Sweep points vary in cost by an order of
//! magnitude (600-user points dwarf 1-user points), so stealing — not
//! static partitioning — is what keeps all cores busy to the end.
//!
//! Determinism: the executor only *schedules* with threads; every job
//! is a pure function of its spec, and results are returned indexed by
//! submission order, so the output is independent of worker count and
//! interleaving.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// One finished job: its submission index, result, wall time and the
/// worker that ran it (0 on the inline sequential path).
pub struct Completion<R> {
    pub index: usize,
    pub result: R,
    pub wall: Duration,
    pub worker: usize,
}

/// Resolve a `--jobs`-style request: `0` means "all available cores".
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

/// Execute `exec` over every job, with `workers` threads, invoking
/// `on_done` on the calling thread as each job finishes (in completion
/// order).  Returns results in submission order.
///
/// `workers == 1` runs inline on the calling thread — the exact
/// sequential path, with no scheduling layer to distrust.
pub fn run_indexed<J, R, F>(
    jobs: &[J],
    workers: usize,
    exec: F,
    mut on_done: impl FnMut(&Completion<R>),
) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let workers = resolve_workers(workers).min(jobs.len().max(1));
    if workers <= 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(index, job)| {
                let t0 = Instant::now();
                let result = exec(job);
                let done = Completion {
                    index,
                    result,
                    wall: t0.elapsed(),
                    worker: 0,
                };
                on_done(&done);
                done.result
            })
            .collect();
    }

    // Deal jobs round-robin across per-worker deques.  Round-robin (not
    // block) dealing spreads each series' expensive tail points over
    // all workers, so most jobs are served locally and stealing only
    // smooths the imbalance.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..jobs.len())
                    .filter(|i| i % workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let unclaimed = AtomicUsize::new(jobs.len());

    let (tx, rx) = mpsc::channel::<Completion<R>>();
    let mut results: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let unclaimed = &unclaimed;
            let exec = &exec;
            scope.spawn(move || {
                loop {
                    // Own work first (front), then steal (back).
                    let mut claimed = deques[w].lock().unwrap().pop_front();
                    if claimed.is_none() {
                        for v in 1..workers {
                            let victim = (w + v) % workers;
                            claimed = deques[victim].lock().unwrap().pop_back();
                            if claimed.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(index) = claimed else {
                        // Every deque is empty; in-flight jobs belong to
                        // other workers and no job spawns new work.
                        break;
                    };
                    unclaimed.fetch_sub(1, Ordering::Relaxed);
                    let t0 = Instant::now();
                    let result = exec(&jobs[index]);
                    // A closed receiver means the collector bailed out
                    // (a sibling panicked); just stop.
                    if tx
                        .send(Completion {
                            index,
                            result,
                            wall: t0.elapsed(),
                            worker: w,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
        drop(tx);

        let mut received = 0usize;
        while received < jobs.len() {
            match rx.recv() {
                Ok(done) => {
                    on_done(&done);
                    results[done.index] = Some(done.result);
                    received += 1;
                }
                // All senders gone with jobs missing: a worker panicked;
                // scope join will propagate it below.
                Err(_) => break,
            }
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("worker completed every claimed job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_submission_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..257).collect();
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(&jobs, workers, |&j| j * j, |_| {});
            let expect: Vec<u64> = jobs.iter().map(|j| j * j).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let jobs: Vec<usize> = (0..100).collect();
        let runs = AtomicU64::new(0);
        let mut seen = 0usize;
        let out = run_indexed(
            &jobs,
            4,
            |&j| {
                runs.fetch_add(1, Ordering::Relaxed);
                j
            },
            |_| seen += 1,
        );
        assert_eq!(runs.load(Ordering::Relaxed), 100);
        assert_eq!(seen, 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn uneven_job_costs_still_complete() {
        // One job 100x the cost of the rest: stealing must not deadlock
        // or drop work.
        let jobs: Vec<u64> = (0..40)
            .map(|i| if i == 0 { 4_000_000 } else { 40_000 })
            .collect();
        let out = run_indexed(
            &jobs,
            4,
            |&spins| {
                let mut acc = 0u64;
                for i in 0..spins {
                    acc = acc.wrapping_add(std::hint::black_box(i));
                }
                acc
            },
            |_| {},
        );
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn completions_attribute_a_valid_worker() {
        let jobs: Vec<usize> = (0..50).collect();
        let mut workers_seen = Vec::new();
        run_indexed(&jobs, 4, |&j| j, |done| workers_seen.push(done.worker));
        assert_eq!(workers_seen.len(), 50);
        assert!(workers_seen.iter().all(|&w| w < 4));
        // Inline path attributes everything to worker 0.
        let mut inline_workers = Vec::new();
        run_indexed(&jobs, 1, |&j| j, |done| inline_workers.push(done.worker));
        assert!(inline_workers.iter().all(|&w| w == 0));
    }

    #[test]
    fn zero_workers_resolves_to_available_parallelism() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u32> = run_indexed(&[] as &[u32], 4, |&j| j, |_| {});
        assert!(out.is_empty());
    }
}
