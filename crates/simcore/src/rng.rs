//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible across runs, platforms and
//! dependency upgrades, so we implement our own small PRNG instead of
//! depending on an external crate whose stream might change between
//! versions.  The generator is xoshiro256** (Blackman & Vigna), seeded
//! through SplitMix64 — the standard, well-tested combination.

/// A deterministic xoshiro256** PRNG.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream; used to give each simulated user
    /// or component its own generator so event-ordering changes do not
    /// perturb unrelated random sequences.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Exponentially distributed sample with the given mean.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Guard against ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Shuffle a slice (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        for i in (1..n).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector() {
        // Pin the stream so accidental algorithm changes are caught.
        let mut r = SimRng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = SimRng::new(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.next_below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut root1 = SimRng::new(5);
        let mut root2 = SimRng::new(5);
        let mut a1 = root1.fork(1);
        let mut a2 = root2.fork(1);
        assert_eq!(a1.next_u64(), a2.next_u64());
        let mut b1 = SimRng::new(5).fork(2);
        assert_ne!(a1.next_u64(), b1.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
