//! Simulated time.
//!
//! Time is measured in integer microseconds since the start of the
//! simulation.  Integer time keeps the event calendar exactly ordered and
//! makes runs reproducible; one microsecond is far below the resolution of
//! any effect modelled in this workspace (network RTTs are hundreds of
//! microseconds, CPU demands are tens of microseconds or more).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from (possibly fractional) seconds, rounding to the nearest
    /// microsecond.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimTime");
        SimTime((s * 1e6).round() as u64)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier` is
    /// actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from (possibly fractional) seconds, rounding to the nearest
    /// microsecond.  Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scale by a float factor (for jitter), rounding to a microsecond.
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration(((self.0 as f64) * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        debug_assert!(self >= other, "SimTime subtraction underflow");
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_add(other.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_sub(other.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_secs_f64(), 0.25);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_micros(), 14_000_000);
        assert_eq!(((t + d) - t).as_micros(), d.as_micros());
        assert_eq!((d - SimDuration::from_secs(10)).as_micros(), 0); // saturates
        assert_eq!((d * 3).as_secs_f64(), 12.0);
        assert_eq!((d / 2).as_secs_f64(), 2.0);
    }

    #[test]
    fn saturating_since_is_zero_for_future() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(1.5).as_micros(), 150);
        assert_eq!(d.mul_f64(-2.0).as_micros(), 0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
