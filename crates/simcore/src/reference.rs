//! The pre-pool event calendar, kept verbatim as a differential oracle.
//!
//! [`RefEngine`] is the engine as it stood before closures moved into
//! size-classed pooled buffers: every event is `Box`ed, and compaction
//! rebuilds the heap through an `into_vec`/`collect`/`from` round trip.
//! The gridmon-diff engine suite replays identical schedule/cancel
//! scripts on both machines and asserts the dispatch streams and
//! counters match bit-for-bit.  Compiled only with the
//! `reference-kernel` feature; never used by the simulation.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Handle to a scheduled reference event; can be used to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct RefEventHandle {
    slot: u32,
    gen: u32,
}

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut RefEngine<W>)>;

struct EventSlot<W> {
    gen: u32,
    f: Option<EventFn<W>>,
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct QKey {
    time: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

/// The original box-per-event discrete-event engine.
pub struct RefEngine<W> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<QKey>>,
    slots: Vec<EventSlot<W>>,
    free: Vec<u32>,
    live: usize,
    pub fired: u64,
    pub popped: u64,
    pub advances: u64,
    stale: usize,
    compaction: bool,
    pub rng: SimRng,
}

impl<W> RefEngine<W> {
    pub fn new(seed: u64) -> Self {
        RefEngine {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            fired: 0,
            popped: 0,
            advances: 0,
            stale: 0,
            compaction: true,
            rng: SimRng::new(seed),
        }
    }

    pub fn set_compaction(&mut self, on: bool) {
        self.compaction = on;
    }

    pub fn stale_keys(&self) -> usize {
        self.stale
    }

    fn maybe_compact(&mut self) {
        if !self.compaction || self.stale <= 64 || self.stale < self.heap.len() / 2 {
            return;
        }
        let keys = std::mem::take(&mut self.heap).into_vec();
        let live: Vec<Reverse<QKey>> = keys
            .into_iter()
            .filter(|Reverse(k)| {
                self.slots
                    .get(k.slot as usize)
                    .is_some_and(|s| s.gen == k.gen)
            })
            .collect();
        debug_assert_eq!(live.len(), self.live);
        self.heap = BinaryHeap::from(live);
        self.stale = 0;
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn pending(&self) -> usize {
        self.live
    }

    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut RefEngine<W>) + 'static,
    ) -> RefEventHandle {
        let at = at.max(self.now);
        let slot = if let Some(i) = self.free.pop() {
            self.slots[i as usize].f = Some(Box::new(f));
            i
        } else {
            let i = self.slots.len() as u32;
            self.slots.push(EventSlot {
                gen: 0,
                f: Some(Box::new(f)),
            });
            i
        };
        let gen = self.slots[slot as usize].gen;
        let seq = self.seq;
        self.seq += 1;
        self.live += 1;
        self.heap.push(Reverse(QKey {
            time: at,
            seq,
            slot,
            gen,
        }));
        RefEventHandle { slot, gen }
    }

    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut RefEngine<W>) + 'static,
    ) -> RefEventHandle {
        self.schedule_at(self.now + delay, f)
    }

    pub fn cancel(&mut self, h: RefEventHandle) -> bool {
        if let Some(slot) = self.slots.get_mut(h.slot as usize) {
            if slot.gen == h.gen && slot.f.is_some() {
                slot.f = None;
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(h.slot);
                self.live -= 1;
                self.stale += 1;
                self.maybe_compact();
                return true;
            }
        }
        false
    }

    fn step(&mut self, world: &mut W, limit: SimTime) -> bool {
        loop {
            let Some(Reverse(top)) = self.heap.peek() else {
                return false;
            };
            if top.time > limit {
                return false;
            }
            let Reverse(key) = self.heap.pop().expect("peeked");
            self.popped += 1;
            let slot = &mut self.slots[key.slot as usize];
            if slot.gen != key.gen {
                self.stale = self.stale.saturating_sub(1);
                continue;
            }
            let Some(f) = slot.f.take() else {
                continue;
            };
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(key.slot);
            self.live -= 1;
            debug_assert!(key.time >= self.now, "time went backwards");
            if key.time > self.now {
                self.advances += 1;
            }
            self.now = key.time;
            self.fired += 1;
            f(world, self);
            return true;
        }
    }

    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        while self.step(world, until) {}
        if self.now < until {
            self.now = until;
        }
    }

    pub fn run_until_with(
        &mut self,
        world: &mut W,
        until: SimTime,
        hook: &mut dyn FnMut(&mut W, SimTime, u64),
    ) {
        while self.step(world, until) {
            hook(world, self.now, self.fired);
        }
        if self.now < until {
            self.now = until;
        }
    }

    pub fn run_to_completion(&mut self, world: &mut W) {
        while self.step(world, SimTime::MAX) {}
    }
}
