//! Processor-sharing CPU model.
//!
//! Each simulated machine owns one [`PsCpu`] with `cores` cores and a
//! relative `speed` factor (1.0 = the reference 1133 MHz PIII of the paper's
//! "lucky" testbed nodes).  Runnable tasks share the cores in the classic
//! egalitarian processor-sharing discipline: with `n` runnable tasks on `c`
//! cores each task progresses at rate `speed * min(1, c/n)` reference-CPU
//! seconds per second.  This reproduces the two regimes that matter for the
//! paper's load metrics:
//!
//! * under-subscription (`n <= c`): every task runs at full speed and CPU
//!   utilisation is `n/c`;
//! * over-subscription (`n > c`): utilisation is 100 % and the ready queue
//!   grows, which is what the Linux `load1` (one-minute load average) metric
//!   reported by Ganglia measures.
//!
//! `PsCpu` is a pure state machine: it never touches the event calendar.
//! The owner (the network world) asks [`PsCpu::next_completion`] after every
//! mutation and manages a single pending completion event per CPU.

use crate::slab::{Slab, SlabKey};
use crate::time::SimTime;

/// Token identifying a task to the owner (typically a request id).
pub type CpuToken = u64;

#[derive(Debug)]
struct Task {
    /// Remaining work in *reference-CPU microseconds* (work at speed 1.0).
    remaining: f64,
    token: CpuToken,
}

/// A multi-core processor-sharing CPU.
pub struct PsCpu {
    cores: f64,
    speed: f64,
    tasks: Slab<Task>,
    last: SimTime,
    /// Accumulated busy core-microseconds (for CPU-load accounting).
    busy_core_us: f64,
}

/// Tolerance below which a task is considered finished (microseconds of
/// remaining work); guards against floating-point residue.
const EPS: f64 = 1e-3;

impl PsCpu {
    /// Create a CPU with `cores` cores and relative `speed` (1.0 = the
    /// reference core).
    pub fn new(cores: u32, speed: f64) -> Self {
        assert!(cores > 0 && speed > 0.0);
        PsCpu {
            cores: cores as f64,
            speed,
            tasks: Slab::new(),
            last: SimTime::ZERO,
            busy_core_us: 0.0,
        }
    }

    pub fn cores(&self) -> u32 {
        self.cores as u32
    }

    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Number of currently runnable tasks (running + ready), the quantity
    /// the Linux load average counts.
    pub fn runnable(&self) -> usize {
        self.tasks.len()
    }

    /// Current per-task progress rate in reference-CPU-microseconds per
    /// microsecond of wall time.
    fn rate(&self) -> f64 {
        let n = self.tasks.len() as f64;
        if n == 0.0 {
            0.0
        } else {
            self.speed * (self.cores / n).min(1.0)
        }
    }

    /// Instantaneous utilisation in `[0, 1]` (busy cores / total cores).
    pub fn utilization(&self) -> f64 {
        let n = self.tasks.len() as f64;
        (n / self.cores).min(1.0)
    }

    /// Total busy core-seconds accumulated since construction, advanced to
    /// `now`.  Monotonic; callers diff successive readings to get interval
    /// utilisation.
    pub fn busy_core_seconds(&mut self, now: SimTime) -> f64 {
        self.advance_accounting(now);
        self.busy_core_us / 1e6
    }

    fn advance_accounting(&mut self, now: SimTime) {
        debug_assert!(now >= self.last, "CPU time went backwards");
        let dt = (now - self.last).as_micros() as f64;
        if dt <= 0.0 {
            return;
        }
        let n = self.tasks.len() as f64;
        let busy_cores = n.min(self.cores);
        self.busy_core_us += busy_cores * dt;
        let rate = self.rate();
        if rate > 0.0 {
            let work = rate * dt;
            for (_, t) in self.tasks.iter_mut() {
                t.remaining -= work;
            }
        }
        self.last = now;
    }

    /// Advance the CPU to `now`, returning the tokens of all tasks that have
    /// finished by then (in submission order).
    pub fn advance(&mut self, now: SimTime) -> Vec<CpuToken> {
        self.advance_accounting(now);
        let finished: Vec<SlabKey> = self
            .tasks
            .iter()
            .filter(|(_, t)| t.remaining <= EPS)
            .map(|(k, _)| k)
            .collect();
        finished
            .into_iter()
            .filter_map(|k| self.tasks.remove(k).map(|t| t.token))
            .collect()
    }

    /// Submit a task demanding `work_us` reference-CPU microseconds.
    /// The caller must have called [`PsCpu::advance`] at the current time
    /// first (all owner entry points do).
    pub fn submit(&mut self, now: SimTime, work_us: f64, token: CpuToken) -> SlabKey {
        debug_assert!(work_us >= 0.0);
        self.advance_accounting(now);
        self.tasks.insert(Task {
            remaining: work_us.max(EPS),
            token,
        })
    }

    /// Remove a task before completion (e.g. an aborted request).
    pub fn abort(&mut self, now: SimTime, key: SlabKey) -> Option<CpuToken> {
        self.advance_accounting(now);
        self.tasks.remove(key).map(|t| t.token)
    }

    /// The absolute time at which the earliest current task will finish, or
    /// `None` if the CPU is idle.  Changes whenever tasks are added or
    /// removed, so the owner must re-query after every mutation.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let rate = self.rate();
        if rate <= 0.0 {
            return None;
        }
        let min_rem = self
            .tasks
            .iter()
            .map(|(_, t)| t.remaining)
            .fold(f64::INFINITY, f64::min);
        if !min_rem.is_finite() {
            return None;
        }
        // Round up so the completion event never fires *before* the work is
        // done, guaranteeing progress (at least 1 µs ahead when work
        // remains).
        let dt_us = (min_rem.max(0.0) / rate).ceil() as u64;
        Some(SimTime(now.as_micros().saturating_add(dt_us.max(1))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime(us)
    }

    #[test]
    fn single_task_full_speed() {
        let mut cpu = PsCpu::new(2, 1.0);
        cpu.submit(t(0), 1000.0, 7);
        let next = cpu.next_completion(t(0)).unwrap();
        assert_eq!(next, t(1000));
        let done = cpu.advance(next);
        assert_eq!(done, vec![7]);
        assert_eq!(cpu.runnable(), 0);
    }

    #[test]
    fn two_tasks_two_cores_no_slowdown() {
        let mut cpu = PsCpu::new(2, 1.0);
        cpu.submit(t(0), 1000.0, 1);
        cpu.submit(t(0), 1000.0, 2);
        let next = cpu.next_completion(t(0)).unwrap();
        assert_eq!(next, t(1000));
        let done = cpu.advance(next);
        assert_eq!(done, vec![1, 2]);
    }

    #[test]
    fn oversubscription_halves_rate() {
        let mut cpu = PsCpu::new(1, 1.0);
        cpu.submit(t(0), 1000.0, 1);
        cpu.submit(t(0), 1000.0, 2);
        // Two tasks share one core: each runs at rate 0.5.
        let next = cpu.next_completion(t(0)).unwrap();
        assert_eq!(next, t(2000));
        let done = cpu.advance(next);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn speed_factor_scales() {
        let mut cpu = PsCpu::new(1, 2.0);
        cpu.submit(t(0), 1000.0, 1);
        assert_eq!(cpu.next_completion(t(0)).unwrap(), t(500));
    }

    #[test]
    fn staggered_arrival_processor_sharing() {
        let mut cpu = PsCpu::new(1, 1.0);
        cpu.submit(t(0), 1000.0, 1);
        // After 500us, task 1 has 500us left; add task 2.
        assert!(cpu.advance(t(500)).is_empty());
        cpu.submit(t(500), 500.0, 2);
        // Both now progress at 0.5: each needs 500 work -> 1000us more.
        let next = cpu.next_completion(t(500)).unwrap();
        assert_eq!(next, t(1500));
        let done = cpu.advance(next);
        assert_eq!(done, vec![1, 2]);
    }

    #[test]
    fn abort_removes_task_and_speeds_up_rest() {
        let mut cpu = PsCpu::new(1, 1.0);
        let k1 = cpu.submit(t(0), 1000.0, 1);
        cpu.submit(t(0), 1000.0, 2);
        assert!(cpu.advance(t(500)).is_empty()); // each has 750 left
        assert_eq!(cpu.abort(t(500), k1), Some(1));
        // Task 2 alone: 750us left at full rate.
        assert_eq!(cpu.next_completion(t(500)).unwrap(), t(1250));
    }

    #[test]
    fn busy_accounting() {
        let mut cpu = PsCpu::new(2, 1.0);
        cpu.submit(t(0), 1_000_000.0, 1); // 1 CPU-second of work
        let _ = cpu.advance(t(500_000));
        // One task on two cores: one core busy for 0.5s.
        let busy = cpu.busy_core_seconds(t(500_000));
        assert!((busy - 0.5).abs() < 1e-6, "busy {busy}");
        // Utilization is 0.5 (1 of 2 cores).
        assert!((cpu.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn busy_accounting_saturated() {
        let mut cpu = PsCpu::new(2, 1.0);
        for i in 0..6 {
            cpu.submit(t(0), 10_000_000.0, i);
        }
        assert_eq!(cpu.runnable(), 6);
        assert!((cpu.utilization() - 1.0).abs() < 1e-9);
        let busy = cpu.busy_core_seconds(t(1_000_000));
        assert!((busy - 2.0).abs() < 1e-6, "both cores busy for 1s: {busy}");
    }

    #[test]
    fn idle_cpu_has_no_completion() {
        let cpu = PsCpu::new(1, 1.0);
        assert!(cpu.next_completion(t(0)).is_none());
    }

    #[test]
    fn zero_work_finishes_immediately_but_after_now() {
        let mut cpu = PsCpu::new(1, 1.0);
        cpu.submit(t(100), 0.0, 9);
        let next = cpu.next_completion(t(100)).unwrap();
        assert!(next > t(100));
        assert_eq!(cpu.advance(next), vec![9]);
    }

    #[test]
    fn completion_tokens_in_submission_order() {
        let mut cpu = PsCpu::new(4, 1.0);
        cpu.submit(t(0), 100.0, 30);
        cpu.submit(t(0), 100.0, 10);
        cpu.submit(t(0), 100.0, 20);
        let done = cpu.advance(t(200));
        assert_eq!(done, vec![30, 10, 20]);
    }
}
