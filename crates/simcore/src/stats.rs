//! Statistics primitives for the simulation.
//!
//! The paper reports four metrics for each experiment point: throughput
//! (completed queries/second over a 10-minute window), mean response time,
//! the Ganglia one-minute load average (`load1`) and CPU load (percent of
//! cycles in user+system mode).  The types here provide exactly the
//! accumulators those need:
//!
//! * [`MeanAccum`] — count / mean / min / max of samples;
//! * [`WindowedMean`] — a `MeanAccum` that only accepts samples inside a
//!   `[start, end)` measurement window (the paper measures over a 10-minute
//!   span after warm-up);
//! * [`LoadAvg`] — Linux-style exponentially decayed load average;
//! * [`TimeWeighted`] — time-weighted average of a piecewise-constant
//!   signal (queue lengths, utilisation);
//! * [`Histogram`] — log-bucketed latency histogram with quantile queries;
//! * [`Series`] — a plain `(t, value)` time series for figure output.

use crate::time::{SimDuration, SimTime};

/// Online count/mean/min/max accumulator.
#[derive(Debug, Clone, Default)]
pub struct MeanAccum {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl MeanAccum {
    pub fn new() -> Self {
        MeanAccum {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A [`MeanAccum`] restricted to a measurement window `[start, end)`.
///
/// Samples are attributed to their *completion* time, matching how the
/// paper's client scripts recorded queries: only queries finishing inside
/// the 10-minute span count.
#[derive(Debug, Clone)]
pub struct WindowedMean {
    pub start: SimTime,
    pub end: SimTime,
    acc: MeanAccum,
}

impl WindowedMean {
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(end >= start);
        WindowedMean {
            start,
            end,
            acc: MeanAccum::new(),
        }
    }

    /// Record `x` if `at` falls inside the window; returns whether it did.
    pub fn record(&mut self, at: SimTime, x: f64) -> bool {
        if at >= self.start && at < self.end {
            self.acc.record(x);
            true
        } else {
            false
        }
    }

    pub fn stats(&self) -> &MeanAccum {
        &self.acc
    }

    /// Window length in seconds.
    pub fn span_secs(&self) -> f64 {
        (self.end - self.start).as_secs_f64()
    }

    /// Events per second over the window.
    pub fn rate_per_sec(&self) -> f64 {
        let span = self.span_secs();
        if span <= 0.0 {
            0.0
        } else {
            self.acc.count() as f64 / span
        }
    }
}

/// A Linux-style exponentially decayed load average.
///
/// The kernel updates `load = load * e + n * (1 - e)` every 5 seconds with
/// `e = exp(-5s / 60s)` for the one-minute average — exactly the
/// `load_one` metric Ganglia reports and the paper plots as "Load1".
#[derive(Debug, Clone)]
pub struct LoadAvg {
    value: f64,
    tau: f64,
    last: Option<SimTime>,
}

impl LoadAvg {
    /// One-minute load average (`tau` = 60 s).
    pub fn one_minute() -> Self {
        Self::with_tau(60.0)
    }

    pub fn with_tau(tau_secs: f64) -> Self {
        assert!(tau_secs > 0.0);
        LoadAvg {
            value: 0.0,
            tau: tau_secs,
            last: None,
        }
    }

    /// Feed the instantaneous runnable count `n` observed at `now`.
    pub fn update(&mut self, now: SimTime, n: f64) {
        let dt = match self.last {
            None => {
                // First sample initialises the average.
                self.value = 0.0;
                self.last = Some(now);
                5.0
            }
            Some(prev) => {
                let dt = now.saturating_since(prev).as_secs_f64();
                self.last = Some(now);
                dt
            }
        };
        let e = (-dt / self.tau).exp();
        self.value = self.value * e + n * (1.0 - e);
    }

    pub fn value(&self) -> f64 {
        self.value
    }
}

/// Time-weighted average of a piecewise-constant signal.
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    area: f64,
    current: f64,
    last: Option<SimTime>,
    start: Option<SimTime>,
    max: f64,
}

impl TimeWeighted {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the signal takes value `v` from `now` on.
    pub fn set(&mut self, now: SimTime, v: f64) {
        if let Some(last) = self.last {
            self.area += self.current * now.saturating_since(last).as_secs_f64();
        } else {
            self.start = Some(now);
        }
        self.last = Some(now);
        self.current = v;
        self.max = self.max.max(v);
    }

    /// Time-average over `[first set, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let (Some(start), Some(last)) = (self.start, self.last) else {
            return 0.0;
        };
        let total = now.saturating_since(start).as_secs_f64();
        if total <= 0.0 {
            return self.current;
        }
        let area = self.area + self.current * now.saturating_since(last).as_secs_f64();
        area / total
    }

    pub fn current(&self) -> f64 {
        self.current
    }

    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Log-bucketed histogram over positive values (e.g. response times in
/// seconds).  Buckets are half-open and grow geometrically by `2^(1/4)`,
/// giving ~19 % resolution over 10 decades with 128 buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    underflow: u64,
    total: u64,
    lo: f64,
    ratio_log2: f64,
}

impl Histogram {
    /// Histogram covering `[lo, ∞)`; values below `lo` count as underflow.
    pub fn new(lo: f64) -> Self {
        assert!(lo > 0.0);
        Histogram {
            buckets: vec![0; 128],
            underflow: 0,
            total: 0,
            lo,
            ratio_log2: 0.25, // 2^(1/4) per bucket
        }
    }

    fn bucket_of(&self, x: f64) -> Option<usize> {
        if x < self.lo {
            return None;
        }
        let b = ((x / self.lo).log2() / self.ratio_log2) as usize;
        Some(b.min(self.buckets.len() - 1))
    }

    pub fn record(&mut self, x: f64) {
        self.total += 1;
        match self.bucket_of(x) {
            Some(b) => self.buckets[b] += 1,
            None => self.underflow += 1,
        }
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    /// Merge another histogram's counts into this one.  Both histograms
    /// must share the same bucket layout (`lo`, growth ratio, bucket
    /// count) — merging per-node histograms into a registry snapshot
    /// only makes sense bucket-for-bucket.
    ///
    /// # Panics
    /// If the layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram merge: lo mismatch");
        assert_eq!(
            self.ratio_log2, other.ratio_log2,
            "histogram merge: bucket ratio mismatch"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram merge: bucket count mismatch"
        );
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.total += other.total;
    }

    /// Approximate quantile `q` in `[0, 1]` (returns the lower edge of the
    /// bucket containing the quantile).
    ///
    /// Edge cases: an empty histogram returns `0.0` for every `q`, and
    /// `q = 0` on a non-empty histogram returns the lower edge of the
    /// smallest occupied bucket (`0.0` if any sample underflowed) rather
    /// than pretending no data exists.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        // `q = 0` still names a data point (the minimum), so the rank
        // target is at least 1.
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= target {
            return 0.0;
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.lo * 2f64.powf(i as f64 * self.ratio_log2);
            }
        }
        self.lo * 2f64.powf((self.buckets.len() - 1) as f64 * self.ratio_log2)
    }
}

/// A `(time, value)` series, e.g. one Ganglia metric on one host.
#[derive(Debug, Clone, Default)]
pub struct Series {
    pub points: Vec<(SimTime, f64)>,
}

impl Series {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(pt, _)| pt <= t),
            "series times must be nondecreasing"
        );
        self.points.push((t, v));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of values with `start <= t < end`.
    pub fn mean_in(&self, start: SimTime, end: SimTime) -> f64 {
        let mut acc = MeanAccum::new();
        for &(t, v) in &self.points {
            if t >= start && t < end {
                acc.record(v);
            }
        }
        acc.mean()
    }

    /// Maximum of values with `start <= t < end`.
    pub fn max_in(&self, start: SimTime, end: SimTime) -> f64 {
        self.points
            .iter()
            .filter(|&&(t, _)| t >= start && t < end)
            .map(|&(_, v)| v)
            .fold(0.0, f64::max)
    }
}

/// Convenience: the measurement discipline of the paper — `warmup` then a
/// measurement window of `span`.
#[derive(Debug, Clone, Copy)]
pub struct MeasurementWindow {
    pub warmup: SimDuration,
    pub span: SimDuration,
}

impl MeasurementWindow {
    pub fn start(&self) -> SimTime {
        SimTime::ZERO + self.warmup
    }

    pub fn end(&self) -> SimTime {
        self.start() + self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn mean_accum_basic() {
        let mut m = MeanAccum::new();
        for x in [1.0, 2.0, 3.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 3.0);
    }

    #[test]
    fn empty_accum_is_zeroed() {
        let m = MeanAccum::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.min(), 0.0);
        assert_eq!(m.max(), 0.0);
    }

    #[test]
    fn windowed_mean_filters() {
        let mut w = WindowedMean::new(s(10), s(20));
        assert!(!w.record(s(5), 1.0));
        assert!(w.record(s(10), 2.0));
        assert!(w.record(s(19), 4.0));
        assert!(!w.record(s(20), 8.0)); // half-open
        assert_eq!(w.stats().count(), 2);
        assert!((w.rate_per_sec() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn load_avg_converges_to_constant_input() {
        let mut l = LoadAvg::one_minute();
        let mut t = SimTime::ZERO;
        for _ in 0..600 {
            l.update(t, 3.0);
            t += SimDuration::from_secs(5);
        }
        assert!((l.value() - 3.0).abs() < 1e-6, "value {}", l.value());
    }

    #[test]
    fn load_avg_decays_when_idle() {
        let mut l = LoadAvg::one_minute();
        let mut t = SimTime::ZERO;
        for _ in 0..120 {
            l.update(t, 5.0);
            t += SimDuration::from_secs(5);
        }
        let high = l.value();
        for _ in 0..12 {
            l.update(t, 0.0);
            t += SimDuration::from_secs(5);
        }
        // After one minute of idleness, decayed by e^-1.
        assert!(l.value() < high * 0.45);
        assert!(l.value() > high * 0.25);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.set(s(0), 1.0);
        tw.set(s(10), 3.0);
        // 10s at 1.0, 10s at 3.0 -> avg 2.0 at t=20.
        assert!((tw.average(s(20)) - 2.0).abs() < 1e-9);
        assert_eq!(tw.max(), 3.0);
        assert_eq!(tw.current(), 3.0);
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let mut h = Histogram::new(1e-3);
        for i in 1..=1000 {
            h.record(i as f64 / 100.0); // 0.01 .. 10.0
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        assert!(p50 < p95);
        assert!(p50 > 3.0 && p50 < 7.0, "p50 {p50}");
        assert!(p95 > 7.0 && p95 < 11.0, "p95 {p95}");
    }

    #[test]
    fn histogram_underflow() {
        let mut h = Histogram::new(1.0);
        h.record(0.5);
        h.record(2.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.25), 0.0); // underflow bucket
    }

    #[test]
    fn histogram_empty_quantiles_are_zero() {
        let h = Histogram::new(1.0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 0.0);
        }
    }

    #[test]
    fn histogram_quantile_zero_is_minimum_bucket_edge() {
        let mut h = Histogram::new(1.0);
        h.record(8.0);
        h.record(64.0);
        // Before the fix, q=0 produced a rank target of 0 and always
        // returned 0.0 even with data present.
        let q0 = h.quantile(0.0);
        assert!(q0 > 0.0, "q0 {q0}");
        assert!(q0 <= 8.0, "q0 {q0} must not exceed the smallest sample");
        assert_eq!(h.quantile(0.0), h.quantile(1e-12));
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::new(1e-3);
        let mut b = Histogram::new(1e-3);
        let mut both = Histogram::new(1e-3);
        for i in 1..=500 {
            let x = i as f64 / 50.0;
            a.record(x);
            both.record(x);
        }
        for i in 1..=300 {
            let x = i as f64 / 5.0;
            b.record(x);
            both.record(x);
        }
        b.record(1e-6); // underflow must merge too
        both.record(1e-6);
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_merge_into_empty() {
        let mut acc = Histogram::new(1.0);
        let mut h = Histogram::new(1.0);
        h.record(4.0);
        acc.merge(&h);
        assert_eq!(acc.count(), 1);
        assert_eq!(acc.quantile(0.5), h.quantile(0.5));
    }

    #[test]
    #[should_panic(expected = "lo mismatch")]
    fn histogram_merge_rejects_layout_mismatch() {
        let mut a = Histogram::new(1.0);
        let b = Histogram::new(2.0);
        a.merge(&b);
    }

    #[test]
    fn series_window_stats() {
        let mut ser = Series::new();
        for i in 0..10 {
            ser.push(s(i), i as f64);
        }
        assert_eq!(ser.mean_in(s(2), s(5)), 3.0);
        assert_eq!(ser.max_in(s(0), s(10)), 9.0);
        assert_eq!(ser.mean_in(s(100), s(200)), 0.0);
    }

    #[test]
    fn measurement_window_bounds() {
        let w = MeasurementWindow {
            warmup: SimDuration::from_secs(60),
            span: SimDuration::from_secs(600),
        };
        assert_eq!(w.start(), s(60));
        assert_eq!(w.end(), s(660));
    }
}
