//! # simcore — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate everything else in the `gridmon` workspace is
//! built on.  It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a microsecond-resolution simulated clock.
//! * [`Engine`] — an event calendar with stable (time, insertion-order)
//!   tie-breaking, cancellable event handles and a pluggable "world" type.
//! * [`cpu::PsCpu`] — a processor-sharing multi-core CPU model, the resource
//!   used for every compute demand in the simulated testbed.
//! * [`queueing::FifoTokens`] — a FIFO token pool used for server thread
//!   pools, listen backlogs and mutual-exclusion locks.
//! * [`rng::SimRng`] — a small, fully deterministic xoshiro256** PRNG, so
//!   simulation results are reproducible bit-for-bit across runs and
//!   platforms (no dependence on external crate versions).
//! * [`stats`] — counters, online mean/min/max accumulators, time-weighted
//!   averages, an exponentially weighted moving average (Linux-style load
//!   average), log-bucketed histograms and measurement-window recorders.
//!
//! The kernel is intentionally synchronous and single-threaded per
//! simulation: determinism is a design goal (the same seed must produce the
//! same metric series).  Parallelism in the workspace happens *across*
//! independent simulations (parameter-sweep points), never inside one.

pub mod cpu;
pub mod engine;
pub mod queueing;
#[cfg(feature = "reference-kernel")]
pub mod reference;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod time;

pub use cpu::PsCpu;
pub use engine::{Engine, EventHandle};
pub use queueing::{Acquire, FifoTokens};
pub use rng::SimRng;
pub use slab::Slab;
pub use time::{SimDuration, SimTime};
