//! FIFO token pools: the building block for thread pools, listen backlogs,
//! connection-count limits and mutual-exclusion locks in the simulated
//! servers.
//!
//! A [`FifoTokens`] pool has a fixed capacity.  [`FifoTokens::acquire`]
//! either grants a token immediately or queues the requester (identified by
//! an opaque `u64` ticket) in FIFO order — or, when a finite queue limit is
//! configured and the queue is full, rejects the request outright.  The
//! rejection path is how the simulator models the paper's observed
//! server-side saturation: "the network on the server side can no longer
//! handle the traffic from the queries, which limits the number of
//! concurrent queries presented to the information server".

use std::collections::VecDeque;

/// Result of an acquisition attempt.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum Acquire {
    /// A token was granted immediately.
    Granted,
    /// The requester was placed in the wait queue.
    Queued,
    /// The wait queue is full; the request is rejected (the caller models a
    /// dropped SYN / connection refused).
    Rejected,
}

/// A FIFO-ordered counting semaphore with an optional bounded wait queue.
#[derive(Debug)]
pub struct FifoTokens {
    capacity: u32,
    in_use: u32,
    max_waiting: Option<u32>,
    waiting: VecDeque<u64>,
    /// Total grants (immediate + from queue), for stats.
    pub granted_total: u64,
    /// Total rejections, for stats.
    pub rejected_total: u64,
}

impl FifoTokens {
    /// A pool of `capacity` tokens with an unbounded wait queue.
    pub fn new(capacity: u32) -> Self {
        FifoTokens {
            capacity,
            in_use: 0,
            max_waiting: None,
            waiting: VecDeque::new(),
            granted_total: 0,
            rejected_total: 0,
        }
    }

    /// A pool of `capacity` tokens whose wait queue holds at most
    /// `max_waiting` requesters; further requesters are rejected.
    pub fn bounded(capacity: u32, max_waiting: u32) -> Self {
        FifoTokens {
            capacity,
            in_use: 0,
            max_waiting: Some(max_waiting),
            waiting: VecDeque::new(),
            granted_total: 0,
            rejected_total: 0,
        }
    }

    /// A mutual-exclusion lock (1 token, unbounded queue).
    pub fn mutex() -> Self {
        Self::new(1)
    }

    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Attempt to acquire a token for `ticket`.
    pub fn acquire(&mut self, ticket: u64) -> Acquire {
        if self.in_use < self.capacity {
            self.in_use += 1;
            self.granted_total += 1;
            Acquire::Granted
        } else if self
            .max_waiting
            .is_some_and(|m| self.waiting.len() as u32 >= m)
        {
            self.rejected_total += 1;
            Acquire::Rejected
        } else {
            self.waiting.push_back(ticket);
            Acquire::Queued
        }
    }

    /// Release a token.  If someone is waiting, the token passes directly
    /// to the head of the queue and that ticket is returned so the owner
    /// can resume it; otherwise the token returns to the pool.
    pub fn release(&mut self) -> Option<u64> {
        debug_assert!(self.in_use > 0, "release without acquire");
        if let Some(next) = self.waiting.pop_front() {
            // in_use stays the same: token transferred.
            self.granted_total += 1;
            Some(next)
        } else {
            self.in_use = self.in_use.saturating_sub(1);
            None
        }
    }

    /// Remove a ticket from the wait queue (e.g. a timed-out connection
    /// attempt).  Returns `true` if it was queued.
    pub fn remove_waiter(&mut self, ticket: u64) -> bool {
        if let Some(pos) = self.waiting.iter().position(|&t| t == ticket) {
            self.waiting.remove(pos);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_capacity() {
        let mut p = FifoTokens::new(2);
        assert_eq!(p.acquire(1), Acquire::Granted);
        assert_eq!(p.acquire(2), Acquire::Granted);
        assert_eq!(p.acquire(3), Acquire::Queued);
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.waiting(), 1);
    }

    #[test]
    fn release_hands_to_fifo_head() {
        let mut p = FifoTokens::new(1);
        assert_eq!(p.acquire(1), Acquire::Granted);
        assert_eq!(p.acquire(2), Acquire::Queued);
        assert_eq!(p.acquire(3), Acquire::Queued);
        assert_eq!(p.release(), Some(2));
        assert_eq!(p.release(), Some(3));
        assert_eq!(p.release(), None);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn bounded_queue_rejects() {
        let mut p = FifoTokens::bounded(1, 2);
        assert_eq!(p.acquire(1), Acquire::Granted);
        assert_eq!(p.acquire(2), Acquire::Queued);
        assert_eq!(p.acquire(3), Acquire::Queued);
        assert_eq!(p.acquire(4), Acquire::Rejected);
        assert_eq!(p.rejected_total, 1);
        // A release frees a queue slot for future arrivals.
        assert_eq!(p.release(), Some(2));
        assert_eq!(p.acquire(5), Acquire::Queued);
    }

    #[test]
    fn zero_queue_limit_is_pure_admission_control() {
        let mut p = FifoTokens::bounded(2, 0);
        assert_eq!(p.acquire(1), Acquire::Granted);
        assert_eq!(p.acquire(2), Acquire::Granted);
        assert_eq!(p.acquire(3), Acquire::Rejected);
    }

    #[test]
    fn remove_waiter() {
        let mut p = FifoTokens::new(1);
        p.acquire(1);
        p.acquire(2);
        p.acquire(3);
        assert!(p.remove_waiter(2));
        assert!(!p.remove_waiter(2));
        assert_eq!(p.release(), Some(3));
    }

    #[test]
    fn mutex_semantics() {
        let mut m = FifoTokens::mutex();
        assert_eq!(m.acquire(10), Acquire::Granted);
        assert_eq!(m.acquire(11), Acquire::Queued);
        assert_eq!(m.release(), Some(11));
        assert_eq!(m.release(), None);
    }

    #[test]
    fn grant_counters() {
        let mut p = FifoTokens::new(1);
        p.acquire(1);
        p.acquire(2);
        p.release();
        assert_eq!(p.granted_total, 2);
    }
}
