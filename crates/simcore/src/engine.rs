//! The event calendar and simulation driver.
//!
//! [`Engine<W>`] is generic over a "world" type `W` that owns all mutable
//! simulation state.  Events are `FnOnce(&mut W, &mut Engine<W>)`
//! closures; when an event fires it receives exclusive access to both the
//! world and the engine (so it can schedule or cancel further events).
//!
//! Ordering guarantees:
//! * events fire in nondecreasing time order;
//! * events scheduled for the same instant fire in scheduling order
//!   (a stable FIFO tie-break via a monotonic sequence number), which is
//!   what makes runs deterministic.
//!
//! # Event storage: a size-classed closure pool
//!
//! The original engine boxed every closure, which made the allocator a
//! per-event cost on the hottest loop in the repository.  Closures now
//! live in pooled buffers: [`schedule_at`](Engine::schedule_at) writes
//! the closure into a recycled buffer of the smallest fitting size
//! class (32–512 bytes, 16-byte aligned) and remembers two
//! monomorphized shims — one that moves the closure out and calls it,
//! one that drops it in place on cancellation.  Dispatch returns the
//! buffer to the class free-list *before* invoking the closure (the
//! value has already been moved out), so a self-rescheduling event
//! reuses its own buffer.  Together with the recycled generational
//! slots and the allocation-free in-place calendar compaction, the
//! steady-state schedule/fire loop performs **zero heap allocations**
//! (pinned by the `alloc-profile` test in `crates/bench`).  Closures
//! too big or over-aligned for the pool fall back to the old `Box`
//! path — correctness never depends on fitting a class.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Handle to a scheduled event; can be used to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct EventHandle {
    slot: u32,
    gen: u32,
}

impl EventHandle {
    /// A handle that never resolves.
    pub const NULL: EventHandle = EventHandle {
        slot: u32::MAX,
        gen: u32::MAX,
    };
}

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// Buffer size classes for pooled closures.  Most simulation events
/// capture a handful of words (ids, times, small payload handles); the
/// 512-byte ceiling covers everything the models schedule today with
/// the `Box` fallback as the safety net.
const CLASS_SIZES: [usize; 5] = [32, 64, 128, 256, 512];
/// One alignment for every pooled buffer; closures needing more fall
/// back to `Box`.
const POOL_ALIGN: usize = 16;

const fn class_of(size: usize, align: usize) -> Option<usize> {
    if align > POOL_ALIGN {
        return None;
    }
    let mut c = 0;
    while c < CLASS_SIZES.len() {
        if size <= CLASS_SIZES[c] {
            return Some(c);
        }
        c += 1;
    }
    None
}

const fn class_layout(class: usize) -> Layout {
    // CLASS_SIZES are nonzero multiples of POOL_ALIGN, so this cannot
    // fail.
    match Layout::from_size_align(CLASS_SIZES[class], POOL_ALIGN) {
        Ok(l) => l,
        Err(_) => panic!("bad class layout"),
    }
}

/// A closure parked in a pooled buffer: the erased pointer plus the
/// monomorphized shims that know the concrete type again.
struct RawEvent<W> {
    ptr: *mut u8,
    class: u8,
    /// Moves the closure out of `ptr`, recycles the buffer, calls it.
    call: unsafe fn(*mut u8, u8, &mut W, &mut Engine<W>),
    /// Drops the closure in place (cancellation / engine teardown).
    drop_in_place: unsafe fn(*mut u8),
}

/// Reads the closure out of its pooled buffer, returns the buffer to
/// the pool, then runs the closure — in that order, so an event that
/// schedules its successor can be handed its own buffer back.
///
/// # Safety
/// `ptr` must hold a valid, initialized `F` written by `schedule_at`,
/// and ownership of both the value and the buffer transfers here.
unsafe fn call_shim<W, F: FnOnce(&mut W, &mut Engine<W>)>(
    ptr: *mut u8,
    class: u8,
    world: &mut W,
    engine: &mut Engine<W>,
) {
    let f = ptr.cast::<F>().read();
    engine.pool[class as usize].push(ptr);
    f(world, engine);
}

/// # Safety
/// `ptr` must hold a valid, initialized `F`; the value is dead after.
unsafe fn drop_shim<F>(ptr: *mut u8) {
    ptr.cast::<F>().drop_in_place();
}

/// How a scheduled closure is stored.
enum EventBody<W> {
    /// In a recycled size-classed buffer (the normal case).
    Pooled(RawEvent<W>),
    /// Heap-boxed: closures too large or over-aligned for the pool.
    Boxed(EventFn<W>),
}

struct EventSlot<W> {
    gen: u32,
    body: Option<EventBody<W>>,
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct QKey {
    time: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

/// The discrete-event simulation engine.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<QKey>>,
    slots: Vec<EventSlot<W>>,
    free: Vec<u32>,
    live: usize,
    /// Number of events fired so far (for diagnostics / runaway detection).
    pub fired: u64,
    /// Calendar pops, including stale keys for cancelled events.  The
    /// gap `popped - fired` is pure heap churn — useful when profiling
    /// cancel-heavy workloads (timeouts, retries).
    pub popped: u64,
    /// Strict clock advances (dispatches where `now` actually moved).
    /// `fired - advances` events rode an existing timestamp.
    pub advances: u64,
    /// Heap keys whose event was cancelled but that still sit in the
    /// calendar (lazy deletion).  Fuel for `maybe_compact`.
    stale: usize,
    /// Compact the calendar when stale keys dominate (see
    /// [`Engine::set_compaction`]).  On by default; the differential
    /// suite turns it off to get the pure lazy-deletion reference.
    compaction: bool,
    /// Per-size-class free lists of closure buffers.  Buffers cycle
    /// schedule → fire/cancel → here → schedule; they are only ever
    /// deallocated when the engine drops.
    pool: [Vec<*mut u8>; CLASS_SIZES.len()],
    /// Root RNG; components should `fork` child streams from it.
    pub rng: SimRng,
}

impl<W> Engine<W> {
    pub fn new(seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            fired: 0,
            popped: 0,
            advances: 0,
            stale: 0,
            compaction: true,
            pool: Default::default(),
            rng: SimRng::new(seed),
        }
    }

    /// Enable or disable calendar compaction.  Dispatch order, times and
    /// the `fired`/`advances` counters are identical either way; only the
    /// amount of stale-key churn (`popped - fired`) differs.  The
    /// differential suite runs with compaction off as the reference.
    pub fn set_compaction(&mut self, on: bool) {
        self.compaction = on;
    }

    /// Number of cancelled-but-unpopped keys still in the calendar.
    pub fn stale_keys(&self) -> usize {
        self.stale
    }

    /// Rebuild the calendar without stale keys once they dominate: each
    /// cancelled event otherwise costs an extra `O(log n)` pop later, and
    /// timeout-heavy workloads (retries, watchdogs) cancel nearly every
    /// event they schedule.  `QKey` ordering is total (time, seq), so
    /// dropping stale keys in place preserves dispatch order exactly.
    /// `BinaryHeap::retain` filters and re-heapifies without leaving the
    /// heap's own buffer — no allocation, unlike the old
    /// `into_vec`/`collect`/`from` round-trip.
    fn maybe_compact(&mut self) {
        if !self.compaction || self.stale <= 64 || self.stale < self.heap.len() / 2 {
            return;
        }
        let Engine { heap, slots, .. } = self;
        heap.retain(|Reverse(k)| slots.get(k.slot as usize).is_some_and(|s| s.gen == k.gen));
        debug_assert_eq!(self.heap.len(), self.live);
        self.stale = 0;
    }

    /// Park a closure for later dispatch: into a pooled buffer when a
    /// size class fits, into a `Box` otherwise.
    fn park<F: FnOnce(&mut W, &mut Engine<W>) + 'static>(&mut self, f: F) -> EventBody<W> {
        let Some(class) = class_of(std::mem::size_of::<F>(), std::mem::align_of::<F>()) else {
            return EventBody::Boxed(Box::new(f));
        };
        let ptr = self.pool[class].pop().unwrap_or_else(|| {
            let layout = class_layout(class);
            // SAFETY: every class layout has nonzero size.
            let p = unsafe { alloc(layout) };
            if p.is_null() {
                handle_alloc_error(layout);
            }
            p
        });
        // SAFETY: the buffer is unoccupied, at least `size_of::<F>()`
        // bytes (class fit) and aligned to `POOL_ALIGN >= align_of::<F>()`.
        unsafe { ptr.cast::<F>().write(f) };
        EventBody::Pooled(RawEvent {
            ptr,
            class: class as u8,
            call: call_shim::<W, F>,
            drop_in_place: drop_shim::<F>,
        })
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Schedule `f` to fire at absolute time `at` (clamped to `now` if in
    /// the past, which can happen from floating-point rounding in resource
    /// models).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventHandle {
        let at = at.max(self.now);
        let body = self.park(f);
        let slot = if let Some(i) = self.free.pop() {
            self.slots[i as usize].body = Some(body);
            i
        } else {
            let i = self.slots.len() as u32;
            self.slots.push(EventSlot {
                gen: 0,
                body: Some(body),
            });
            i
        };
        let gen = self.slots[slot as usize].gen;
        let seq = self.seq;
        self.seq += 1;
        self.live += 1;
        self.heap.push(Reverse(QKey {
            time: at,
            seq,
            slot,
            gen,
        }));
        EventHandle { slot, gen }
    }

    /// Schedule `f` to fire after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventHandle {
        self.schedule_at(self.now + delay, f)
    }

    /// Cancel a pending event.  Returns `true` if the event existed and was
    /// cancelled; cancelling an already-fired or already-cancelled event is
    /// a harmless no-op.
    pub fn cancel(&mut self, h: EventHandle) -> bool {
        if let Some(slot) = self.slots.get_mut(h.slot as usize) {
            if slot.gen == h.gen {
                if let Some(body) = slot.body.take() {
                    slot.gen = slot.gen.wrapping_add(1);
                    self.free.push(h.slot);
                    self.live -= 1;
                    self.stale += 1;
                    match body {
                        EventBody::Pooled(raw) => {
                            // SAFETY: the buffer holds the closure written
                            // by `park` and nothing has consumed it.
                            unsafe { (raw.drop_in_place)(raw.ptr) };
                            self.pool[raw.class as usize].push(raw.ptr);
                        }
                        EventBody::Boxed(f) => drop(f),
                    }
                    self.maybe_compact();
                    return true;
                }
            }
        }
        false
    }

    /// Fire the next event, if any at or before `limit`.  Returns `false`
    /// when the calendar is exhausted or the next event is later than
    /// `limit` (in which case the clock advances to `limit`... no: the
    /// clock only advances to event times; callers wanting the clock at
    /// `limit` should schedule a no-op there).
    fn step(&mut self, world: &mut W, limit: SimTime) -> bool {
        loop {
            let Some(Reverse(top)) = self.heap.peek() else {
                return false;
            };
            if top.time > limit {
                return false;
            }
            let Reverse(key) = self.heap.pop().expect("peeked");
            self.popped += 1;
            let slot = &mut self.slots[key.slot as usize];
            if slot.gen != key.gen {
                // Cancelled (and possibly recycled); skip the stale key.
                self.stale = self.stale.saturating_sub(1);
                continue;
            }
            let Some(body) = slot.body.take() else {
                continue;
            };
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(key.slot);
            self.live -= 1;
            debug_assert!(key.time >= self.now, "time went backwards");
            if key.time > self.now {
                self.advances += 1;
            }
            self.now = key.time;
            self.fired += 1;
            match body {
                // SAFETY: the buffer holds the closure written by `park`;
                // the shim takes ownership of value and buffer.
                EventBody::Pooled(raw) => unsafe { (raw.call)(raw.ptr, raw.class, world, self) },
                EventBody::Boxed(f) => f(world, self),
            }
            return true;
        }
    }

    /// Run until the calendar empties or simulated time would pass `until`.
    /// Afterwards the clock reads `min(until, last fired event time)`… the
    /// clock is advanced to exactly `until` on return so subsequent
    /// scheduling is relative to the horizon.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        while self.step(world, until) {}
        if self.now < until {
            self.now = until;
        }
    }

    /// Like [`run_until`](Engine::run_until), but invokes `hook` after
    /// every dispatched event with `(world, now, fired)`.
    ///
    /// This is the observability entry point: a tracer can record the
    /// dispatch stream without the plain `run_until` path paying
    /// anything — the hook lives in a separate method, so the common
    /// loop keeps its shape and its cost.  Dispatch order and times are
    /// identical to `run_until`; the hook must not perturb simulation
    /// state that events depend on.
    pub fn run_until_with(
        &mut self,
        world: &mut W,
        until: SimTime,
        hook: &mut dyn FnMut(&mut W, SimTime, u64),
    ) {
        while self.step(world, until) {
            hook(world, self.now, self.fired);
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Run until the calendar is completely empty (use with care: periodic
    /// events make this nonterminating).
    pub fn run_to_completion(&mut self, world: &mut W) {
        while self.step(world, SimTime::MAX) {}
    }
}

impl<W> Drop for Engine<W> {
    fn drop(&mut self) {
        // Pending pooled closures: drop the value, then free the buffer.
        for slot in &mut self.slots {
            if let Some(EventBody::Pooled(raw)) = slot.body.take() {
                // SAFETY: the buffer still holds the closure written by
                // `park`; after dropping it in place the buffer is dead.
                unsafe {
                    (raw.drop_in_place)(raw.ptr);
                    dealloc(raw.ptr, class_layout(raw.class as usize));
                }
            }
            // Boxed bodies drop with the slots vector.
        }
        for (class, list) in self.pool.iter_mut().enumerate() {
            for ptr in list.drain(..) {
                // SAFETY: free-list buffers are unoccupied allocations of
                // exactly this class layout.
                unsafe { dealloc(ptr, class_layout(class)) };
            }
        }
    }
}

/// Differential-oracle surface for the gridmon-diff suite: the reference
/// engine is the same machine with compaction off (pure lazy deletion, as
/// the seed implementation behaved).
#[cfg(feature = "reference-kernel")]
impl<W> Engine<W> {
    pub fn new_reference(seed: u64) -> Self {
        let mut e = Self::new(seed);
        e.set_compaction(false);
        e
    }
}

#[cfg(test)]
impl<W> Engine<W> {
    /// Total buffers sitting in the class free lists (test probe).
    fn free_pool_buffers(&self) -> usize {
        self.pool.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Log {
        entries: Vec<(u64, &'static str)>,
    }

    fn eng() -> Engine<Log> {
        Engine::new(1)
    }

    #[test]
    fn fires_in_time_order() {
        let mut e = eng();
        let mut w = Log::default();
        e.schedule_at(SimTime(30), |w: &mut Log, eng| {
            w.entries.push((eng.now().as_micros(), "c"))
        });
        e.schedule_at(SimTime(10), |w: &mut Log, eng| {
            w.entries.push((eng.now().as_micros(), "a"))
        });
        e.schedule_at(SimTime(20), |w: &mut Log, eng| {
            w.entries.push((eng.now().as_micros(), "b"))
        });
        e.run_until(&mut w, SimTime(100));
        assert_eq!(w.entries, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(e.now(), SimTime(100));
    }

    #[test]
    fn same_time_fifo_order() {
        let mut e = eng();
        let mut w = Log::default();
        for (i, name) in ["first", "second", "third"].iter().enumerate() {
            let name = *name;
            let _ = i;
            e.schedule_at(SimTime(5), move |w: &mut Log, _| w.entries.push((5, name)));
        }
        e.run_until(&mut w, SimTime(10));
        let names: Vec<_> = w.entries.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut e = eng();
        let mut w = Log::default();
        let h = e.schedule_at(SimTime(10), |w: &mut Log, _| w.entries.push((10, "x")));
        assert!(e.cancel(h));
        assert!(!e.cancel(h)); // double-cancel is a no-op
        e.run_until(&mut w, SimTime(100));
        assert!(w.entries.is_empty());
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut e = eng();
        let mut w = Log::default();
        e.schedule_at(SimTime(1), |_w: &mut Log, eng| {
            eng.schedule_in(SimDuration(5), |w: &mut Log, eng| {
                w.entries.push((eng.now().as_micros(), "chained"));
            });
        });
        e.run_until(&mut w, SimTime(10));
        assert_eq!(w.entries, vec![(6, "chained")]);
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut e = eng();
        let mut w = Log::default();
        e.schedule_at(SimTime(50), |_w: &mut Log, eng| {
            // "past" event: clamped to now = 50.
            eng.schedule_at(SimTime(10), |w: &mut Log, eng| {
                w.entries.push((eng.now().as_micros(), "clamped"));
            });
        });
        e.run_until(&mut w, SimTime(100));
        assert_eq!(w.entries, vec![(50, "clamped")]);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut e = eng();
        let mut w = Log::default();
        e.schedule_at(SimTime(10), |w: &mut Log, _| w.entries.push((10, "in")));
        e.schedule_at(SimTime(200), |w: &mut Log, _| w.entries.push((200, "out")));
        e.run_until(&mut w, SimTime(100));
        assert_eq!(w.entries, vec![(10, "in")]);
        assert_eq!(e.pending(), 1);
        e.run_until(&mut w, SimTime(300));
        assert_eq!(w.entries.len(), 2);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_cancelled_events() {
        let mut e = eng();
        let mut w = Log::default();
        let h = e.schedule_at(SimTime(10), |w: &mut Log, _| w.entries.push((10, "dead")));
        e.cancel(h);
        // Reuses the slot with a new generation.
        e.schedule_at(SimTime(10), |w: &mut Log, _| w.entries.push((10, "live")));
        e.run_until(&mut w, SimTime(20));
        assert_eq!(w.entries, vec![(10, "live")]);
    }

    #[test]
    fn periodic_self_rescheduling() {
        struct Tick {
            count: u32,
        }
        fn tick(w: &mut Tick, eng: &mut Engine<Tick>) {
            w.count += 1;
            if w.count < 5 {
                eng.schedule_in(SimDuration(10), tick);
            }
        }
        let mut e: Engine<Tick> = Engine::new(0);
        let mut w = Tick { count: 0 };
        e.schedule_at(SimTime(0), tick);
        e.run_to_completion(&mut w);
        assert_eq!(w.count, 5);
        assert_eq!(e.now(), SimTime(40));
    }

    #[test]
    fn run_until_with_sees_every_dispatch_in_order() {
        let mut e = eng();
        let mut w = Log::default();
        e.schedule_at(SimTime(10), |w: &mut Log, _| w.entries.push((10, "a")));
        e.schedule_at(SimTime(20), |w: &mut Log, _| w.entries.push((20, "b")));
        let mut seen = Vec::new();
        e.run_until_with(&mut w, SimTime(100), &mut |_w, now, fired| {
            seen.push((now.as_micros(), fired));
        });
        assert_eq!(seen, vec![(10, 1), (20, 2)]);
        assert_eq!(e.now(), SimTime(100));
        // Same world effects as the plain loop.
        assert_eq!(w.entries, vec![(10, "a"), (20, "b")]);
    }

    #[test]
    fn fired_counter_counts() {
        let mut e = eng();
        let mut w = Log::default();
        for t in 0..10 {
            e.schedule_at(SimTime(t), |_w: &mut Log, _| {});
        }
        e.run_until(&mut w, SimTime(100));
        assert_eq!(e.fired, 10);
    }

    #[test]
    fn compaction_cuts_stale_pops_without_changing_dispatch() {
        // Schedule-and-cancel churn (a timeout per request, almost always
        // cancelled) with a sprinkle of live events; compare the dispatch
        // stream with compaction on vs the lazy-deletion reference.
        fn run(compaction: bool) -> (Vec<(u64, u64)>, u64, u64, u64) {
            let mut e: Engine<Log> = Engine::new(7);
            e.set_compaction(compaction);
            let mut w = Log::default();
            for round in 0..50u64 {
                let base = round * 100;
                let mut dead = Vec::new();
                for i in 0..40 {
                    dead.push(e.schedule_at(SimTime(base + 90 + i), |_w: &mut Log, _| {}));
                }
                e.schedule_at(SimTime(base + 10), |w: &mut Log, eng| {
                    w.entries.push((eng.now().as_micros(), "live"))
                });
                for h in dead {
                    assert!(e.cancel(h));
                }
            }
            let mut seen = Vec::new();
            e.run_until_with(&mut w, SimTime(10_000), &mut |_w, now, fired| {
                seen.push((now.as_micros(), fired));
            });
            (seen, e.fired, e.popped, e.advances)
        }
        let (fast, fast_fired, fast_popped, fast_adv) = run(true);
        let (slow, slow_fired, slow_popped, slow_adv) = run(false);
        assert_eq!(fast, slow, "dispatch stream must not change");
        assert_eq!(fast_fired, slow_fired);
        assert_eq!(fast_adv, slow_adv);
        assert_eq!(
            slow_popped,
            slow_fired + 50 * 40,
            "reference pops every stale key"
        );
        assert!(
            fast_popped < slow_popped,
            "compaction must remove stale churn ({fast_popped} vs {slow_popped})"
        );
    }

    #[test]
    fn stale_counter_tracks_cancels_and_compaction() {
        let mut e = eng();
        e.set_compaction(false);
        let mut hs = Vec::new();
        for i in 0..10 {
            hs.push(e.schedule_at(SimTime(10 + i), |_w: &mut Log, _| {}));
        }
        for h in &hs[..4] {
            e.cancel(*h);
        }
        assert_eq!(e.stale_keys(), 4);
        assert_eq!(e.pending(), 6);
        let mut w = Log::default();
        e.run_until(&mut w, SimTime(100));
        assert_eq!(e.stale_keys(), 0, "stale keys drained by popping");
        // With compaction on, heavy cancellation empties the stale count
        // without popping.
        let mut e = eng();
        let hs: Vec<_> = (0..200)
            .map(|i| e.schedule_at(SimTime(10 + i), |_w: &mut Log, _| {}))
            .collect();
        for h in hs {
            e.cancel(h);
        }
        assert!(
            e.stale_keys() <= 64,
            "compaction keeps the stale tail below threshold (got {})",
            e.stale_keys()
        );
        assert_eq!(e.pending(), 0);
        e.run_until(&mut w, SimTime(1000));
        assert!(e.popped < 200, "most stale keys never reached the heap top");
        assert_eq!(e.stale_keys(), 0);
    }

    #[test]
    fn fired_event_buffer_is_recycled() {
        let mut e = eng();
        let mut w = Log::default();
        assert_eq!(e.free_pool_buffers(), 0);
        e.schedule_at(SimTime(1), |w: &mut Log, _| w.entries.push((1, "a")));
        assert_eq!(e.free_pool_buffers(), 0, "pending closure occupies it");
        e.run_until(&mut w, SimTime(10));
        assert_eq!(e.free_pool_buffers(), 1, "buffer returned after firing");
        // The next same-class schedule reuses it instead of allocating.
        e.schedule_at(SimTime(20), |w: &mut Log, _| w.entries.push((20, "b")));
        assert_eq!(e.free_pool_buffers(), 0);
        e.run_until(&mut w, SimTime(30));
        assert_eq!(e.free_pool_buffers(), 1);
        assert_eq!(w.entries, vec![(1, "a"), (20, "b")]);
    }

    #[test]
    fn self_rescheduling_chain_cycles_one_buffer() {
        struct Tick {
            count: u32,
        }
        fn tick(w: &mut Tick, eng: &mut Engine<Tick>) {
            w.count += 1;
            if w.count < 100 {
                // A real capture, still within the smallest class.
                let stamp = w.count as u64;
                eng.schedule_in(SimDuration(1), move |w: &mut Tick, eng| {
                    assert_eq!(u64::from(w.count), stamp);
                    tick(w, eng);
                });
            }
        }
        let mut e: Engine<Tick> = Engine::new(0);
        let mut w = Tick { count: 0 };
        e.schedule_at(SimTime(0), tick);
        e.run_to_completion(&mut w);
        assert_eq!(w.count, 100);
        // Dispatch recycles the buffer before invoking the closure, so
        // the whole 100-event chain ran on a single buffer (plus reuse
        // across the two closure types sharing the class).
        assert!(
            e.free_pool_buffers() <= 2,
            "chain must recycle, not accumulate (got {})",
            e.free_pool_buffers()
        );
    }

    #[test]
    fn oversize_closures_fall_back_to_box() {
        let mut e = eng();
        let mut w = Log::default();
        let big = [7u64; 128]; // 1 KiB capture: over every size class
        e.schedule_at(SimTime(5), move |w: &mut Log, _| {
            assert!(big.iter().all(|&x| x == 7));
            w.entries.push((5, "big"));
        });
        e.run_until(&mut w, SimTime(10));
        assert_eq!(w.entries, vec![(5, "big")]);
        assert_eq!(
            e.free_pool_buffers(),
            0,
            "boxed events never touch the pool"
        );
    }

    #[test]
    fn cancel_drops_captured_state() {
        use std::rc::Rc;
        let mut e = eng();
        let token = Rc::new(());
        let captured = Rc::clone(&token);
        let h = e.schedule_at(SimTime(10), move |_w: &mut Log, _| {
            let _keep = &captured;
        });
        assert_eq!(Rc::strong_count(&token), 2);
        assert!(e.cancel(h));
        assert_eq!(Rc::strong_count(&token), 1, "cancel must drop the capture");
        assert_eq!(e.free_pool_buffers(), 1, "cancelled buffer is recycled");
    }

    #[test]
    fn dropping_engine_drops_pending_closures() {
        use std::rc::Rc;
        let token = Rc::new(());
        {
            let mut e = eng();
            let small = Rc::clone(&token);
            e.schedule_at(SimTime(10), move |_w: &mut Log, _| {
                let _keep = &small;
            });
            let big_pad = [0u64; 128];
            let boxed = Rc::clone(&token);
            e.schedule_at(SimTime(20), move |_w: &mut Log, _| {
                let _keep = (&boxed, &big_pad);
            });
            assert_eq!(Rc::strong_count(&token), 3);
        }
        assert_eq!(
            Rc::strong_count(&token),
            1,
            "engine drop must release pooled and boxed captures"
        );
    }

    #[test]
    fn popped_counts_stale_keys_and_advances_strict_moves() {
        let mut e = eng();
        let mut w = Log::default();
        // Two live events at t=5 (one advance, one same-time dispatch),
        // one at t=9, and one cancelled at t=7 (a stale heap key).
        e.schedule_at(SimTime(5), |_w: &mut Log, _| {});
        e.schedule_at(SimTime(5), |_w: &mut Log, _| {});
        let dead = e.schedule_at(SimTime(7), |_w: &mut Log, _| {});
        e.schedule_at(SimTime(9), |_w: &mut Log, _| {});
        e.cancel(dead);
        e.run_until(&mut w, SimTime(100));
        assert_eq!(e.fired, 3);
        assert_eq!(e.popped, 4, "stale key for the cancelled event pops too");
        assert_eq!(e.advances, 2, "t=0->5 and t=5->9; the second t=5 rides");
    }
}
