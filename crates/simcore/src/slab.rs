//! A minimal generational slab allocator.
//!
//! Used throughout the workspace for stable integer handles to simulation
//! objects (events, flows, requests, tasks).  Generations guard against the
//! ABA problem when slots are recycled: a stale key for a freed-and-reused
//! slot will not resolve.

/// A key into a [`Slab`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SlabKey {
    pub index: u32,
    pub gen: u32,
}

impl SlabKey {
    /// A key that never resolves (useful as a sentinel).
    pub const NULL: SlabKey = SlabKey {
        index: u32::MAX,
        gen: u32::MAX,
    };
}

#[derive(Clone)]
struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// A generational slab.
#[derive(Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value, returning its key.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            SlabKey {
                index,
                gen: slot.gen,
            }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                value: Some(value),
            });
            SlabKey { index, gen: 0 }
        }
    }

    /// Remove and return the value for `key` if it is still live.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.gen != key.gen || slot.value.is_none() {
            return None;
        }
        let value = slot.value.take();
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(key.index);
        self.len -= 1;
        value
    }

    pub fn get(&self, key: SlabKey) -> Option<&T> {
        let slot = self.slots.get(key.index as usize)?;
        if slot.gen != key.gen {
            return None;
        }
        slot.value.as_ref()
    }

    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.gen != key.gen {
            return None;
        }
        slot.value.as_mut()
    }

    pub fn contains(&self, key: SlabKey) -> bool {
        self.get(key).is_some()
    }

    /// Temporarily take the value out of a slot (leaving it live but empty)
    /// so methods on it can be called while the slab owner is also borrowed.
    /// The caller must put the value back with [`Slab::put_back`].
    pub fn take(&mut self, key: SlabKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.gen != key.gen {
            return None;
        }
        slot.value.take()
    }

    /// Restore a value previously removed with [`Slab::take`].
    ///
    /// If the slot was freed while the value was out (e.g. the object
    /// removed itself during its own callback), the value is dropped and
    /// `false` is returned.
    pub fn put_back(&mut self, key: SlabKey, value: T) -> bool {
        if let Some(slot) = self.slots.get_mut(key.index as usize) {
            if slot.gen == key.gen {
                debug_assert!(slot.value.is_none(), "put_back over a live value");
                slot.value = Some(value);
                return true;
            }
        }
        false
    }

    /// Iterate over `(key, &value)` pairs of live entries in index order.
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    SlabKey {
                        index: i as u32,
                        gen: s.gen,
                    },
                    v,
                )
            })
        })
    }

    /// Iterate over `(key, &mut value)` pairs of live entries in index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (SlabKey, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            let gen = s.gen;
            s.value.as_mut().map(move |v| {
                (
                    SlabKey {
                        index: i as u32,
                        gen,
                    },
                    v,
                )
            })
        })
    }

    /// Collect the keys of all live entries (index order).
    pub fn keys(&self) -> Vec<SlabKey> {
        self.iter().map(|(k, _)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn generation_guards_reuse() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        // Slot is reused but the stale key must not resolve.
        assert_eq!(a.index, b.index);
        assert_ne!(a.gen, b.gen);
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn take_and_put_back() {
        let mut s = Slab::new();
        let a = s.insert(String::from("x"));
        let v = s.take(a).unwrap();
        assert!(s.get(a).is_none()); // value is out; key resolves again after put_back
        assert!(s.put_back(a, v));
        assert_eq!(s.get(a).map(String::as_str), Some("x"));
    }

    #[test]
    fn put_back_after_free_drops_value() {
        let mut s = Slab::new();
        let a = s.insert(7);
        let v = s.take(a).unwrap();
        // Freeing the (empty) slot while the value is out: remove() returns
        // None because the value is absent, so emulate by reinsert cycle.
        assert!(s.put_back(a, v));
        s.remove(a);
        assert!(!s.put_back(a, 9));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn iteration_order_is_index_order() {
        let mut s = Slab::new();
        let a = s.insert(10);
        let _b = s.insert(20);
        let _c = s.insert(30);
        s.remove(a);
        let vals: Vec<i32> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![20, 30]);
    }

    #[test]
    fn contains_take_missing() {
        let mut s: Slab<u8> = Slab::new();
        assert!(!s.contains(SlabKey::NULL));
        assert!(s.take(SlabKey::NULL).is_none());
    }
}
