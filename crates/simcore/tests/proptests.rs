//! Property-based tests of the DES kernel's invariants.

use proptest::prelude::*;
use simcore::{Engine, PsCpu, SimTime};

proptest! {
    /// Events fire in nondecreasing time order with FIFO tie-breaking,
    /// for any schedule (including same-instant batches).
    #[test]
    fn calendar_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        struct W {
            fired: Vec<(u64, usize)>,
        }
        let mut eng: Engine<W> = Engine::new(1);
        let mut w = W { fired: Vec::new() };
        for (seq, &t) in times.iter().enumerate() {
            eng.schedule_at(SimTime(t), move |w: &mut W, eng| {
                w.fired.push((eng.now().as_micros(), seq));
            });
        }
        eng.run_until(&mut w, SimTime(10_000));
        prop_assert_eq!(w.fired.len(), times.len());
        for pair in w.fired.windows(2) {
            let (t1, s1) = pair[0];
            let (t2, s2) = pair[1];
            prop_assert!(t1 <= t2, "time went backwards");
            if t1 == t2 {
                prop_assert!(s1 < s2, "same-instant events must fire FIFO");
            }
        }
    }

    /// Cancelling a random subset of events fires exactly the complement.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..100, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        struct W {
            fired: Vec<usize>,
        }
        let mut eng: Engine<W> = Engine::new(1);
        let mut w = W { fired: Vec::new() };
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                eng.schedule_at(SimTime(t), move |w: &mut W, _| w.fired.push(i))
            })
            .collect();
        let mut kept = Vec::new();
        for (i, h) in handles.into_iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(eng.cancel(h));
            } else {
                kept.push(i);
            }
        }
        eng.run_until(&mut w, SimTime(10_000));
        let mut fired = w.fired.clone();
        fired.sort_unstable();
        prop_assert_eq!(fired, kept);
    }

    /// The processor-sharing CPU conserves work: every task finishes, and
    /// total busy core-time equals the total work submitted (within
    /// rounding), never exceeding capacity.
    #[test]
    fn ps_cpu_work_conservation(
        works in proptest::collection::vec(100.0f64..50_000.0, 1..50),
        cores in 1u32..4,
    ) {
        let mut cpu = PsCpu::new(cores, 1.0);
        let mut now = SimTime(0);
        for (i, &w) in works.iter().enumerate() {
            cpu.submit(now, w, i as u64);
        }
        let mut done = 0usize;
        let mut guard = 0;
        while let Some(next) = cpu.next_completion(now) {
            prop_assert!(next > now);
            now = next;
            done += cpu.advance(now).len();
            guard += 1;
            prop_assert!(guard < 10_000);
        }
        prop_assert_eq!(done, works.len());
        let busy = cpu.busy_core_seconds(now) * 1e6; // back to µs
        let total: f64 = works.iter().sum();
        // Busy time accounts for all work (completion-rounding adds at
        // most ~1µs per task per membership change).
        let slack = 2.0 * works.len() as f64 * works.len() as f64;
        prop_assert!(busy >= total - 1.0, "busy {busy} < work {total}");
        prop_assert!(busy <= total + slack, "busy {busy} >> work {total}");
        // Capacity bound: elapsed * cores >= total work.
        let elapsed = now.as_micros() as f64;
        prop_assert!(elapsed * cores as f64 >= total - 1.0);
    }

    /// Deterministic replay: the same seed gives the same RNG-driven
    /// event interleaving.
    #[test]
    fn engine_rng_replay(seed in any::<u64>()) {
        let run = || {
            struct W {
                vals: Vec<u64>,
            }
            let mut eng: Engine<W> = Engine::new(seed);
            let mut w = W { vals: Vec::new() };
            for _ in 0..20 {
                let t = eng.rng.next_below(1000);
                eng.schedule_at(SimTime(t), move |w: &mut W, eng| {
                    let v = eng.rng.next_u64();
                    w.vals.push(v);
                });
            }
            eng.run_until(&mut w, SimTime(10_000));
            w.vals
        };
        prop_assert_eq!(run(), run());
    }
}
