//! Wire messages of the MDS model.

use ldapdir::{Dn, Entry, Filter, Scope};
use simnet::SvcKey;

/// A request to a GRIS or GIIS.
pub enum MdsRequest {
    /// An LDAP search.
    Search {
        base: Dn,
        scope: Scope,
        filter: Filter,
        /// Attribute selection: `None` returns whole entries, `Some`
        /// projects each hit to the listed attribute types (how a client
        /// asks for "only a portion of the data").
        attrs: Option<Vec<String>>,
    },
}

impl MdsRequest {
    /// Search the whole tree for everything.
    pub fn search_all(base: Dn) -> MdsRequest {
        MdsRequest::Search {
            base,
            scope: Scope::Sub,
            filter: Filter::any(),
            attrs: None,
        }
    }

    /// Approximate LDAP request size on the wire.
    pub fn wire_size(&self) -> u64 {
        match self {
            MdsRequest::Search {
                base,
                filter,
                attrs,
                ..
            } => {
                64 + base.display_len() as u64
                    + filter.display_len() as u64
                    + attrs
                        .as_ref()
                        .map_or(0, |a| a.iter().map(|x| x.len() as u64 + 2).sum())
            }
        }
    }
}

/// A search result: the matching entries plus their serialized size.
///
/// `total` is the full hit count; for very large aggregate results the
/// GIIS truncates the `entries` payload (the simulated wire size `bytes`
/// still reflects every hit).  `entries` is refcounted so a server can
/// answer repeated identical queries from one materialization instead of
/// deep-cloning every entry per reply.
pub struct MdsSearchResult {
    pub entries: std::rc::Rc<Vec<Entry>>,
    pub total: usize,
    pub bytes: u64,
}

/// Soft-state registration sent by a GRIS to a GIIS (and GIIS to parent
/// GIIS) every registration period.
pub struct GrisRegistration {
    /// The registering service.
    pub gris: SvcKey,
    /// Root of the registered subtree in the GRIS's own namespace.
    pub suffix: Dn,
}

/// Size of a registration message (a short LDAP add of a registration
/// entry).
pub const REGISTRATION_BYTES: u64 = 360;
