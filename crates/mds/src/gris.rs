//! The Grid Resource Information Service.
//!
//! A GRIS is an OpenLDAP server whose backend shells out to information
//! providers.  Per-provider cache TTLs govern freshness: a search first
//! re-runs every provider whose data is stale (paying the fork/exec CPU
//! cost per provider), then evaluates the LDAP search over the directory
//! and streams the matching entries back.
//!
//! The GRIS also participates in the MDS soft-state registration
//! protocol: every `registration_period` it sends a small registration
//! message to each configured GIIS.

use crate::proto::{GrisRegistration, MdsRequest, MdsSearchResult, REGISTRATION_BYTES};
use crate::provider::ProviderSpec;
use ldapdir::{Dit, Dn, Entry};
use simcore::{SimDuration, SimTime};
use simnet::trace::Ev;
use simnet::{LockKey, Payload, Plan, Service, SvcCx, SvcKey};

/// CPU cost of evaluating the filter against one entry and serializing a
/// hit (OpenLDAP slapd per-entry work on the reference CPU).
pub const SEARCH_CPU_PER_ENTRY_US: f64 = 80.0;

/// Fixed per-search CPU (decode, ACL checks, result assembly).
pub const SEARCH_CPU_FIXED_US: f64 = 2_000.0;

/// Default MDS soft-state registration period.
pub const REGISTRATION_PERIOD: SimDuration = SimDuration(30_000_000);

/// Fraction of a provider invocation that is CPU; the rest is I/O wait
/// (the forked script blocking on /proc, disk, subprocesses).  slapd's
/// shell backend runs providers one at a time, so the exec phase sits
/// behind [`Gris::exec_lock`] — this keeps the host's runnable count (and
/// hence `load1`) near 1 even with hundreds of queued queries, matching
/// Fig 7.
pub const PROVIDER_CPU_FRACTION: f64 = 0.8;

/// The GRIS service.
pub struct Gris {
    suffix: Dn,
    dit: Dit,
    providers: Vec<ProviderSpec>,
    last_refresh: Vec<Option<SimTime>>,
    /// GIISes this GRIS registers to.
    registrees: Vec<SvcKey>,
    /// Serialises provider execution (slapd shell backend); set by the
    /// deployment.
    pub exec_lock: Option<LockKey>,
    /// Own service key (set after deployment, needed in registrations).
    pub me: Option<SvcKey>,
    /// Total queries answered (for tests).
    pub queries: u64,
    /// Total provider invocations (the cost caching avoids).
    pub provider_runs: u64,
    /// Memoized search replies (see [`crate::cache`]).
    cache: crate::cache::ResultCache,
}

impl Gris {
    pub fn new(suffix: Dn, providers: Vec<ProviderSpec>) -> Gris {
        let n = providers.len();
        Gris {
            dit: Dit::new(suffix.clone()),
            suffix,
            providers,
            last_refresh: vec![None; n],
            registrees: Vec::new(),
            exec_lock: None,
            me: None,
            queries: 0,
            provider_runs: 0,
            cache: crate::cache::ResultCache::new(),
        }
    }

    pub fn suffix(&self) -> &Dn {
        &self.suffix
    }

    /// Configure this GRIS to register with `giis` (call before start;
    /// the deployment primes the registration timer).
    pub fn register_with(&mut self, giis: SvcKey) {
        self.registrees.push(giis);
    }

    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Providers whose data is stale at `now`.
    fn stale(&self, now: SimTime) -> Vec<usize> {
        (0..self.providers.len())
            .filter(
                |&i| match (self.last_refresh[i], self.providers[i].cachettl) {
                    (None, _) => true,
                    (Some(_), None) => false, // never expires
                    (Some(at), Some(ttl)) => now >= at + ttl,
                },
            )
            .collect()
    }

    /// Run provider `i` and merge its entries (state update; the CPU cost
    /// is charged by the caller's plan).
    fn refresh(&mut self, i: usize, now: SimTime) {
        self.provider_runs += 1;
        for e in self.providers[i].entries.clone() {
            self.dit.upsert(e).expect("provider entries fit the suffix");
        }
        self.last_refresh[i] = Some(now);
    }
}

impl Service for Gris {
    fn handle(&mut self, req: Payload, cx: &mut SvcCx) -> Plan {
        let req = req
            .downcast::<MdsRequest>()
            .expect("GRIS expects MdsRequest");
        let MdsRequest::Search {
            base,
            scope,
            filter,
            attrs,
        } = *req;
        self.queries += 1;
        let now = cx.now;
        // 1. Re-run stale providers (cost charged in the plan; the state
        //    update happens now — provider output is deterministic, so the
        //    skew within a single request is unobservable).
        let stale = self.stale(now);
        let me = cx.me.index;
        if stale.is_empty() {
            cx.obs.ev_with(now, || Ev::CacheHit { svc: me });
            cx.obs.incr("mds.cache_hits", 1);
        } else {
            cx.obs.ev_with(now, || Ev::CacheMiss { svc: me });
            cx.obs.incr("mds.cache_misses", 1);
        }
        cx.obs.incr("mds.ldap_searches", 1);
        let mut plan = Plan::new();
        if !stale.is_empty() {
            if let Some(l) = self.exec_lock {
                plan = plan.lock(l);
            }
            for i in stale {
                let exec = self.providers[i].exec_cpu_us;
                plan = plan
                    .cpu(exec * PROVIDER_CPU_FRACTION)
                    .latency(SimDuration::from_micros(
                        (exec * (1.0 - PROVIDER_CPU_FRACTION)) as u64,
                    ));
                self.refresh(i, now);
            }
            if let Some(l) = self.exec_lock {
                plan = plan.unlock(l);
            }
        }
        // 2. Evaluate the search (memoized until the directory changes;
        //    the simulated scan cost below is still charged per query).
        let cached = self
            .cache
            .get_or_compute(&self.dit, &base, scope, &filter, &attrs, |dit| {
                let hits = dit.search(&base, scope, &filter);
                let entries: Vec<Entry> = match &attrs {
                    None => hits.iter().map(|&e| e.clone()).collect(),
                    Some(sel) => hits.iter().map(|&e| e.project(sel)).collect(),
                };
                let bytes: u64 = 64 + entries.iter().map(Entry::wire_size).sum::<u64>();
                crate::cache::CachedResult {
                    total: entries.len(),
                    bytes,
                    entries: std::rc::Rc::new(entries),
                }
            });
        let scan_cost = SEARCH_CPU_FIXED_US
            + SEARCH_CPU_PER_ENTRY_US * self.dit.scan_size() as f64 * filter.cost() as f64;
        let bytes = cached.bytes;
        plan.cpu(scan_cost).reply(
            MdsSearchResult {
                entries: cached.entries,
                total: cached.total,
                bytes,
            },
            bytes,
        )
    }

    fn on_timer(&mut self, _tag: u64, cx: &mut SvcCx) {
        // Soft-state registration heartbeat.
        if let Some(me) = self.me {
            for &giis in &self.registrees {
                cx.send_oneway(
                    giis,
                    GrisRegistration {
                        gris: me,
                        suffix: self.suffix.clone(),
                    },
                    REGISTRATION_BYTES,
                );
            }
        }
        cx.set_timer(REGISTRATION_PERIOD, 0);
    }

    fn name(&self) -> &str {
        "gris"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::default_providers;
    use ldapdir::{Filter, Scope};
    use simcore::{Engine, SimTime};
    use simnet::{
        Client, ClientCx, Eng, Net, ReqOutcome, ReqResult, RequestSpec, ServiceConfig, StatsHub,
        Topology,
    };

    fn suffix() -> Dn {
        Dn::parse("mds-vo-name=local, o=grid").unwrap()
    }

    struct Once {
        from: simnet::NodeId,
        to: SvcKey,
        n: u32,
        results: std::rc::Rc<std::cell::RefCell<Vec<(usize, u64, f64)>>>,
    }

    impl Client for Once {
        fn on_start(&mut self, cx: &mut ClientCx) {
            for i in 0..self.n {
                cx.wake_in(SimDuration::from_secs(i as u64 * 10), 0);
            }
        }
        fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
            let req = MdsRequest::search_all(suffix());
            let bytes = req.wire_size();
            cx.submit(
                RequestSpec {
                    from: self.from,
                    to: self.to,
                    payload: Box::new(req),
                    req_bytes: bytes,
                },
                0,
            );
        }
        fn on_outcome(&mut self, o: ReqOutcome, _cx: &mut ClientCx) {
            if let ReqResult::Ok(p, _) = o.result {
                let r = p.downcast::<MdsSearchResult>().unwrap();
                let rt = (o.completed - o.submitted).as_secs_f64();
                self.results
                    .borrow_mut()
                    .push((r.entries.len(), r.bytes, rt));
            }
        }
    }

    fn run_gris(ttl: Option<SimDuration>, queries: u32) -> (Vec<(usize, u64, f64)>, u64) {
        let mut topo = Topology::new();
        let client = topo.add_node("client", 1, 1.0);
        let server = topo.add_node("server", 2, 1.0);
        topo.connect(client, server, 100e6, SimDuration::from_millis(1));
        let mut net = Net::new(topo, StatsHub::new(SimTime::ZERO, SimTime::from_secs(1000)));
        let mut eng: Eng = Engine::new(5);
        let gris = Gris::new(suffix(), default_providers(&suffix(), "lucky7", 10, ttl));
        let svc = net.add_service(server, ServiceConfig::default(), Box::new(gris), &mut eng);
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(Once {
            from: client,
            to: svc,
            n: queries,
            results: results.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(500));
        let runs = net.service_as::<Gris>(svc).unwrap().provider_runs;
        let out = results.borrow().clone();
        (out, runs)
    }

    #[test]
    fn first_query_populates_then_cache_hits() {
        let (results, runs) = run_gris(None, 3); // never expires
        assert_eq!(results.len(), 3);
        // Providers ran exactly once each.
        assert_eq!(runs, 10);
        // All queries see the full tree (10 providers × (1 group + N dev)).
        assert!(results[0].0 > 20, "entries {}", results[0].0);
        assert_eq!(results[0].0, results[2].0);
        // Cached queries are much faster than the cold one.
        assert!(
            results[0].2 > results[1].2 * 2.0,
            "cold {} vs warm {}",
            results[0].2,
            results[1].2
        );
    }

    #[test]
    fn zero_ttl_reruns_providers_every_query() {
        let (results, runs) = run_gris(Some(SimDuration::ZERO), 3);
        assert_eq!(results.len(), 3);
        assert_eq!(runs, 30);
        // Every query pays the full serialized provider cost (~10 × 50 ms).
        for (_, _, rt) in &results {
            assert!(*rt > 0.4, "rt {rt}");
        }
    }

    #[test]
    fn ttl_expiry_triggers_refresh() {
        // 15 s TTL, queries every 10 s: every other query refreshes.
        let (results, runs) = run_gris(Some(SimDuration::from_secs(15)), 3);
        assert_eq!(results.len(), 3);
        // Query at t≈0 (cold, 10 runs), t≈10 (fresh), t≈20 (stale, 10 runs).
        assert_eq!(runs, 20);
    }

    #[test]
    fn filtered_search_returns_subset() {
        let mut g = Gris::new(suffix(), default_providers(&suffix(), "lucky7", 10, None));
        // Populate directly.
        for i in 0..10 {
            g.refresh(i, SimTime::ZERO);
        }
        let hits = g.dit.search(
            &suffix(),
            Scope::Sub,
            &Filter::parse("(objectclass=mdsdevicegroup)").unwrap(),
        );
        assert_eq!(hits.len(), 10);
        let all = g.dit.search(&suffix(), Scope::Sub, &Filter::any());
        assert!(all.len() > hits.len());
    }
}
