//! Materialized search-result cache shared by GRIS and GIIS.
//!
//! Experiment workloads hammer a server with the *same* LDAP query
//! thousands of times between directory mutations.  Evaluating the
//! search and cloning every matching entry into the reply payload per
//! query dominated harness wall time, so both services memoize the
//! materialized result keyed on the query shape plus the directory's
//! [`Dit::generation`] counter.  A cached reply is byte-identical to a
//! recomputed one (same `total`, `bytes` and entry payload) and the
//! *simulated* CPU cost is still charged per query by the caller, so
//! figures are unaffected — only real time is saved.

use ldapdir::{Dit, Dn, Entry, Filter, Scope};
use std::rc::Rc;

/// Identity of a search as the service saw it.
#[derive(Clone, PartialEq)]
struct QueryKey {
    base: Dn,
    scope: Scope,
    filter: Filter,
    attrs: Option<Vec<String>>,
}

/// The reusable parts of a search reply.  `entries` is refcounted so a
/// cache hit shares one materialization across any number of replies.
#[derive(Clone)]
pub struct CachedResult {
    pub total: usize,
    pub bytes: u64,
    pub entries: Rc<Vec<Entry>>,
}

struct Slot {
    key: QueryKey,
    generation: u64,
    result: CachedResult,
}

/// A small per-service memo table (experiments issue only a handful of
/// distinct query shapes; eviction is oldest-first beyond the cap).
#[derive(Default)]
pub struct ResultCache {
    slots: Vec<Slot>,
}

const CACHE_CAP: usize = 8;

impl ResultCache {
    pub fn new() -> Self {
        ResultCache { slots: Vec::new() }
    }

    /// Fetch the memoized result for this query against `dit`'s current
    /// generation, or materialize it with `compute` and remember it.
    pub fn get_or_compute(
        &mut self,
        dit: &Dit,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        attrs: &Option<Vec<String>>,
        compute: impl FnOnce(&Dit) -> CachedResult,
    ) -> CachedResult {
        let generation = dit.generation();
        if let Some(slot) = self.slots.iter().find(|s| {
            s.key.scope == scope
                && s.key.base == *base
                && s.key.filter == *filter
                && s.key.attrs == *attrs
        }) {
            if slot.generation == generation {
                return slot.result.clone();
            }
        }
        let result = compute(dit);
        let key = QueryKey {
            base: base.clone(),
            scope,
            filter: filter.clone(),
            attrs: attrs.clone(),
        };
        if let Some(slot) = self.slots.iter_mut().find(|s| s.key == key) {
            slot.generation = generation;
            slot.result = result.clone();
        } else {
            if self.slots.len() >= CACHE_CAP {
                self.slots.remove(0);
            }
            self.slots.push(Slot {
                key,
                generation,
                result: result.clone(),
            });
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dit() -> Dit {
        let mut d = Dit::new(Dn::parse("o=grid").unwrap());
        let mut e = Entry::new(Dn::parse("cn=a, o=grid").unwrap());
        e.add("objectclass", "thing");
        d.add(e).unwrap();
        d
    }

    fn compute_all(d: &Dit) -> CachedResult {
        let base = d.suffix().clone();
        let f = Filter::parse("(objectclass=*)").unwrap();
        let hits = d.search(&base, Scope::Sub, &f);
        CachedResult {
            total: hits.len(),
            bytes: hits.iter().map(|e| e.wire_size()).sum(),
            entries: Rc::new(hits.into_iter().cloned().collect()),
        }
    }

    #[test]
    fn hit_shares_materialization_until_mutation() {
        let mut d = dit();
        let mut c = ResultCache::new();
        let base = d.suffix().clone();
        let f = Filter::parse("(objectclass=*)").unwrap();
        let r1 = c.get_or_compute(&d, &base, Scope::Sub, &f, &None, compute_all);
        let r2 = c.get_or_compute(&d, &base, Scope::Sub, &f, &None, |_| {
            panic!("must be served from cache")
        });
        assert!(Rc::ptr_eq(&r1.entries, &r2.entries));
        assert_eq!(r1.total, 2);

        // A mutation invalidates: recompute sees the new entry.
        let mut e = Entry::new(Dn::parse("cn=b, o=grid").unwrap());
        e.add("objectclass", "thing");
        d.add(e).unwrap();
        let r3 = c.get_or_compute(&d, &base, Scope::Sub, &f, &None, compute_all);
        assert!(!Rc::ptr_eq(&r1.entries, &r3.entries));
        assert_eq!(r3.total, 3);
    }

    #[test]
    fn distinct_queries_get_distinct_slots() {
        let d = dit();
        let mut c = ResultCache::new();
        let base = d.suffix().clone();
        let all = Filter::parse("(objectclass=*)").unwrap();
        let none = Filter::parse("(objectclass=nope)").unwrap();
        let ra = c.get_or_compute(&d, &base, Scope::Sub, &all, &None, compute_all);
        let rn = c.get_or_compute(&d, &base, Scope::Sub, &none, &None, |d| {
            let hits = d.search(&base, Scope::Sub, &none);
            CachedResult {
                total: hits.len(),
                bytes: 0,
                entries: Rc::new(Vec::new()),
            }
        });
        assert_eq!(ra.total, 2);
        assert_eq!(rn.total, 0);
        // Both remain servable from cache.
        let ra2 = c.get_or_compute(&d, &base, Scope::Sub, &all, &None, |_| unreachable!());
        let rn2 = c.get_or_compute(&d, &base, Scope::Sub, &none, &None, |_| unreachable!());
        assert!(Rc::ptr_eq(&ra.entries, &ra2.entries));
        assert!(Rc::ptr_eq(&rn.entries, &rn2.entries));
    }
}
