//! Information providers.
//!
//! An MDS information provider is an executable the GRIS runs (fork +
//! exec + script runtime) to produce a handful of LDAP entries.  A default
//! MDS 2.1 installation ships ten providers per host; the paper's
//! Experiment Set 3 scales this to 90 by cloning the memory provider.

use ldapdir::{Dn, Entry};
use simcore::SimDuration;

/// Definition of one information provider.
pub struct ProviderSpec {
    /// Provider name (also its subtree label under the host entry).
    pub name: String,
    /// CPU cost of one invocation (fork + exec + script) in
    /// reference-CPU microseconds.
    pub exec_cpu_us: f64,
    /// How long its data stays fresh in the GRIS cache.  `None` means
    /// never expires ("data always in cache"); zero means always stale
    /// ("data never in cache").
    pub cachettl: Option<SimDuration>,
    /// The entries one invocation produces, rooted under the GRIS suffix.
    pub entries: Vec<Entry>,
}

impl ProviderSpec {
    /// Total serialized size of this provider's data.
    pub fn data_bytes(&self) -> u64 {
        self.entries.iter().map(Entry::wire_size).sum()
    }
}

/// Default invocation cost: MDS providers are shell/Perl scripts; a fork,
/// exec and parse on a 1133 MHz PIII costs on the order of 50 ms.  Each
/// provider's actual cost varies a little around this (deterministically,
/// by index) so the serialized execution pipeline is not exactly
/// periodic — a perfectly regular cycle aliases with Ganglia's 5-second
/// sampling.
pub const DEFAULT_EXEC_CPU_US: f64 = 50_000.0;

/// Build `n` providers for `host` under `suffix`, in the spirit of the
/// default MDS host providers (the first ten have distinct schemas; the
/// rest are clones of the memory provider, exactly how the paper expanded
/// the provider count).
pub fn default_providers(
    suffix: &Dn,
    host: &str,
    n: usize,
    ttl: Option<SimDuration>,
) -> Vec<ProviderSpec> {
    let kinds = [
        ("cpu", 3),
        ("memory", 2),
        ("filesystem", 4),
        ("os", 2),
        ("net", 3),
        ("platform", 2),
        ("queue", 3),
        ("software", 4),
        ("users", 2),
        ("bench", 2),
    ];
    let host_dn = suffix.child("Mds-Host-hn", host);
    (0..n)
        .map(|i| {
            let (kind, entries_n): (&str, usize) = if i < kinds.len() {
                (kinds[i].0, kinds[i].1)
            } else {
                ("memory-clone", 2)
            };
            let name = format!(
                "{kind}{}",
                if i >= kinds.len() {
                    format!("-{i}")
                } else {
                    String::new()
                }
            );
            let group_dn = host_dn.child("Mds-Device-Group-name", &name);
            let mut entries = Vec::new();
            let mut group = Entry::new(group_dn.clone());
            group
                .add("objectclass", "MdsDeviceGroup")
                .add("Mds-Device-Group-name", &name);
            entries.push(group);
            for j in 0..entries_n {
                let dn = group_dn.child("Mds-Device-name", &format!("{name}-dev{j}"));
                let mut e = Entry::new(dn);
                e.add("objectclass", "MdsDevice")
                    .add("Mds-Device-name", format!("{name}-dev{j}"))
                    .add("Mds-Host-hn", host)
                    .add("Mds-validfrom", "2003-01-01 00:00:00")
                    .add("Mds-validto", "2003-01-01 00:00:30")
                    .add(
                        &format!("Mds-{kind}-metric"),
                        format!("{}", 17 * (i + 1) + j),
                    )
                    .add("Mds-keepto", "2003-01-01 00:00:30");
                entries.push(e);
            }
            ProviderSpec {
                name,
                exec_cpu_us: DEFAULT_EXEC_CPU_US * (0.87 + 0.039 * (i % 7) as f64),
                cachettl: ttl,
                entries,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_count() {
        let suffix = Dn::parse("mds-vo-name=local, o=grid").unwrap();
        let ps = default_providers(&suffix, "lucky7", 10, None);
        assert_eq!(ps.len(), 10);
        // First ten have distinct names.
        let names: std::collections::BTreeSet<_> = ps.iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), 10);
        // 90-provider expansion clones the memory provider.
        let ps90 = default_providers(&suffix, "lucky7", 90, None);
        assert_eq!(ps90.len(), 90);
        assert!(ps90[50].name.starts_with("memory-clone"));
    }

    #[test]
    fn entries_are_rooted_under_the_host() {
        let suffix = Dn::parse("mds-vo-name=local, o=grid").unwrap();
        let ps = default_providers(&suffix, "lucky7", 3, None);
        let host_dn = suffix.child("mds-host-hn", "lucky7");
        for p in &ps {
            assert!(!p.entries.is_empty());
            for e in &p.entries {
                assert!(e.dn.is_under(&host_dn), "{} not under host", e.dn);
            }
            assert!(p.data_bytes() > 100);
        }
    }

    #[test]
    fn provider_data_grows_with_count() {
        let suffix = Dn::parse("o=grid").unwrap();
        let p10: u64 = default_providers(&suffix, "h", 10, None)
            .iter()
            .map(ProviderSpec::data_bytes)
            .sum();
        let p90: u64 = default_providers(&suffix, "h", 90, None)
            .iter()
            .map(ProviderSpec::data_bytes)
            .sum();
        assert!(p90 > p10 * 4);
    }
}
