//! # mds — the Globus Monitoring and Discovery Service (MDS 2.1)
//!
//! MDS is the LDAP-based Grid information service of the Globus Toolkit.
//! Its hierarchy has three layers, all modelled here as [`simnet`]
//! services over the [`ldapdir`] substrate:
//!
//! * **Information providers** ([`provider`]): programs the GRIS forks to
//!   produce LDAP entries (host CPU, memory, filesystem ...).  Each
//!   invocation costs CPU; this is the expense that caching avoids.
//! * **GRIS** ([`gris`]): the resource-level LDAP server.  Per-provider
//!   cache TTLs decide whether a search can be answered from cached
//!   entries or must re-run providers first (the paper's "data always in
//!   cache" vs "data never in cache" configurations).
//! * **GIIS** ([`giis`]): the aggregate directory.  GRISes register via a
//!   soft-state protocol; the GIIS pulls and caches their subtrees
//!   (`cachettl`) and answers searches over the merged directory.
//!
//! MDS 2.1 performs a GSI-authenticated bind per connection; the
//! corresponding session-establishment cost is configured on the service
//! (see [`simnet::SetupCost`]) rather than in this crate.

pub(crate) mod cache;
pub mod giis;
pub mod gris;
pub mod proto;
pub mod provider;

pub use giis::Giis;
pub use gris::Gris;
pub use proto::{GrisRegistration, MdsRequest, MdsSearchResult};
pub use provider::{default_providers, ProviderSpec};
