//! The Grid Index Information Service.
//!
//! A GIIS aggregates the directories of registered GRISes (or lower-level
//! GIISes — the MDS hierarchy is uniform).  Registration is soft state: a
//! registrant re-announces itself every period and is purged after
//! `registration_ttl` without a heartbeat.  Data moves by pull: on a
//! query, any registered subtree whose cached copy is older than
//! `cachettl` is re-fetched from its source before the search is
//! evaluated over the merged directory.  The paper's Experiment Set 2
//! sets `cachettl` "to a very large value so that the data was always in
//! the cache" — [`Giis::new`] with `cachettl = None` reproduces that.

use crate::gris::{SEARCH_CPU_FIXED_US, SEARCH_CPU_PER_ENTRY_US};
use crate::proto::{GrisRegistration, MdsRequest, MdsSearchResult};
use ldapdir::{Dit, Dn, Entry};
use simcore::{SimDuration, SimTime};
use simnet::trace::Ev;
use simnet::{CallOutcome, Payload, Plan, Service, SubCall, SvcCx, SvcKey};
use std::collections::{BTreeMap, HashMap};

/// CPU cost of merging one pulled entry into the aggregate directory.
pub const MERGE_CPU_PER_ENTRY_US: f64 = 60.0;

/// CPU cost of processing one registration heartbeat.
pub const REGISTRATION_CPU_US: f64 = 800.0;

/// Max entries carried in a GIIS reply payload (see `search_plan`).
pub const RESULT_ENTRY_CAP: usize = 256;

/// A registered information source.
struct Registration {
    /// The source's own suffix (what we ask it for).
    remote_suffix: Dn,
    /// Where its subtree is grafted in our namespace.
    graft: Dn,
    last_seen: SimTime,
    /// When we last pulled its data (`None` = never).  Refreshed when the
    /// pull is *issued* (stampede guard), so it cannot honestly answer
    /// "how old is the data we serve?" — `last_data` does.
    last_fetch: Option<SimTime>,
    /// When a pull last *returned* data for this subtree (`None` = never).
    last_data: Option<SimTime>,
    entry_count: usize,
}

struct PendingQuery {
    base: Dn,
    scope: ldapdir::Scope,
    filter: ldapdir::Filter,
    attrs: Option<Vec<String>>,
    /// Sources pulled for this query, in sub-call order, so the resume can
    /// stamp `last_data` on exactly the subtrees that answered.
    pulled: Vec<SvcKey>,
}

/// The GIIS service.
pub struct Giis {
    suffix: Dn,
    dit: Dit,
    registered: BTreeMap<SvcKey, Registration>,
    /// `None` = cache never expires (the paper's huge `cachettl`).
    cachettl: Option<SimDuration>,
    /// Registrants silent for this long are purged (3 heartbeat periods).
    registration_ttl: SimDuration,
    pending: HashMap<u64, PendingQuery>,
    next_cont: u64,
    /// Upper-level GIISes this GIIS registers with (the MDS hierarchy is
    /// uniform: a GIIS registers to another GIIS exactly like a GRIS).
    registrees: Vec<SvcKey>,
    /// Own service key (set by the deployment when this GIIS registers
    /// upward).
    pub me: Option<SvcKey>,
    /// Counters for tests/analysis.
    pub queries: u64,
    pub pulls: u64,
    pub registrations_seen: u64,
    /// Memoized search replies (see [`crate::cache`]).
    cache: crate::cache::ResultCache,
}

impl Giis {
    pub fn new(suffix: Dn, cachettl: Option<SimDuration>) -> Giis {
        Giis {
            dit: Dit::new(suffix.clone()),
            suffix,
            registered: BTreeMap::new(),
            cachettl,
            registration_ttl: SimDuration::from_secs(90),
            pending: HashMap::new(),
            next_cont: 0,
            registrees: Vec::new(),
            me: None,
            queries: 0,
            pulls: 0,
            registrations_seen: 0,
            cache: crate::cache::ResultCache::new(),
        }
    }

    pub fn suffix(&self) -> &Dn {
        &self.suffix
    }

    /// Register this GIIS with an upper-level GIIS — the paper's proposed
    /// "multi-layer architecture in which each middle-level aggregate
    /// information server manages a subset of information servers".  The
    /// deployment must set [`Giis::me`] and prime timer 0.
    pub fn register_with(&mut self, parent: SvcKey) {
        self.registrees.push(parent);
    }

    pub fn registered_count(&self) -> usize {
        self.registered.len()
    }

    /// Graft point of a registered source (for "query part" workloads).
    pub fn graft_of(&self, source: SvcKey) -> Option<&Dn> {
        self.registered.get(&source).map(|r| &r.graft)
    }

    /// Total entries currently aggregated.
    pub fn aggregated_entries(&self) -> usize {
        self.dit.len()
    }

    /// Age of the *oldest* subtree data this GIIS would serve at `now`:
    /// the staleness a client may observe when the cache (or a partition)
    /// keeps answering without fresh pulls.  `None` until any pull has
    /// returned data.
    pub fn max_data_age(&self, now: SimTime) -> Option<SimDuration> {
        self.registered
            .values()
            .filter_map(|r| r.last_data)
            .map(|t| now.saturating_since(t))
            .max()
    }

    fn purge_expired(&mut self, now: SimTime) {
        let ttl = self.registration_ttl;
        let dead: Vec<SvcKey> = self
            .registered
            .iter()
            .filter(|(_, r)| now.saturating_since(r.last_seen) > ttl)
            .map(|(&k, _)| k)
            .collect();
        for k in dead {
            if let Some(r) = self.registered.remove(&k) {
                let _ = self.dit.remove_subtree(&r.graft);
            }
        }
    }

    /// Sources whose cache needs refreshing at `now`.
    fn stale_sources(&self, now: SimTime) -> Vec<SvcKey> {
        self.registered
            .iter()
            .filter(|(_, r)| match (r.last_fetch, self.cachettl) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(at), Some(ttl)) => now >= at + ttl,
            })
            .map(|(&k, _)| k)
            .collect()
    }

    fn search_plan(&mut self, q: PendingQuery) -> Plan {
        // Memoized until the aggregate directory changes; the simulated
        // scan cost below is still charged per query.
        let cached =
            self.cache
                .get_or_compute(&self.dit, &q.base, q.scope, &q.filter, &q.attrs, |dit| {
                    let hits = dit.search(&q.base, q.scope, &q.filter);
                    // Attribute selection shrinks what goes on the wire.  The
                    // wire size is accounted without materializing a
                    // projection per hit — only the capped payload prefix
                    // below is ever cloned.
                    let bytes: u64 = 64
                        + match &q.attrs {
                            None => hits.iter().map(|e| e.wire_size()).sum::<u64>(),
                            Some(sel) => {
                                hits.iter().map(|e| e.projected_wire_size(sel)).sum::<u64>()
                            }
                        };
                    // For huge aggregate results only a prefix of the entries
                    // rides in the in-simulation payload (the wire size is
                    // exact either way); this keeps 500-GRIS query-all sweeps
                    // affordable.
                    let entries: Vec<Entry> = hits
                        .iter()
                        .take(RESULT_ENTRY_CAP)
                        .map(|&e| match &q.attrs {
                            None => e.clone(),
                            Some(sel) => e.project(sel),
                        })
                        .collect();
                    crate::cache::CachedResult {
                        total: hits.len(),
                        bytes,
                        entries: std::rc::Rc::new(entries),
                    }
                });
        let cost = SEARCH_CPU_FIXED_US
            + SEARCH_CPU_PER_ENTRY_US * self.dit.scan_size() as f64 * q.filter.cost() as f64;
        let bytes = cached.bytes;
        Plan::new().cpu(cost).reply(
            MdsSearchResult {
                entries: cached.entries,
                total: cached.total,
                bytes,
            },
            bytes,
        )
    }
}

impl Service for Giis {
    fn handle(&mut self, req: Payload, cx: &mut SvcCx) -> Plan {
        let now = cx.now;
        // Registration heartbeat (one-way)?
        let req = match req.downcast::<GrisRegistration>() {
            Ok(reg) => {
                self.registrations_seen += 1;
                let graft_label = format!("sub-{}-{}", reg.gris.index, reg.gris.gen);
                let graft = self.suffix.child("Mds-Vo-name", &graft_label);
                self.registered
                    .entry(reg.gris)
                    .and_modify(|r| r.last_seen = now)
                    .or_insert(Registration {
                        remote_suffix: reg.suffix.clone(),
                        graft,
                        last_seen: now,
                        last_fetch: None,
                        last_data: None,
                        entry_count: 0,
                    });
                return Plan::new().cpu(REGISTRATION_CPU_US).done();
            }
            Err(other) => other,
        };
        let req = req
            .downcast::<MdsRequest>()
            .expect("GIIS expects MdsRequest");
        let MdsRequest::Search {
            base,
            scope,
            filter,
            attrs,
        } = *req;
        self.queries += 1;
        cx.obs.incr("mds.ldap_searches", 1);
        self.purge_expired(now);
        let q = PendingQuery {
            base,
            scope,
            filter,
            attrs,
            pulled: Vec::new(),
        };
        let stale = self.stale_sources(now);
        let me = cx.me.index;
        if stale.is_empty() {
            cx.obs.ev_with(now, || Ev::CacheHit { svc: me });
            cx.obs.incr("mds.cache_hits", 1);
            return self.search_plan(q);
        }
        cx.obs.ev_with(now, || Ev::CacheMiss { svc: me });
        cx.obs.incr("mds.cache_misses", 1);
        // Pull the stale subtrees, then search.  Mark the fetch time now so
        // concurrent queries don't stampede the same sources.
        let mut q = q;
        let mut calls = Vec::with_capacity(stale.len());
        for k in stale {
            q.pulled.push(k);
            let r = self.registered.get_mut(&k).unwrap();
            r.last_fetch = Some(now);
            self.pulls += 1;
            let sub = MdsRequest::search_all(r.remote_suffix.clone());
            let bytes = sub.wire_size();
            calls.push(SubCall {
                to: k,
                payload: Box::new(sub),
                req_bytes: bytes,
            });
        }
        let cont = self.next_cont;
        self.next_cont += 1;
        self.pending.insert(cont, q);
        Plan::new().cpu(SEARCH_CPU_FIXED_US).call_all(calls, cont)
    }

    fn resume(&mut self, cont: u64, outcomes: Vec<CallOutcome>, cx: &mut SvcCx) -> Plan {
        let q = self.pending.remove(&cont).expect("pending query");
        // Stamp data freshness for every subtree that actually answered.
        let now = cx.now;
        for o in &outcomes {
            if o.response.is_some() {
                if let Some(&k) = q.pulled.get(o.index as usize) {
                    if let Some(r) = self.registered.get_mut(&k) {
                        r.last_data = Some(now);
                    }
                }
            }
        }
        // Merge pulled subtrees, rebasing each entry's DN by matching its
        // remote suffix (indexed by suffix for large registries).  The
        // pulled entry is moved into the aggregate with its DN rewritten
        // in place — no per-attribute rebuild.
        let mut merged = 0usize;
        let pairs: Vec<(Dn, Dn)> = self
            .registered
            .values()
            .map(|r| (r.remote_suffix.clone(), r.graft.clone()))
            .collect();
        let by_suffix: std::collections::HashMap<&[ldapdir::Rdn], usize> = pairs
            .iter()
            .enumerate()
            .map(|(i, (s, _))| (s.rdns(), i))
            .collect();
        let depths: std::collections::BTreeSet<usize> =
            pairs.iter().map(|(s, _)| s.depth()).collect();
        for o in outcomes {
            let Some((payload, _bytes)) = o.response else {
                continue; // source unreachable; soft state will purge it
            };
            let Ok(result) = payload.downcast::<MdsSearchResult>() else {
                continue;
            };
            // Take ownership of the pulled entries: if the source served
            // from its memo cache the Rc is shared and we clone once
            // here; otherwise the vec is moved out for free.
            let entries =
                std::rc::Rc::try_unwrap(result.entries).unwrap_or_else(|rc| (*rc).clone());
            for mut e in entries {
                let reg = depths
                    .iter()
                    .find_map(|&d| e.dn.suffix_slice(d).and_then(|sfx| by_suffix.get(sfx)));
                let Some(&i) = reg else {
                    continue;
                };
                let (remote_suffix, graft) = &pairs[i];
                if let Some(dn) = e.dn.rebase(remote_suffix, graft) {
                    e.dn = dn;
                    if self.dit.upsert(e).is_ok() {
                        merged += 1;
                    }
                }
            }
        }
        for r in self.registered.values_mut() {
            r.entry_count = 0; // recomputed lazily if ever needed
        }
        let merge_cost = MERGE_CPU_PER_ENTRY_US * merged as f64;
        let mut plan = self.search_plan(q);
        plan.steps.insert(0, simnet::Step::Cpu(merge_cost));
        plan
    }

    fn on_timer(&mut self, _tag: u64, cx: &mut SvcCx) {
        // Soft-state registration heartbeat to upper-level GIISes.
        if let Some(me) = self.me {
            for &parent in &self.registrees {
                cx.send_oneway(
                    parent,
                    GrisRegistration {
                        gris: me,
                        suffix: self.suffix.clone(),
                    },
                    crate::proto::REGISTRATION_BYTES,
                );
            }
        }
        cx.set_timer(crate::gris::REGISTRATION_PERIOD, 0);
    }

    fn name(&self) -> &str {
        "giis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gris::Gris;
    use crate::provider::default_providers;
    use ldapdir::{Filter, Scope};
    use simcore::Engine;
    use simnet::{
        Client, ClientCx, Eng, Net, ReqOutcome, ReqResult, RequestSpec, ServiceConfig, StatsHub,
        Topology,
    };

    struct QueryAt {
        from: simnet::NodeId,
        to: SvcKey,
        times_s: Vec<u64>,
        req: Box<dyn Fn() -> MdsRequest>,
        results: std::rc::Rc<std::cell::RefCell<Vec<(usize, f64)>>>,
    }

    impl Client for QueryAt {
        fn on_start(&mut self, cx: &mut ClientCx) {
            for &t in &self.times_s {
                cx.wake_in(SimDuration::from_secs(t), 0);
            }
        }
        fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
            let req = (self.req)();
            let bytes = req.wire_size();
            cx.submit(
                RequestSpec {
                    from: self.from,
                    to: self.to,
                    payload: Box::new(req),
                    req_bytes: bytes,
                },
                0,
            );
        }
        fn on_outcome(&mut self, o: ReqOutcome, _cx: &mut ClientCx) {
            if let ReqResult::Ok(p, _) = o.result {
                let r = p.downcast::<MdsSearchResult>().unwrap();
                let rt = (o.completed - o.submitted).as_secs_f64();
                self.results.borrow_mut().push((r.total, rt));
            } else {
                self.results.borrow_mut().push((usize::MAX, -1.0));
            }
        }
    }

    /// Deploy a GIIS with `n_gris` registered GRISes on a 3-node LAN.
    fn deploy(
        n_gris: usize,
        cachettl: Option<SimDuration>,
    ) -> (Net, Eng, simnet::NodeId, SvcKey, Vec<SvcKey>) {
        let mut topo = Topology::new();
        let client = topo.add_node("client", 1, 1.0);
        let giis_node = topo.add_node("giis-host", 2, 1.0);
        let gris_node = topo.add_node("gris-host", 2, 1.0);
        topo.connect(client, giis_node, 100e6, SimDuration::from_millis(1));
        topo.connect(client, gris_node, 100e6, SimDuration::from_millis(1));
        topo.connect(giis_node, gris_node, 100e6, SimDuration::from_micros(200));
        let mut net = Net::new(topo, StatsHub::new(SimTime::ZERO, SimTime::from_secs(1000)));
        let mut eng: Eng = Engine::new(21);
        let giis_suffix = Dn::parse("mds-vo-name=site, o=giis").unwrap();
        let giis = net.add_service(
            giis_node,
            ServiceConfig::default(),
            Box::new(Giis::new(giis_suffix, cachettl)),
            &mut eng,
        );
        let mut grises = Vec::new();
        for i in 0..n_gris {
            let suffix = Dn::parse(&format!("mds-vo-name=res{i}, o=grid")).unwrap();
            let mut gris = Gris::new(
                suffix.clone(),
                default_providers(&suffix, &format!("host{i}"), 10, None),
            );
            gris.register_with(giis);
            let key = net.add_service(
                gris_node,
                ServiceConfig::default(),
                Box::new(gris),
                &mut eng,
            );
            net.service_as_mut::<Gris>(key).unwrap().me = Some(key);
            // Kick the registration loop immediately.
            net.prime_service_timer(
                &mut eng,
                key,
                SimDuration::from_millis(10 * (i as u64 + 1)),
                0,
            );
            grises.push(key);
        }
        (net, eng, client, giis, grises)
    }

    #[test]
    fn registration_then_pull_then_cache() {
        let (mut net, mut eng, client, giis, _grises) = deploy(3, None);
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let base = Dn::parse("mds-vo-name=site, o=giis").unwrap();
        net.add_client(Box::new(QueryAt {
            from: client,
            to: giis,
            times_s: vec![5, 10, 15],
            req: Box::new(move || MdsRequest::search_all(base.clone())),
            results: results.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(120));
        let results = results.borrow();
        assert_eq!(results.len(), 3);
        // All three GRIS subtrees visible: >20 entries each.
        assert!(results[0].0 > 60, "entries {}", results[0].0);
        assert_eq!(results[0].0, results[2].0);
        // First query pulled; later ones served from cache and faster.
        let g = net.service_as::<Giis>(giis).unwrap();
        assert_eq!(g.registered_count(), 3);
        assert_eq!(g.pulls, 3);
        assert!(
            results[1].1 < results[0].1,
            "warm {} cold {}",
            results[1].1,
            results[0].1
        );
    }

    #[test]
    fn finite_cachettl_refetches() {
        let (mut net, mut eng, client, giis, _) = deploy(2, Some(SimDuration::from_secs(12)));
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let base = Dn::parse("mds-vo-name=site, o=giis").unwrap();
        net.add_client(Box::new(QueryAt {
            from: client,
            to: giis,
            times_s: vec![5, 10, 30],
            req: Box::new(move || MdsRequest::search_all(base.clone())),
            results: results.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(120));
        let g = net.service_as::<Giis>(giis).unwrap();
        // t=5 pulls both; t=10 cached; t=30 stale -> pulls both again.
        assert_eq!(g.pulls, 4);
    }

    #[test]
    fn soft_state_purges_dead_sources() {
        let (mut net, mut eng, client, giis, grises) = deploy(2, None);
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let base = Dn::parse("mds-vo-name=site, o=giis").unwrap();
        net.add_client(Box::new(QueryAt {
            from: client,
            to: giis,
            times_s: vec![5, 300],
            req: Box::new(move || MdsRequest::search_all(base.clone())),
            results: results.clone(),
        }));
        net.start(&mut eng);
        // Run past the first query, then "kill" one GRIS's heartbeat by
        // removing its registration target list.
        eng.run_until(&mut net, SimTime::from_secs(60));
        net.service_as_mut::<Gris>(grises[0]).unwrap().me = None;
        eng.run_until(&mut net, SimTime::from_secs(400));
        let g = net.service_as::<Giis>(giis).unwrap();
        assert_eq!(g.registered_count(), 1, "dead GRIS purged");
        let results = results.borrow();
        // Second query (t=300) sees only the surviving subtree.
        assert!(results[1].0 < results[0].0);
    }

    #[test]
    fn part_query_returns_one_subtree() {
        let (mut net, mut eng, client, giis, grises) = deploy(4, None);
        // Warm the cache first.
        let warm = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let base = Dn::parse("mds-vo-name=site, o=giis").unwrap();
        net.add_client(Box::new(QueryAt {
            from: client,
            to: giis,
            times_s: vec![5],
            req: Box::new({
                let base = base.clone();
                move || MdsRequest::search_all(base.clone())
            }),
            results: warm.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(60));
        let total = warm.borrow()[0].0;
        // Query just one graft point.
        let graft = net
            .service_as::<Giis>(giis)
            .unwrap()
            .graft_of(grises[1])
            .unwrap()
            .clone();
        let part = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let late = net.add_client(Box::new(QueryAt {
            from: client,
            to: giis,
            times_s: vec![1],
            req: Box::new(move || MdsRequest::Search {
                base: graft.clone(),
                scope: Scope::Sub,
                filter: Filter::any(),
                attrs: None,
            }),
            results: part.clone(),
        }));
        net.start_client(&mut eng, late);
        eng.run_until(&mut net, SimTime::from_secs(120));
        let part_n = part.borrow()[0].0;
        assert!(part_n > 0);
        assert!(part_n * 3 < total, "part {part_n} of {total}");
    }

    #[test]
    fn giis_registers_with_parent_giis() {
        // Two-level MDS hierarchy: GRISes -> mid GIIS -> top GIIS.
        let (mut net, mut eng, client, mid, _grises) = deploy(3, None);
        let top_node = net.topo.find_node("client").unwrap();
        let top_suffix = Dn::parse("mds-vo-name=top, o=giis").unwrap();
        let top = net.add_service(
            top_node,
            ServiceConfig::default(),
            Box::new(Giis::new(top_suffix.clone(), None)),
            &mut eng,
        );
        {
            let mid_ref = net.service_as_mut::<Giis>(mid).unwrap();
            mid_ref.me = Some(mid);
            mid_ref.register_with(top);
        }
        net.prime_service_timer(&mut eng, mid, SimDuration::from_millis(500), 0);
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(QueryAt {
            from: client,
            to: top,
            times_s: vec![20],
            req: Box::new(move || MdsRequest::search_all(top_suffix.clone())),
            results: results.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(120));
        // The top GIIS pulled the mid GIIS, which pulled the three GRISes:
        // the whole grid is visible from the top.
        let results = results.borrow();
        assert_eq!(results.len(), 1);
        assert!(results[0].0 > 60, "entries via hierarchy: {}", results[0].0);
        let top_ref = net.service_as::<Giis>(top).unwrap();
        assert_eq!(top_ref.registered_count(), 1);
        assert_eq!(top_ref.pulls, 1);
    }
}
