//! Hawkeye monitoring modules.
//!
//! A module is "simply a sensor that advertises resource information in a
//! ClassAd format".  Modules are lighter than MDS information providers —
//! most are thin wrappers over `vmstat`, `df` and friends.  The paper's
//! Experiment Set 3 grows the module count from the 11 defaults to 90
//! "using multiple instances of the 'vmstat' Module" (and notes that the
//! 99th module crashed the Startd, so 98 is the hard cap).

use classad::ClassAd;

/// Hard limit observed by the paper: registering more than 98 modules
/// crashed the Startd.
pub const MAX_MODULES: usize = 98;

/// Definition of one module.
pub struct ModuleSpec {
    pub name: String,
    /// CPU cost of one execution in reference-CPU microseconds.
    pub exec_cpu_us: f64,
    /// The attributes this module contributes to the Startd ad.
    pub attrs: ClassAd,
}

/// Default execution cost: a vmstat-class child process.
pub const DEFAULT_EXEC_CPU_US: f64 = 15_000.0;

/// The 11 default modules of a standard Hawkeye install, padded with
/// vmstat clones beyond that (the paper's method).  Panics above
/// [`MAX_MODULES`], mirroring the Startd crash.
pub fn default_modules(host: &str, n: usize) -> Vec<ModuleSpec> {
    assert!(
        n <= MAX_MODULES,
        "adding module {} crashes the Startd (max {MAX_MODULES})",
        n
    );
    let defaults = [
        "cpu",
        "memory",
        "disk",
        "network",
        "processes",
        "users",
        "uptime",
        "swap",
        "filesystem",
        "condor",
        "os",
    ];
    (0..n)
        .map(|i| {
            let name = if i < defaults.len() {
                defaults[i].to_string()
            } else {
                format!("vmstat-{i}")
            };
            // A deterministic, host-dependent synthetic metric so
            // machines differ (triggers can single hosts out).
            let host_salt = host
                .bytes()
                .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
            let mut attrs = ClassAd::new();
            attrs.set_str(&format!("Hawkeye_{name}_Name"), &name);
            attrs.set_real(
                &format!("Hawkeye_{name}_Metric"),
                ((i as f64 * 7.3) + (host_salt % 41) as f64) % 100.0,
            );
            attrs.set_int(&format!("Hawkeye_{name}_SampleSize"), 42 + i as i64);
            attrs.set_str(&format!("Hawkeye_{name}_Host"), host);
            ModuleSpec {
                name,
                exec_cpu_us: DEFAULT_EXEC_CPU_US,
                attrs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_has_eleven_distinct() {
        let ms = default_modules("lucky4", 11);
        assert_eq!(ms.len(), 11);
        let names: std::collections::BTreeSet<_> = ms.iter().map(|m| m.name.clone()).collect();
        assert_eq!(names.len(), 11);
        for m in &ms {
            assert!(m.attrs.len() >= 3);
            assert!(m.attrs.wire_size() > 50);
        }
    }

    #[test]
    fn expansion_clones_vmstat() {
        let ms = default_modules("lucky4", 90);
        assert_eq!(ms.len(), 90);
        assert!(ms[50].name.starts_with("vmstat-"));
    }

    #[test]
    #[should_panic(expected = "crashes the Startd")]
    fn too_many_modules_crash() {
        let _ = default_modules("lucky4", 99);
    }
}
