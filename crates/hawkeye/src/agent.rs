//! The Hawkeye Monitoring Agent.
//!
//! One Agent runs per pool member.  It periodically executes its modules,
//! integrates their ClassAds into a single Startd ClassAd, and sends it
//! to the registered Manager (every 30 seconds).  Clients may also query
//! the Agent directly — but because the Agent keeps no indexed resident
//! database, it "has to retrieve new information for each query" (the
//! paper's explanation of its limited scalability): a status query
//! re-runs one module, a full query re-runs all of them.

use crate::module::ModuleSpec;
use crate::proto::{AdsReply, HawkeyeMsg};
use classad::ClassAd;
use simcore::SimDuration;
use simnet::{Payload, Plan, Service, SvcCx, SvcKey};

/// Advertise interval: the paper's Startd ads arrive every 30 seconds.
pub const ADVERTISE_PERIOD: SimDuration = SimDuration(30_000_000);

/// CPU cost of integrating one module's ClassAd into the Startd ad.
pub const INTEGRATE_CPU_PER_MODULE_US: f64 = 1_500.0;

/// Fixed per-query CPU (connection handling, ad serialization).
pub const QUERY_CPU_FIXED_US: f64 = 5_000.0;

/// The Agent service.
pub struct Agent {
    machine: String,
    modules: Vec<ModuleSpec>,
    manager: Option<SvcKey>,
    /// Round-robin index for status queries (which module gets re-run).
    next_status_module: usize,
    /// Counters.
    pub queries: u64,
    pub module_runs: u64,
    pub ads_sent: u64,
}

impl Agent {
    pub fn new(machine: impl Into<String>, modules: Vec<ModuleSpec>) -> Agent {
        Agent {
            machine: machine.into(),
            modules,
            manager: None,
            next_status_module: 0,
            queries: 0,
            module_runs: 0,
            ads_sent: 0,
        }
    }

    /// Register with a Manager (the deployment primes the advertise
    /// timer).
    pub fn register_with(&mut self, manager: SvcKey) {
        self.manager = Some(manager);
    }

    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// Integrate all module ads into the Startd ClassAd.
    pub fn build_startd_ad(&self) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.set_str("Machine", &self.machine);
        ad.set_str("OpSys", "LINUX");
        ad.set_bool("Requirements", true);
        ad.set_int("ModuleCount", self.modules.len() as i64);
        for m in &self.modules {
            ad.merge(&m.attrs);
        }
        ad
    }

    /// CPU to run every module once.
    fn all_modules_cpu(&self) -> f64 {
        self.modules.iter().map(|m| m.exec_cpu_us).sum::<f64>()
            + INTEGRATE_CPU_PER_MODULE_US * self.modules.len() as f64
    }
}

impl Service for Agent {
    fn handle(&mut self, req: Payload, _cx: &mut SvcCx) -> Plan {
        let msg = req
            .downcast::<HawkeyeMsg>()
            .expect("Agent expects HawkeyeMsg");
        match *msg {
            HawkeyeMsg::AgentStatus => {
                // Re-run one module, reply with its fragment.
                self.queries += 1;
                self.module_runs += 1;
                let i = self.next_status_module % self.modules.len().max(1);
                self.next_status_module = self.next_status_module.wrapping_add(1);
                let m = &self.modules[i];
                let reply = AdsReply::new(vec![m.attrs.clone()]);
                let bytes = reply.bytes;
                Plan::new()
                    .cpu(QUERY_CPU_FIXED_US + m.exec_cpu_us + INTEGRATE_CPU_PER_MODULE_US)
                    .reply(reply, bytes)
            }
            HawkeyeMsg::AgentFull => {
                // Re-run every module and integrate.
                self.queries += 1;
                self.module_runs += self.modules.len() as u64;
                let ad = self.build_startd_ad();
                let reply = AdsReply::new(vec![ad]);
                let bytes = reply.bytes;
                Plan::new()
                    .cpu(QUERY_CPU_FIXED_US + self.all_modules_cpu())
                    .reply(reply, bytes)
            }
            other => {
                debug_assert!(false, "unexpected message {:?}", other.wire_size());
                Plan::reply_empty()
            }
        }
    }

    fn on_timer(&mut self, _tag: u64, cx: &mut SvcCx) {
        // Periodic collection + advertise.  The collection CPU is charged
        // through a self-addressed one-way message whose plan carries the
        // cost (timers themselves are free).
        if let Some(manager) = self.manager {
            self.module_runs += self.modules.len() as u64;
            self.ads_sent += 1;
            let ad = self.build_startd_ad();
            let msg = HawkeyeMsg::StartdAd {
                machine: self.machine.clone(),
                ad,
            };
            let bytes = msg.wire_size();
            cx.send_oneway(manager, msg, bytes);
        }
        cx.set_timer(ADVERTISE_PERIOD, 0);
    }

    fn name(&self) -> &str {
        "hawkeye-agent"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::default_modules;

    #[test]
    fn startd_ad_integrates_all_modules() {
        let a = Agent::new("lucky4", default_modules("lucky4", 11));
        let ad = a.build_startd_ad();
        // 4 base attrs + 4 per module.
        assert_eq!(ad.len(), 4 + 11 * 4);
        assert_eq!(ad.lookup_str("Machine").as_deref(), Some("lucky4"));
        assert!(ad.wire_size() > 1000);
    }

    #[test]
    fn ad_size_grows_with_modules() {
        let small = Agent::new("h", default_modules("h", 11)).build_startd_ad();
        let big = Agent::new("h", default_modules("h", 90)).build_startd_ad();
        assert!(big.wire_size() > small.wire_size() * 5);
    }

    #[test]
    fn full_query_cost_scales_with_modules() {
        let small = Agent::new("h", default_modules("h", 11));
        let big = Agent::new("h", default_modules("h", 90));
        assert!(big.all_modules_cpu() > small.all_modules_cpu() * 7.0);
    }
}
