//! # hawkeye — Condor's Hawkeye monitoring system (0.1.4)
//!
//! Hawkeye automates problem detection in a Condor pool.  Its four-level
//! architecture is modelled with [`simnet`] services over the
//! [`classad`] substrate:
//!
//! * **Modules** ([`module`]): sensors producing resource information as
//!   ClassAd attributes (a standard install runs eleven per host).
//! * **Agent** ([`agent`]): runs on every pool member, integrates its
//!   Modules' ClassAds into a single *Startd ClassAd* and sends it to the
//!   Manager at fixed 30-second intervals.  The Agent holds no indexed
//!   resident database: answering a query means re-collecting fresh
//!   module data — which is why the paper finds it much slower than the
//!   Manager under load.
//! * **Manager** ([`manager`]): the pool's head node.  It stores Startd
//!   ads in an indexed resident database, answers status queries, and
//!   performs ClassAd matchmaking of submitted *Trigger ClassAds*
//!   against incoming ads (firing a notification when one matches).
//! * **Advertiser fleet** ([`manager::AdvertiserFleet`]): the
//!   `hawkeye_advertise` load generator the paper used to simulate up to
//!   1000 pool members sending Startd ads every 30 seconds.

pub mod agent;
pub mod manager;
pub mod module;
pub mod proto;

pub use agent::Agent;
pub use manager::{AdvertiserFleet, Manager};
pub use module::{default_modules, ModuleSpec};
pub use proto::HawkeyeMsg;
