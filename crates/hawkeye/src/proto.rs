//! Wire messages of the Hawkeye model.

use classad::ClassAd;

/// Messages exchanged between clients, Agents and the Manager.
pub enum HawkeyeMsg {
    /// Query an Agent for one module's current data (light query; the
    /// Agent re-runs that module).
    AgentStatus,
    /// Query an Agent for its full integrated Startd ad (re-runs every
    /// module — the paper's Experiment Set 3 workload).
    AgentFull,
    /// One-way Startd ClassAd advertisement to the Manager.
    StartdAd { machine: String, ad: ClassAd },
    /// Query the Manager's resident database for one machine's ad
    /// (`None` = the pool summary) — the paper's directory-server
    /// workload.
    Status { machine: Option<String> },
    /// `condor_status -constraint`-style query: scan every ad in the pool
    /// against the expression (the paper's worst-case Experiment Set 4
    /// workload used a constraint no machine satisfies).
    Constraint { expr: String },
    /// Submit a Trigger ClassAd.
    AddTrigger { trigger: ClassAd },
    /// Trigger-fired notification (Manager -> administrator sink).
    TriggerFired { machine: String, trigger_idx: usize },
}

impl HawkeyeMsg {
    /// Approximate size on the wire.
    pub fn wire_size(&self) -> u64 {
        match self {
            HawkeyeMsg::AgentStatus => 160,
            HawkeyeMsg::AgentFull => 180,
            HawkeyeMsg::StartdAd { machine, ad } => 64 + machine.len() as u64 + ad.wire_size(),
            HawkeyeMsg::Status { .. } => 200,
            HawkeyeMsg::Constraint { expr } => 160 + expr.len() as u64,
            HawkeyeMsg::AddTrigger { trigger } => 64 + trigger.wire_size(),
            HawkeyeMsg::TriggerFired { machine, .. } => 96 + machine.len() as u64,
        }
    }
}

/// Reply carrying ads (status / query results).
pub struct AdsReply {
    pub ads: Vec<ClassAd>,
    pub bytes: u64,
}

impl AdsReply {
    pub fn new(ads: Vec<ClassAd>) -> AdsReply {
        let bytes = 64 + ads.iter().map(ClassAd::wire_size).sum::<u64>();
        AdsReply { ads, bytes }
    }
}
