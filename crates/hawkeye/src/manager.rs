//! The Hawkeye Manager and the `hawkeye_advertise` load generator.
//!
//! The Manager is the head node of the pool: it "collects and stores (in
//! an indexed resident database) monitoring information from each Agent
//! registered to it" and "is the central target for queries about the
//! status of any Pool member".  Status queries are answered from the
//! index (cheap — the paper credits this for the Manager's host load
//! being half the GIIS's); constraint queries scan every stored ad
//! through the ClassAd matchmaker (the paper's worst-case Experiment 4
//! workload used a constraint satisfied by no machine).  Incoming Startd
//! ads are matched against all submitted Trigger ClassAds; a match fires
//! a notification (the "kill Netscape" job of the paper's example).

use crate::proto::{AdsReply, HawkeyeMsg};
use classad::{matchmaker, parse_expr, ClassAd, CompiledExpr};
use simnet::{Payload, Plan, Service, SvcCx, SvcKey};
use std::collections::{BTreeMap, HashMap};

/// CPU cost of an indexed resident-database lookup.
pub const INDEXED_LOOKUP_CPU_US: f64 = 9_000.0;

/// CPU cost of evaluating one constraint/trigger against one ad.
pub const MATCH_CPU_PER_AD_US: f64 = 1_200.0;

/// CPU cost of ingesting one Startd ad (parse + index update).
pub const INGEST_CPU_US: f64 = 2_500.0;

struct Trigger {
    ad: ClassAd,
    /// The trigger's `Requirements`, compiled once at registration.
    req: Option<CompiledExpr>,
    notify: Option<SvcKey>,
    pub fired: u64,
}

/// The Manager service.
pub struct Manager {
    ads: BTreeMap<String, ClassAd>,
    /// Each stored ad's `Requirements` compiled at ingest, so the
    /// matchmaking side of trigger evaluation does not re-walk the AST
    /// per incoming ad.
    compiled_reqs: BTreeMap<String, Option<CompiledExpr>>,
    /// Constraint expressions compiled once per distinct source string
    /// (`None` caches a parse failure).  The Experiment-4 workload sends
    /// the same constraint thousands of times.
    constraint_cache: HashMap<String, Option<CompiledExpr>>,
    /// When each machine's ad last arrived.  The resident database never
    /// purges (Condor keeps the last ad of a silent machine), so freshness
    /// — not presence — is how a dead agent shows up.
    last_ad_at: BTreeMap<String, simcore::SimTime>,
    triggers: Vec<Trigger>,
    /// Counters.
    pub queries: u64,
    pub ads_received: u64,
    pub triggers_fired: u64,
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    pub fn new() -> Manager {
        Manager {
            ads: BTreeMap::new(),
            compiled_reqs: BTreeMap::new(),
            constraint_cache: HashMap::new(),
            last_ad_at: BTreeMap::new(),
            triggers: Vec::new(),
            queries: 0,
            ads_received: 0,
            triggers_fired: 0,
        }
    }

    pub fn pool_size(&self) -> usize {
        self.ads.len()
    }

    pub fn trigger_count(&self) -> usize {
        self.triggers.len()
    }

    pub fn ad_of(&self, machine: &str) -> Option<&ClassAd> {
        self.ads.get(machine)
    }

    /// Machines whose last ad is no older than `horizon` at `now`:
    /// the pool a matchmaking scan can trust.  Killed agents stop
    /// advertising, so this degrades linearly with the kill count while
    /// `pool_size` stays flat.
    pub fn fresh_count(&self, now: simcore::SimTime, horizon: simcore::SimDuration) -> usize {
        self.last_ad_at
            .values()
            .filter(|&&t| now.saturating_since(t) <= horizon)
            .count()
    }

    /// Mean age (seconds) of the stored ads at `now` (`None` if empty).
    pub fn mean_ad_age(&self, now: simcore::SimTime) -> Option<f64> {
        if self.last_ad_at.is_empty() {
            return None;
        }
        let sum: f64 = self
            .last_ad_at
            .values()
            .map(|&t| now.saturating_since(t).as_secs_f64())
            .sum();
        Some(sum / self.last_ad_at.len() as f64)
    }

    fn fire_matching_triggers(&mut self, machine: &str, plan: &mut Plan) {
        let Some(ad) = self.ads.get(machine) else {
            return;
        };
        let ad_req = self.compiled_reqs.get(machine).and_then(Option::as_ref);
        let mut sends = Vec::new();
        let mut fired = Vec::new();
        for (i, t) in self.triggers.iter().enumerate() {
            if matchmaker::symmetric_match_compiled(&t.ad, t.req.as_ref(), ad, ad_req) {
                fired.push(i);
                if let Some(sink) = t.notify {
                    sends.push((sink, machine.to_string(), i));
                }
            }
        }
        for i in fired {
            self.triggers[i].fired += 1;
            self.triggers_fired += 1;
        }
        let mut steps = std::mem::take(&mut plan.steps);
        for (sink, machine, idx) in sends {
            let msg = HawkeyeMsg::TriggerFired {
                machine,
                trigger_idx: idx,
            };
            let bytes = msg.wire_size();
            steps.push(simnet::Step::Send {
                to: sink,
                payload: Box::new(msg),
                bytes,
            });
        }
        plan.steps = steps;
    }
}

impl Service for Manager {
    fn handle(&mut self, req: Payload, cx: &mut SvcCx) -> Plan {
        let msg = req
            .downcast::<HawkeyeMsg>()
            .expect("Manager expects HawkeyeMsg");
        match *msg {
            HawkeyeMsg::StartdAd { machine, ad } => {
                self.ads_received += 1;
                self.compiled_reqs
                    .insert(machine.clone(), matchmaker::compile_requirements(&ad));
                self.ads.insert(machine.clone(), ad);
                self.last_ad_at.insert(machine.clone(), cx.now);
                // Each incoming ad is evaluated against every trigger.
                cx.obs
                    .incr("hawkeye.match_evals", self.triggers.len() as u64);
                let trigger_cost = MATCH_CPU_PER_AD_US * self.triggers.len() as f64;
                let mut plan = Plan::new().cpu(INGEST_CPU_US + trigger_cost);
                self.fire_matching_triggers(&machine, &mut plan);
                plan.done()
            }
            HawkeyeMsg::Status { machine } => {
                self.queries += 1;
                cx.obs.incr("hawkeye.queries", 1);
                let ads: Vec<ClassAd> = match machine {
                    Some(m) => self.ads.get(&m).cloned().into_iter().collect(),
                    None => {
                        // Pool summary: one compact line per machine; model
                        // as a small digest ad per machine.
                        self.ads.values().take(1).cloned().collect()
                    }
                };
                let reply = AdsReply::new(ads);
                let bytes = reply.bytes;
                Plan::new().cpu(INDEXED_LOOKUP_CPU_US).reply(reply, bytes)
            }
            HawkeyeMsg::Constraint { expr } => {
                self.queries += 1;
                cx.obs.incr("hawkeye.queries", 1);
                // A constraint scan runs the matchmaker over the whole pool.
                cx.obs.incr("hawkeye.match_evals", self.ads.len() as u64);
                let compiled = self
                    .constraint_cache
                    .entry(expr.clone())
                    .or_insert_with(|| parse_expr(&expr).ok().map(|e| CompiledExpr::compile(&e)));
                let matches: Vec<ClassAd> = match compiled {
                    Some(c) => self
                        .ads
                        .values()
                        .filter(|ad| matchmaker::matches_constraint_compiled(ad, c))
                        .cloned()
                        .collect(),
                    None => Vec::new(),
                };
                let scan_cost = MATCH_CPU_PER_AD_US * self.ads.len() as f64;
                let reply = AdsReply::new(matches);
                let bytes = reply.bytes;
                Plan::new()
                    .cpu(INDEXED_LOOKUP_CPU_US + scan_cost)
                    .reply(reply, bytes)
            }
            HawkeyeMsg::AddTrigger { trigger } => {
                self.triggers.push(Trigger {
                    req: matchmaker::compile_requirements(&trigger),
                    ad: trigger,
                    notify: None,
                    fired: 0,
                });
                Plan::new().cpu(INDEXED_LOOKUP_CPU_US).reply((), 64)
            }
            other => {
                debug_assert!(false, "unexpected message ({} bytes)", other.wire_size());
                Plan::reply_empty()
            }
        }
    }

    fn name(&self) -> &str {
        "hawkeye-manager"
    }
}

impl Manager {
    /// Register a trigger with a notification sink (deployment-time API;
    /// triggers can also arrive via [`HawkeyeMsg::AddTrigger`]).
    pub fn add_trigger(&mut self, trigger: ClassAd, notify: Option<SvcKey>) {
        self.triggers.push(Trigger {
            req: matchmaker::compile_requirements(&trigger),
            ad: trigger,
            notify,
            fired: 0,
        });
    }

    /// How often trigger `i` has fired.
    pub fn trigger_fired_count(&self, i: usize) -> u64 {
        self.triggers.get(i).map_or(0, |t| t.fired)
    }
}

/// The `hawkeye_advertise` fleet: simulates `n` pool members, each
/// sending a Startd ClassAd to the Manager every 30 seconds (staggered).
pub struct AdvertiserFleet {
    manager: SvcKey,
    ads: Vec<(String, ClassAd)>,
    pub sent: u64,
}

impl AdvertiserFleet {
    pub fn new(manager: SvcKey, n: usize, modules_per_machine: usize) -> AdvertiserFleet {
        let ads = (0..n)
            .map(|i| {
                let machine = format!("sim{i:04}");
                let agent = crate::agent::Agent::new(
                    machine.clone(),
                    crate::module::default_modules(&machine, modules_per_machine),
                );
                (machine, agent.build_startd_ad())
            })
            .collect();
        AdvertiserFleet {
            manager,
            ads,
            sent: 0,
        }
    }

    pub fn machines(&self) -> usize {
        self.ads.len()
    }
}

impl Service for AdvertiserFleet {
    fn handle(&mut self, _req: Payload, _cx: &mut SvcCx) -> Plan {
        Plan::reply_empty()
    }

    fn on_timer(&mut self, tag: u64, cx: &mut SvcCx) {
        let i = tag as usize;
        if let Some((machine, ad)) = self.ads.get(i) {
            let msg = HawkeyeMsg::StartdAd {
                machine: machine.clone(),
                ad: ad.clone(),
            };
            let bytes = msg.wire_size();
            cx.send_oneway(self.manager, msg, bytes);
            self.sent += 1;
        }
        cx.set_timer(crate::agent::ADVERTISE_PERIOD, tag);
    }

    fn name(&self) -> &str {
        "hawkeye-advertiser-fleet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, ADVERTISE_PERIOD};
    use crate::module::default_modules;
    use simcore::{Engine, SimDuration, SimTime};
    use simnet::{
        Client, ClientCx, Eng, Net, NodeId, ReqOutcome, ReqResult, RequestSpec, ServiceConfig,
        StatsHub, Topology,
    };

    struct AskManager {
        from: NodeId,
        to: SvcKey,
        at_s: u64,
        msg: Box<dyn Fn() -> HawkeyeMsg>,
        results: std::rc::Rc<std::cell::RefCell<Vec<usize>>>,
    }

    impl Client for AskManager {
        fn on_start(&mut self, cx: &mut ClientCx) {
            cx.wake_in(SimDuration::from_secs(self.at_s), 0);
        }
        fn on_wake(&mut self, _tag: u64, cx: &mut ClientCx) {
            let m = (self.msg)();
            let bytes = m.wire_size();
            cx.submit(
                RequestSpec {
                    from: self.from,
                    to: self.to,
                    payload: Box::new(m),
                    req_bytes: bytes,
                },
                0,
            );
        }
        fn on_outcome(&mut self, o: ReqOutcome, _cx: &mut ClientCx) {
            if let ReqResult::Ok(p, _) = o.result {
                if let Ok(r) = p.downcast::<AdsReply>() {
                    self.results.borrow_mut().push(r.ads.len());
                }
            }
        }
    }

    fn pool() -> (Net, Eng, NodeId, SvcKey, SvcKey) {
        let mut topo = Topology::new();
        let client = topo.add_node("client", 1, 1.0);
        let mgr_node = topo.add_node("lucky3", 2, 1.0);
        let agent_node = topo.add_node("lucky4", 2, 1.0);
        topo.connect(client, mgr_node, 100e6, SimDuration::from_millis(1));
        topo.connect(client, agent_node, 100e6, SimDuration::from_millis(1));
        topo.connect(mgr_node, agent_node, 100e6, SimDuration::from_micros(200));
        let mut net = Net::new(topo, StatsHub::new(SimTime::ZERO, SimTime::from_secs(600)));
        let mut eng: Eng = Engine::new(31);
        let mgr = net.add_service(
            mgr_node,
            ServiceConfig::default(),
            Box::new(Manager::new()),
            &mut eng,
        );
        let mut agent = Agent::new("lucky4", default_modules("lucky4", 11));
        agent.register_with(mgr);
        let ag = net.add_service(
            agent_node,
            ServiceConfig::default(),
            Box::new(agent),
            &mut eng,
        );
        net.prime_service_timer(&mut eng, ag, SimDuration::from_millis(100), 0);
        (net, eng, client, mgr, ag)
    }

    #[test]
    fn agent_advertises_every_30s_and_manager_stores() {
        let (mut net, mut eng, _c, mgr, ag) = pool();
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(100));
        let m = net.service_as::<Manager>(mgr).unwrap();
        assert_eq!(m.pool_size(), 1);
        assert!(m.ad_of("lucky4").is_some());
        // ~100s / 30s period = 4 ads (t≈0.1, 30.1, 60.1, 90.1).
        let a = net.service_as::<Agent>(ag).unwrap();
        assert_eq!(a.ads_sent, 4);
        assert_eq!(net.service_as::<Manager>(mgr).unwrap().ads_received, 4);
        let _ = ADVERTISE_PERIOD;
    }

    #[test]
    fn status_query_hits_index() {
        let (mut net, mut eng, client, mgr, _ag) = pool();
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(AskManager {
            from: client,
            to: mgr,
            at_s: 40,
            msg: Box::new(|| HawkeyeMsg::Status {
                machine: Some("lucky4".into()),
            }),
            results: results.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(60));
        assert_eq!(*results.borrow(), vec![1]);
    }

    #[test]
    fn constraint_scan_worst_case_matches_nothing() {
        let (mut net, mut eng, client, mgr, _ag) = pool();
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(AskManager {
            from: client,
            to: mgr,
            at_s: 40,
            msg: Box::new(|| HawkeyeMsg::Constraint {
                expr: "NoSuchAttr =?= 12345".into(),
            }),
            results: results.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(60));
        assert_eq!(*results.borrow(), vec![0]);
        assert_eq!(net.service_as::<Manager>(mgr).unwrap().queries, 1);
    }

    #[test]
    fn constraint_finds_matching_machines() {
        let (mut net, mut eng, client, mgr, _ag) = pool();
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(AskManager {
            from: client,
            to: mgr,
            at_s: 40,
            msg: Box::new(|| HawkeyeMsg::Constraint {
                expr: "ModuleCount == 11".into(),
            }),
            results: results.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(60));
        assert_eq!(*results.borrow(), vec![1]);
    }

    #[test]
    fn trigger_fires_on_matching_ad() {
        let (mut net, mut eng, _client, mgr, _ag) = pool();
        // Trigger: module count over threshold (always true for our agent).
        let trig = ClassAd::parse("Requirements = TARGET.ModuleCount >= 11\n").unwrap();
        net.service_as_mut::<Manager>(mgr)
            .unwrap()
            .add_trigger(trig, None);
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(100));
        let m = net.service_as::<Manager>(mgr).unwrap();
        // Fires once per received ad (4 ads).
        assert_eq!(m.triggers_fired, 4);
        assert_eq!(m.trigger_fired_count(0), 4);
    }

    #[test]
    fn advertiser_fleet_populates_pool() {
        let (mut net, mut eng, _client, mgr, _ag) = pool();
        let fleet_node = net.topo.find_node("lucky4").unwrap();
        let fleet = net.add_service(
            fleet_node,
            ServiceConfig::default(),
            Box::new(AdvertiserFleet::new(mgr, 50, 11)),
            &mut eng,
        );
        // Stagger the 50 machines over the 30s period.
        for i in 0..50u64 {
            net.prime_service_timer(&mut eng, fleet, SimDuration::from_millis(i * 600), i);
        }
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(120));
        let m = net.service_as::<Manager>(mgr).unwrap();
        assert_eq!(m.pool_size(), 51); // 50 simulated + 1 real agent
        let f = net.service_as::<AdvertiserFleet>(fleet).unwrap();
        assert!(f.sent >= 150, "sent {}", f.sent);
    }

    #[test]
    fn agent_full_query_returns_integrated_ad() {
        let (mut net, mut eng, client, _mgr, ag) = pool();
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        net.add_client(Box::new(AskManager {
            from: client,
            to: ag,
            at_s: 5,
            msg: Box::new(|| HawkeyeMsg::AgentFull),
            results: results.clone(),
        }));
        net.start(&mut eng);
        eng.run_until(&mut net, SimTime::from_secs(30));
        assert_eq!(*results.borrow(), vec![1]);
        let a = net.service_as::<Agent>(ag).unwrap();
        assert_eq!(a.queries, 1);
        assert!(a.module_runs >= 11);
    }
}
