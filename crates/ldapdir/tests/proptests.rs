//! Property-based tests for the LDAP directory substrate.

use ldapdir::{Dit, Dn, Entry, Filter, Scope};
use proptest::prelude::*;

fn arb_dn_component() -> impl Strategy<Value = (String, String)> {
    ("[a-z][a-z0-9-]{0,6}", "[a-z0-9][a-z0-9.]{0,8}").prop_map(|(a, v)| (a, v))
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        ("[a-z][a-z0-9-]{0,5}", "[a-z0-9]{1,6}").prop_map(|(a, v)| Filter::Eq(a, v)),
        "[a-z][a-z0-9-]{0,5}".prop_map(Filter::Present),
        ("[a-z][a-z0-9-]{0,5}", "[0-9]{1,3}").prop_map(|(a, v)| Filter::Ge(a, v)),
        ("[a-z][a-z0-9-]{0,5}", "[0-9]{1,3}").prop_map(|(a, v)| Filter::Le(a, v)),
        // At least one anchor must be non-empty or the printed form
        // `(a=*)` would be a presence filter.
        ("[a-z][a-z0-9-]{0,5}", "[a-z]{1,3}", "[a-z]{0,3}").prop_map(|(a, i, f)| {
            Filter::Substring {
                attr: a,
                initial: i,
                mids: vec![],
                final_: f,
            }
        }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Filter::And),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Filter::Or),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

proptest! {
    /// Filter printing/parsing round-trips.
    #[test]
    fn filter_round_trip(f in arb_filter()) {
        let printed = f.to_string();
        let reparsed = Filter::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
        prop_assert_eq!(f, reparsed);
    }

    /// DN parse/display round-trips and the parent chain terminates at
    /// root with length == depth.
    #[test]
    fn dn_round_trip_and_parent_chain(comps in proptest::collection::vec(arb_dn_component(), 1..6)) {
        let src: Vec<String> = comps.iter().map(|(a, v)| format!("{a}={v}")).collect();
        let dn = Dn::parse(&src.join(", ")).unwrap();
        prop_assert_eq!(dn.depth(), comps.len());
        let reparsed = Dn::parse(&dn.to_string()).unwrap();
        prop_assert_eq!(&reparsed, &dn);
        // Walk parents to root.
        let mut steps = 0;
        let mut cur = dn.clone();
        while let Some(p) = cur.parent() {
            prop_assert!(cur.is_under(&p));
            prop_assert!(cur.is_child_of(&p));
            cur = p;
            steps += 1;
        }
        prop_assert_eq!(steps, comps.len());
    }

    /// DIT invariant: after arbitrary adds, every entry's parent exists,
    /// and Sub search from the suffix finds exactly the live entries.
    #[test]
    fn dit_structure_invariants(values in proptest::collection::vec("[a-z0-9]{1,6}", 1..20)) {
        let suffix = Dn::parse("o=grid").unwrap();
        let mut dit = Dit::new(suffix.clone());
        for (i, v) in values.iter().enumerate() {
            // Mix of depth-1 and depth-2 entries.
            let dn = if i % 3 == 0 {
                suffix.child("vo", v)
            } else {
                suffix.child("vo", v).child("host", &format!("h{i}"))
            };
            let mut e = Entry::new(dn);
            e.add("objectclass", "thing");
            let _ = dit.upsert(e);
        }
        // Every entry's parent is present.
        for e in dit.iter() {
            if let Some(p) = e.dn.parent() {
                if e.dn != suffix {
                    prop_assert!(dit.get(&p).is_some(), "parent of {} missing", e.dn);
                }
            }
        }
        // Sub search with the match-all presence filter finds every entry
        // that has an objectclass.
        let with_oc = dit.iter().filter(|e| e.has_attr("objectclass")).count();
        let hits = dit.search(&suffix, Scope::Sub, &Filter::any()).len();
        prop_assert_eq!(hits, with_oc);
    }

    /// Scope algebra: Base ⊆ Sub, One ⊆ Sub, and |Sub| >= |Base| + |One|
    /// when the base entry exists.
    #[test]
    fn scope_containment(values in proptest::collection::vec("[a-z0-9]{1,4}", 1..12)) {
        let suffix = Dn::parse("o=grid").unwrap();
        let mut dit = Dit::new(suffix.clone());
        for (i, v) in values.iter().enumerate() {
            let dn = suffix.child("a", v).child("b", &i.to_string());
            let mut e = Entry::new(dn);
            e.add("objectclass", "x");
            let _ = dit.upsert(e);
        }
        let any = Filter::any();
        let base = dit.search(&suffix, Scope::Base, &any).len();
        let one = dit.search(&suffix, Scope::One, &any).len();
        let sub = dit.search(&suffix, Scope::Sub, &any).len();
        prop_assert!(sub >= base + one);
    }
}
