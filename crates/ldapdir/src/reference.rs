//! Pre-interning `Dn` / `Entry` implementations, kept verbatim as
//! differential oracles for the symbol-based fast paths (see the
//! `gridmon-diff` intern/entry property suites).  Compiled only with
//! the `reference-kernel` feature; never used by the simulation.

use std::collections::BTreeMap;
use std::fmt;

/// The original owned-`String` RDN.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RefRdn {
    pub attr: String,
    pub value: String,
}

impl fmt::Display for RefRdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.attr, self.value)
    }
}

/// The original `Vec<RefRdn>` distinguished name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RefDn {
    rdns: Vec<RefRdn>,
}

impl RefDn {
    pub fn root() -> RefDn {
        RefDn { rdns: Vec::new() }
    }

    pub fn parse(s: &str) -> Result<RefDn, String> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(RefDn::root());
        }
        let mut rdns = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            let Some(eq) = part.find('=') else {
                return Err(format!("RDN {part:?} lacks '='"));
            };
            let attr = part[..eq].trim();
            let value = part[eq + 1..].trim();
            if attr.is_empty() || value.is_empty() {
                return Err(format!("empty attribute or value in {part:?}"));
            }
            rdns.push(RefRdn {
                attr: attr.to_ascii_lowercase(),
                value: value.to_ascii_lowercase(),
            });
        }
        Ok(RefDn { rdns })
    }

    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    pub fn parent(&self) -> Option<RefDn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(RefDn {
                rdns: self.rdns[1..].to_vec(),
            })
        }
    }

    pub fn child(&self, attr: &str, value: &str) -> RefDn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push(RefRdn {
            attr: attr.to_ascii_lowercase(),
            value: value.to_ascii_lowercase(),
        });
        rdns.extend(self.rdns.iter().cloned());
        RefDn { rdns }
    }

    pub fn is_under(&self, ancestor: &RefDn) -> bool {
        let n = ancestor.rdns.len();
        if self.rdns.len() < n {
            return false;
        }
        self.rdns[self.rdns.len() - n..] == ancestor.rdns[..]
    }

    pub fn display_len(&self) -> usize {
        let seps = 2 * self.rdns.len().saturating_sub(1);
        self.rdns
            .iter()
            .map(|r| r.attr.len() + 1 + r.value.len())
            .sum::<usize>()
            + seps
    }

    pub fn rebase(&self, old_suffix: &RefDn, new_suffix: &RefDn) -> Option<RefDn> {
        if !self.is_under(old_suffix) {
            return None;
        }
        let keep = self.rdns.len() - old_suffix.rdns.len();
        let mut rdns = self.rdns[..keep].to_vec();
        rdns.extend(new_suffix.rdns.iter().cloned());
        Some(RefDn { rdns })
    }
}

impl fmt::Display for RefDn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rdn) in self.rdns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{rdn}")?;
        }
        Ok(())
    }
}

fn lower(attr: &str) -> String {
    attr.to_ascii_lowercase()
}

/// The original deep-cloning, `String`-keyed entry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RefEntry {
    pub dn: String,
    pub dn_display_len: usize,
    attrs: BTreeMap<String, Vec<String>>,
}

impl RefEntry {
    pub fn new(dn: &RefDn) -> Self {
        RefEntry {
            dn: dn.to_string(),
            dn_display_len: dn.display_len(),
            attrs: BTreeMap::new(),
        }
    }

    pub fn add(&mut self, attr: &str, value: impl Into<String>) -> &mut Self {
        let key = lower(attr);
        match self.attrs.get_mut(&key) {
            Some(vs) => vs.push(value.into()),
            None => {
                self.attrs.insert(key, vec![value.into()]);
            }
        }
        self
    }

    pub fn put(&mut self, attr: &str, value: impl Into<String>) -> &mut Self {
        let key = lower(attr);
        match self.attrs.get_mut(&key) {
            Some(vs) => {
                vs.clear();
                vs.push(value.into());
            }
            None => {
                self.attrs.insert(key, vec![value.into()]);
            }
        }
        self
    }

    pub fn remove(&mut self, attr: &str) -> bool {
        self.attrs.remove(&lower(attr)).is_some()
    }

    pub fn get(&self, attr: &str) -> &[String] {
        self.attrs.get(&lower(attr)).map_or(&[], Vec::as_slice)
    }

    pub fn has_attr(&self, attr: &str) -> bool {
        self.attrs.contains_key(&lower(attr))
    }

    pub fn has_value(&self, attr: &str, value: &str) -> bool {
        self.get(attr).iter().any(|v| v.eq_ignore_ascii_case(value))
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    pub fn wire_size(&self) -> u64 {
        let mut n = self.dn_display_len + 5;
        for (a, vs) in self.iter() {
            for v in vs {
                n += a.len() + v.len() + 3;
            }
        }
        n as u64
    }

    pub fn projected_wire_size(&self, attrs: &[String]) -> u64 {
        let mut n = self.dn_display_len + 5;
        for a in attrs {
            for v in self.get(a) {
                n += a.len() + v.len() + 3;
            }
        }
        n as u64
    }

    pub fn project(&self, attrs: &[String]) -> RefEntry {
        let mut e = RefEntry {
            dn: self.dn.clone(),
            dn_display_len: self.dn_display_len,
            attrs: BTreeMap::new(),
        };
        for a in attrs {
            for v in self.get(a) {
                e.add(a, v.clone());
            }
        }
        e
    }
}
