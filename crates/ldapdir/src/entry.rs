//! Directory entries: DN plus multi-valued attributes.
//!
//! Attribute names are interned [`Sym`]s and the attribute map lives
//! behind an `Rc`, so `Entry::clone` — which result assembly runs once
//! per hit per query — allocates nothing: search results, caches and
//! merge buffers all share one attribute map per stored entry.
//! Mutators go through `Rc::make_mut`, i.e. copy-on-write: editing an
//! entry that shares its attributes with a cached search result splits
//! the storage instead of corrupting the snapshot.
//!
//! `Sym` keys order by their resolved strings, so iteration and
//! rendering stay byte-identical to the `BTreeMap<String, _>` layout
//! they replaced.

use crate::dn::Dn;
use gintern::Sym;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Lowercase an attribute name only when it needs it.  Filter-derived and
/// merge-path names are already lowercase, so the common lookup does not
/// allocate.
fn lower(attr: &str) -> Cow<'_, str> {
    if attr.bytes().any(|b| b.is_ascii_uppercase()) {
        Cow::Owned(attr.to_ascii_lowercase())
    } else {
        Cow::Borrowed(attr)
    }
}

/// An LDAP entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub dn: Dn,
    /// Lowercased attribute type -> values (insertion order preserved).
    /// Shared between clones; mutated copy-on-write.
    attrs: Rc<BTreeMap<Sym, Vec<String>>>,
}

impl Entry {
    pub fn new(dn: Dn) -> Self {
        Entry {
            dn,
            attrs: Rc::new(BTreeMap::new()),
        }
    }

    /// Add a value to an attribute (duplicates allowed, as in slapd with
    /// permissive schema checking).
    pub fn add(&mut self, attr: &str, value: impl Into<String>) -> &mut Self {
        let key = gintern::intern(lower(attr).as_ref());
        let attrs = Rc::make_mut(&mut self.attrs);
        attrs.entry(key).or_default().push(value.into());
        self
    }

    /// Replace all values of an attribute.
    pub fn put(&mut self, attr: &str, value: impl Into<String>) -> &mut Self {
        let key = gintern::intern(lower(attr).as_ref());
        let attrs = Rc::make_mut(&mut self.attrs);
        let vs = attrs.entry(key).or_default();
        vs.clear();
        vs.push(value.into());
        self
    }

    /// Remove an attribute entirely.
    pub fn remove(&mut self, attr: &str) -> bool {
        // Lookup first: don't split shared storage to remove nothing.
        if !self.has_attr(attr) {
            return false;
        }
        Rc::make_mut(&mut self.attrs)
            .remove(lower(attr).as_ref() as &str)
            .is_some()
    }

    /// All values of an attribute.
    pub fn get(&self, attr: &str) -> &[String] {
        // Sym orders like its string, so the map is searchable by &str
        // without interning the probe.
        self.attrs
            .get(lower(attr).as_ref() as &str)
            .map_or(&[], Vec::as_slice)
    }

    /// First value of an attribute.
    pub fn first(&self, attr: &str) -> Option<&str> {
        self.get(attr).first().map(String::as_str)
    }

    pub fn has_attr(&self, attr: &str) -> bool {
        self.attrs.contains_key(lower(attr).as_ref() as &str)
    }

    /// Does any value of `attr` equal `value` case-insensitively?
    pub fn has_value(&self, attr: &str, value: &str) -> bool {
        self.get(attr).iter().any(|v| v.eq_ignore_ascii_case(value))
    }

    /// Iterate `(attr, values)` in sorted attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of attribute types.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Do `self` and `other` share one attribute map (clone that has
    /// not been split by a copy-on-write mutation)?
    pub fn shares_attrs_with(&self, other: &Entry) -> bool {
        Rc::ptr_eq(&self.attrs, &other.attrs)
    }

    /// Approximate serialized size in bytes (LDIF length), used for the
    /// simulated wire cost of returning this entry.
    pub fn wire_size(&self) -> u64 {
        let mut n = self.dn.display_len() + 5;
        for (a, vs) in self.iter() {
            for v in vs {
                n += a.len() + v.len() + 3;
            }
        }
        n as u64
    }

    /// `self.project(attrs).wire_size()` computed without materializing
    /// the projection — byte-for-byte the same accounting (lowercasing a
    /// selected name preserves its length, and duplicate selections
    /// double-count in both forms).  Accepts any string-ish slice
    /// (`&[&str]`, `&[String]`, `&[Sym]`, ...).
    pub fn projected_wire_size<S: AsRef<str>>(&self, attrs: &[S]) -> u64 {
        let mut n = self.dn.display_len() + 5;
        for a in attrs {
            let a = a.as_ref();
            for v in self.get(a) {
                n += a.len() + v.len() + 3;
            }
        }
        n as u64
    }

    /// Objectclass convenience.
    pub fn is_objectclass(&self, oc: &str) -> bool {
        self.has_value("objectclass", oc)
    }

    /// LDAP attribute selection: a copy of this entry keeping only the
    /// requested attribute types (requested names are matched
    /// case-insensitively; unknown names are simply absent).  Accepts
    /// any string-ish slice (`&[&str]`, `&[String]`, ...).
    pub fn project<S: AsRef<str>>(&self, attrs: &[S]) -> Entry {
        let mut e = Entry::new(self.dn.clone());
        for a in attrs {
            let a = a.as_ref();
            for v in self.get(a) {
                e.add(a, v.clone());
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Entry {
        let mut e = Entry::new(Dn::parse("mds-host-hn=lucky7, o=grid").unwrap());
        e.add("objectclass", "MdsHost")
            .add("objectclass", "MdsComputer")
            .add("Mds-Cpu-Total-count", "2");
        e
    }

    #[test]
    fn add_and_get_case_insensitive() {
        let e = entry();
        assert_eq!(e.get("OBJECTCLASS").len(), 2);
        assert_eq!(e.first("mds-cpu-total-count"), Some("2"));
        assert!(e.has_attr("ObjectClass"));
        assert!(!e.has_attr("missing"));
        assert!(e.get("missing").is_empty());
    }

    #[test]
    fn has_value_ignores_case() {
        let e = entry();
        assert!(e.has_value("objectclass", "mdshost"));
        assert!(e.is_objectclass("MDSHOST"));
        assert!(!e.is_objectclass("MdsVo"));
    }

    #[test]
    fn put_replaces() {
        let mut e = entry();
        e.put("Mds-Cpu-Total-count", "4");
        assert_eq!(e.get("mds-cpu-total-count"), &["4".to_string()]);
        assert!(e.remove("objectclass"));
        assert!(!e.remove("objectclass"));
        assert_eq!(e.attr_count(), 1);
    }

    #[test]
    fn projection_keeps_requested_attrs() {
        let e = entry();
        let p = e.project(&["OBJECTCLASS".to_string(), "missing".to_string()]);
        assert_eq!(p.dn, e.dn);
        assert_eq!(p.attr_count(), 1);
        assert_eq!(p.get("objectclass").len(), 2);
        assert!(p.wire_size() < e.wire_size());
    }

    #[test]
    fn projection_accepts_borrowed_slices() {
        // The satellite case: callers with `&[&str]` (or any
        // AsRef<str> slice) must not have to allocate owned vectors.
        let e = entry();
        let p = e.project(&["OBJECTCLASS", "missing"]);
        assert_eq!(p.attr_count(), 1);
        assert_eq!(p.get("objectclass").len(), 2);
        assert_eq!(
            e.projected_wire_size(&["OBJECTCLASS", "missing"]),
            p.wire_size()
        );
        // ... and the owned form still agrees with the borrowed one.
        let owned = vec!["OBJECTCLASS".to_string(), "missing".to_string()];
        assert_eq!(e.project(&owned), p);
        assert_eq!(e.projected_wire_size(&owned), p.wire_size());
    }

    #[test]
    fn projected_wire_size_matches_materialized_projection() {
        let e = entry();
        for sel in [
            vec!["OBJECTCLASS".to_string()],
            vec!["objectclass".to_string(), "mds-cpu-total-count".to_string()],
            vec!["objectclass".to_string(), "OBJECTCLASS".to_string()],
            vec!["missing".to_string()],
            vec![],
        ] {
            assert_eq!(
                e.projected_wire_size(&sel),
                e.project(&sel).wire_size(),
                "{sel:?}"
            );
        }
    }

    #[test]
    fn wire_size_reflects_content() {
        let small = entry();
        let mut big = entry();
        for i in 0..50 {
            big.add("Mds-Memory-Ram-freeMB", format!("{}", 100 + i));
        }
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn clones_share_until_mutated() {
        let e = entry();
        let mut copy = e.clone();
        assert!(copy.shares_attrs_with(&e));
        // Copy-on-write: mutating the clone splits the storage and
        // leaves the original untouched.
        copy.put("Mds-Cpu-Total-count", "8");
        assert!(!copy.shares_attrs_with(&e));
        assert_eq!(e.first("mds-cpu-total-count"), Some("2"));
        assert_eq!(copy.first("mds-cpu-total-count"), Some("8"));
        // Removing an absent attr does not split sharing.
        let mut copy2 = e.clone();
        assert!(!copy2.remove("missing"));
        assert!(copy2.shares_attrs_with(&e));
    }
}
