//! RFC 4515 search filters.
//!
//! Supported forms: `(&(f)(g)...)`, `(|(f)(g)...)`, `(!(f))`, equality
//! `(a=v)`, presence `(a=*)`, substring `(a=*mid*fix)`, ordering
//! `(a>=v)` / `(a<=v)`.  Value matching is case-insensitive; ordering
//! compares numerically when both sides parse as numbers, else
//! lexicographically (matching how MDS numeric attributes behave under
//! OpenLDAP's integer syntaxes).

use crate::entry::Entry;
use std::fmt;

/// Filter parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError(pub String);

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid filter: {}", self.0)
    }
}

impl std::error::Error for FilterError {}

/// A parsed search filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    And(Vec<Filter>),
    Or(Vec<Filter>),
    Not(Box<Filter>),
    /// `(attr=value)`
    Eq(String, String),
    /// `(attr=*)`
    Present(String),
    /// `(attr=initial*mid1*mid2*final)`; empty strings mean "no anchor".
    Substring {
        attr: String,
        initial: String,
        mids: Vec<String>,
        final_: String,
    },
    /// `(attr>=value)`
    Ge(String, String),
    /// `(attr<=value)`
    Le(String, String),
}

impl Filter {
    /// Parse an RFC 4515 filter string.
    pub fn parse(s: &str) -> Result<Filter, FilterError> {
        let s = s.trim();
        let (f, rest) = parse_filter(s)?;
        if !rest.trim_start().is_empty() {
            return Err(FilterError(format!("trailing input: {rest:?}")));
        }
        Ok(f)
    }

    /// The objectclass=* match-everything filter.
    pub fn any() -> Filter {
        Filter::Present("objectclass".into())
    }

    /// Does `entry` satisfy this filter?
    pub fn matches(&self, entry: &Entry) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(entry)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(entry)),
            Filter::Not(f) => !f.matches(entry),
            Filter::Eq(a, v) => entry.has_value(a, v),
            Filter::Present(a) => entry.has_attr(a),
            Filter::Substring {
                attr,
                initial,
                mids,
                final_,
            } => entry
                .get(attr)
                .iter()
                .any(|v| substring_match(&v.to_ascii_lowercase(), initial, mids, final_)),
            Filter::Ge(a, v) => entry.get(a).iter().any(|x| order_cmp(x, v) >= 0),
            Filter::Le(a, v) => entry.get(a).iter().any(|x| order_cmp(x, v) <= 0),
        }
    }

    /// Rough complexity of evaluating this filter against one entry
    /// (number of primitive comparisons), used for the simulated CPU cost
    /// of a search.
    pub fn cost(&self) -> u32 {
        match self {
            Filter::And(fs) | Filter::Or(fs) => 1 + fs.iter().map(Filter::cost).sum::<u32>(),
            Filter::Not(f) => 1 + f.cost(),
            _ => 1,
        }
    }

    /// Length of the RFC 4515 rendering, computed without building the
    /// string (wire-size accounting runs on every simulated request).
    pub fn display_len(&self) -> usize {
        struct Counter(usize);
        impl fmt::Write for Counter {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                self.0 += s.len();
                Ok(())
            }
        }
        let mut c = Counter(0);
        let _ = fmt::Write::write_fmt(&mut c, format_args!("{self}"));
        c.0
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::And(fs) => {
                write!(f, "(&")?;
                for x in fs {
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Filter::Or(fs) => {
                write!(f, "(|")?;
                for x in fs {
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Filter::Not(x) => write!(f, "(!{x})"),
            Filter::Eq(a, v) => write!(f, "({a}={v})"),
            Filter::Present(a) => write!(f, "({a}=*)"),
            Filter::Substring {
                attr,
                initial,
                mids,
                final_,
            } => {
                write!(f, "({attr}={initial}*")?;
                for m in mids {
                    write!(f, "{m}*")?;
                }
                write!(f, "{final_})")
            }
            Filter::Ge(a, v) => write!(f, "({a}>={v})"),
            Filter::Le(a, v) => write!(f, "({a}<={v})"),
        }
    }
}

fn substring_match(v: &str, initial: &str, mids: &[String], final_: &str) -> bool {
    let mut rest = v;
    if !initial.is_empty() {
        let Some(r) = rest.strip_prefix(initial) else {
            return false;
        };
        rest = r;
    }
    for m in mids {
        match rest.find(m.as_str()) {
            Some(pos) => rest = &rest[pos + m.len()..],
            None => return false,
        }
    }
    if !final_.is_empty() {
        return rest.ends_with(final_);
    }
    true
}

/// Ordering comparison: numeric when both parse, else case-insensitive
/// lexicographic.  Returns -1/0/1.
fn order_cmp(a: &str, b: &str) -> i32 {
    if let (Ok(x), Ok(y)) = (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        return if x < y {
            -1
        } else if x > y {
            1
        } else {
            0
        };
    }
    let (a, b) = (a.to_ascii_lowercase(), b.to_ascii_lowercase());
    match a.cmp(&b) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

/// Parse one filter at the start of `s`; return it and the rest.
fn parse_filter(s: &str) -> Result<(Filter, &str), FilterError> {
    let s = s.trim_start();
    let Some(inner) = s.strip_prefix('(') else {
        return Err(FilterError(format!("expected '(' at {s:?}")));
    };
    let inner = inner.trim_start();
    if let Some(rest) = inner.strip_prefix('&') {
        let (fs, rest) = parse_set(rest)?;
        return Ok((Filter::And(fs), rest));
    }
    if let Some(rest) = inner.strip_prefix('|') {
        let (fs, rest) = parse_set(rest)?;
        return Ok((Filter::Or(fs), rest));
    }
    if let Some(rest) = inner.strip_prefix('!') {
        let (f, rest) = parse_filter(rest)?;
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix(')') else {
            return Err(FilterError("expected ')' after (!...)".into()));
        };
        return Ok((Filter::Not(Box::new(f)), rest));
    }
    // Simple item: attr OP value ')'
    let close = inner
        .find(')')
        .ok_or_else(|| FilterError("missing ')'".into()))?;
    let body = &inner[..close];
    let rest = &inner[close + 1..];
    let item = parse_item(body)?;
    Ok((item, rest))
}

fn parse_set(mut s: &str) -> Result<(Vec<Filter>, &str), FilterError> {
    let mut out = Vec::new();
    loop {
        s = s.trim_start();
        if let Some(rest) = s.strip_prefix(')') {
            if out.is_empty() {
                return Err(FilterError("empty AND/OR set".into()));
            }
            return Ok((out, rest));
        }
        if s.is_empty() {
            return Err(FilterError("unterminated AND/OR set".into()));
        }
        let (f, rest) = parse_filter(s)?;
        out.push(f);
        s = rest;
    }
}

fn parse_item(body: &str) -> Result<Filter, FilterError> {
    // Find the operator: >=, <=, or =.
    if let Some(pos) = body.find(">=") {
        let (a, v) = (body[..pos].trim(), body[pos + 2..].trim());
        check_attr(a)?;
        return Ok(Filter::Ge(a.to_ascii_lowercase(), v.to_ascii_lowercase()));
    }
    if let Some(pos) = body.find("<=") {
        let (a, v) = (body[..pos].trim(), body[pos + 2..].trim());
        check_attr(a)?;
        return Ok(Filter::Le(a.to_ascii_lowercase(), v.to_ascii_lowercase()));
    }
    let Some(pos) = body.find('=') else {
        return Err(FilterError(format!("no operator in item {body:?}")));
    };
    let (a, v) = (body[..pos].trim(), body[pos + 1..].trim());
    check_attr(a)?;
    let attr = a.to_ascii_lowercase();
    let value = v.to_ascii_lowercase();
    if value == "*" {
        return Ok(Filter::Present(attr));
    }
    if value.contains('*') {
        let parts: Vec<&str> = value.split('*').collect();
        let initial = parts[0].to_string();
        let final_ = parts[parts.len() - 1].to_string();
        let mids = parts[1..parts.len() - 1]
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| p.to_string())
            .collect();
        return Ok(Filter::Substring {
            attr,
            initial,
            mids,
            final_,
        });
    }
    if value.is_empty() {
        return Err(FilterError(format!("empty value in item {body:?}")));
    }
    Ok(Filter::Eq(attr, value))
}

fn check_attr(a: &str) -> Result<(), FilterError> {
    if a.is_empty()
        || !a
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
    {
        return Err(FilterError(format!("bad attribute name {a:?}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Dn;

    fn host_entry() -> Entry {
        let mut e = Entry::new(Dn::parse("mds-host-hn=lucky7, o=grid").unwrap());
        e.add("objectclass", "MdsHost")
            .add("Mds-Host-hn", "lucky7.mcs.anl.gov")
            .add("Mds-Cpu-Total-count", "2")
            .add("Mds-Memory-Ram-sizeMB", "512");
        e
    }

    #[test]
    fn equality_and_presence() {
        let e = host_entry();
        assert!(Filter::parse("(objectclass=mdshost)").unwrap().matches(&e));
        assert!(Filter::parse("(objectclass=MDSHOST)").unwrap().matches(&e));
        assert!(!Filter::parse("(objectclass=mdsvo)").unwrap().matches(&e));
        assert!(Filter::parse("(mds-cpu-total-count=*)")
            .unwrap()
            .matches(&e));
        assert!(!Filter::parse("(missing=*)").unwrap().matches(&e));
    }

    #[test]
    fn boolean_combinators() {
        let e = host_entry();
        let f = Filter::parse("(&(objectclass=mdshost)(mds-cpu-total-count>=2))").unwrap();
        assert!(f.matches(&e));
        let f = Filter::parse("(&(objectclass=mdshost)(mds-cpu-total-count>=4))").unwrap();
        assert!(!f.matches(&e));
        let f = Filter::parse("(|(objectclass=mdsvo)(objectclass=mdshost))").unwrap();
        assert!(f.matches(&e));
        let f = Filter::parse("(!(objectclass=mdsvo))").unwrap();
        assert!(f.matches(&e));
        let f = Filter::parse("(!(objectclass=mdshost))").unwrap();
        assert!(!f.matches(&e));
    }

    #[test]
    fn ordering_numeric_vs_lexicographic() {
        let e = host_entry();
        // 512 >= 90 numerically (lexicographically "512" < "90").
        assert!(Filter::parse("(mds-memory-ram-sizemb>=90)")
            .unwrap()
            .matches(&e));
        assert!(Filter::parse("(mds-memory-ram-sizemb<=1000)")
            .unwrap()
            .matches(&e));
        // String ordering on the hostname attr.
        assert!(Filter::parse("(mds-host-hn>=lucky)").unwrap().matches(&e));
    }

    #[test]
    fn substring_forms() {
        let e = host_entry();
        assert!(Filter::parse("(mds-host-hn=lucky*)").unwrap().matches(&e));
        assert!(Filter::parse("(mds-host-hn=*anl.gov)").unwrap().matches(&e));
        assert!(Filter::parse("(mds-host-hn=*mcs*)").unwrap().matches(&e));
        assert!(Filter::parse("(mds-host-hn=lucky*anl*)")
            .unwrap()
            .matches(&e));
        assert!(!Filter::parse("(mds-host-hn=lucky*xyz*)")
            .unwrap()
            .matches(&e));
        assert!(!Filter::parse("(mds-host-hn=ucky*)").unwrap().matches(&e));
    }

    #[test]
    fn nested_combination() {
        let e = host_entry();
        let f = Filter::parse(
            "(&(|(objectclass=mdshost)(objectclass=mdsvo))(!(mds-cpu-total-count<=1)))",
        )
        .unwrap();
        assert!(f.matches(&e));
        assert!(f.cost() >= 5);
    }

    #[test]
    fn display_round_trip() {
        for src in [
            "(objectclass=mdshost)",
            "(a=*)",
            "(&(a=1)(b>=2)(c<=3))",
            "(|(a=x*y)(!(b=z)))",
            "(host=lucky*mcs*gov)",
        ] {
            let f = Filter::parse(src).unwrap();
            let printed = f.to_string();
            assert_eq!(Filter::parse(&printed).unwrap(), f, "src {src}");
        }
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "objectclass=x",
            "(a)",
            "(=v)",
            "(a=)",
            "(&)",
            "(&(a=1)",
            "(!(a=1)(b=2))",
            "(a=1) junk",
            "(bad name=1)",
        ] {
            assert!(Filter::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn any_matches_everything_with_objectclass() {
        let e = host_entry();
        assert!(Filter::any().matches(&e));
        let bare = Entry::new(Dn::parse("x=1").unwrap());
        assert!(!Filter::any().matches(&bare));
    }

    #[test]
    fn display_len_matches_rendering() {
        for src in [
            "(objectclass=*)",
            "(&(objectclass=host)(cpuload>=2))",
            "(|(a=1)(!(b=2))(c=x*y*z))",
            "(cn=lucky*)",
        ] {
            let f = Filter::parse(src).unwrap();
            assert_eq!(f.display_len(), f.to_string().len(), "{src}");
        }
    }
}
