//! The directory information tree.
//!
//! A [`Dit`] stores entries under a suffix DN and supports the three LDAP
//! search scopes.  Parents must exist before children (as in slapd); the
//! suffix entry itself is created automatically as an organizational
//! placeholder.

use crate::dn::Dn;
use crate::entry::Entry;
use crate::filter::Filter;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Search scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The base entry only.
    Base,
    /// Immediate children of the base.
    One,
    /// The base and its whole subtree.
    Sub,
}

/// DIT operation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DitError {
    NotUnderSuffix(Dn),
    NoParent(Dn),
    Duplicate(Dn),
    NoSuchEntry(Dn),
}

impl fmt::Display for DitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DitError::NotUnderSuffix(dn) => write!(f, "{dn} is not under the suffix"),
            DitError::NoParent(dn) => write!(f, "parent of {dn} does not exist"),
            DitError::Duplicate(dn) => write!(f, "{dn} already exists"),
            DitError::NoSuchEntry(dn) => write!(f, "{dn} does not exist"),
        }
    }
}

impl std::error::Error for DitError {}

/// An in-memory directory tree.
#[derive(Debug, Clone)]
pub struct Dit {
    suffix: Dn,
    /// DN -> entry. BTreeMap gives deterministic iteration.
    entries: BTreeMap<Dn, Entry>,
    /// Parent DN -> children DNs.
    children: BTreeMap<Dn, BTreeSet<Dn>>,
    /// Bumped on every (potential) mutation so callers can cache derived
    /// results — e.g. materialized search responses — keyed on it.
    generation: u64,
}

impl Dit {
    /// Create a DIT with the given suffix; the suffix entry is created as
    /// a placeholder.
    pub fn new(suffix: Dn) -> Self {
        let mut entries = BTreeMap::new();
        let mut root = Entry::new(suffix.clone());
        root.add("objectclass", "top");
        entries.insert(suffix.clone(), root);
        Dit {
            suffix,
            entries,
            children: BTreeMap::new(),
            generation: 0,
        }
    }

    pub fn suffix(&self) -> &Dn {
        &self.suffix
    }

    /// A counter that changes whenever the tree may have changed.  Two
    /// equal generations guarantee identical search results.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of entries (including the suffix placeholder).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a new entry; its parent must already exist.
    pub fn add(&mut self, entry: Entry) -> Result<(), DitError> {
        let dn = entry.dn.clone();
        if !dn.is_under(&self.suffix) {
            return Err(DitError::NotUnderSuffix(dn));
        }
        if self.entries.contains_key(&dn) {
            return Err(DitError::Duplicate(dn));
        }
        let parent = dn.parent().expect("entry under suffix has a parent");
        if !self.entries.contains_key(&parent) {
            return Err(DitError::NoParent(dn));
        }
        self.children.entry(parent).or_default().insert(dn.clone());
        self.entries.insert(dn, entry);
        self.generation += 1;
        Ok(())
    }

    /// Insert, creating any missing intermediate entries as placeholders.
    pub fn add_with_parents(&mut self, entry: Entry) -> Result<(), DitError> {
        let dn = entry.dn.clone();
        if !dn.is_under(&self.suffix) {
            return Err(DitError::NotUnderSuffix(dn));
        }
        // Build the chain of missing ancestors (closest to suffix first).
        let mut chain = Vec::new();
        let mut cur = dn.parent();
        while let Some(p) = cur {
            if p == self.suffix || self.entries.contains_key(&p) {
                break;
            }
            chain.push(p.clone());
            cur = p.parent();
        }
        for p in chain.into_iter().rev() {
            let mut placeholder = Entry::new(p.clone());
            placeholder.add("objectclass", "top");
            self.add(placeholder)?;
        }
        self.add(entry)
    }

    /// Replace an existing entry's attributes (same DN), or insert it.
    pub fn upsert(&mut self, entry: Entry) -> Result<(), DitError> {
        match self.entries.get_mut(&entry.dn) {
            Some(slot) => {
                *slot = entry;
                self.generation += 1;
                Ok(())
            }
            None => self.add_with_parents(entry),
        }
    }

    /// Remove an entry and its whole subtree; returns how many entries
    /// were removed.
    pub fn remove_subtree(&mut self, dn: &Dn) -> Result<usize, DitError> {
        if !self.entries.contains_key(dn) {
            return Err(DitError::NoSuchEntry(dn.clone()));
        }
        let mut stack = vec![dn.clone()];
        let mut removed = 0;
        while let Some(cur) = stack.pop() {
            if let Some(kids) = self.children.remove(&cur) {
                stack.extend(kids);
            }
            if self.entries.remove(&cur).is_some() {
                removed += 1;
            }
        }
        if let Some(parent) = dn.parent() {
            if let Some(sibs) = self.children.get_mut(&parent) {
                sibs.remove(dn);
            }
        }
        self.generation += 1;
        Ok(removed)
    }

    pub fn get(&self, dn: &Dn) -> Option<&Entry> {
        self.entries.get(dn)
    }

    pub fn get_mut(&mut self, dn: &Dn) -> Option<&mut Entry> {
        // The caller holds a mutable handle: assume the entry changes.
        self.generation += 1;
        self.entries.get_mut(dn)
    }

    /// LDAP search: entries in `scope` of `base` matching `filter`, in DN
    /// order.
    pub fn search(&self, base: &Dn, scope: Scope, filter: &Filter) -> Vec<&Entry> {
        let mut out = Vec::new();
        match scope {
            Scope::Base => {
                if let Some(e) = self.entries.get(base) {
                    if filter.matches(e) {
                        out.push(e);
                    }
                }
            }
            Scope::One => {
                if let Some(kids) = self.children.get(base) {
                    for dn in kids {
                        let e = &self.entries[dn];
                        if filter.matches(e) {
                            out.push(e);
                        }
                    }
                }
            }
            Scope::Sub => {
                // Every stored entry is connected to the suffix through
                // the child index (`add` requires the parent, removal is
                // whole-subtree), so a Sub search from the suffix is the
                // whole map in key order — no walk, no sort, no clones.
                if *base == self.suffix {
                    out.extend(self.entries.values().filter(|e| filter.matches(e)));
                } else {
                    // BTreeMap ordering doesn't group subtrees (DNs sort
                    // lexicographically by leading RDN), so walk the
                    // child index, collecting borrowed entries.
                    let mut stack = vec![base];
                    let mut hits: Vec<&Entry> = Vec::new();
                    while let Some(cur) = stack.pop() {
                        if let Some(e) = self.entries.get(cur) {
                            hits.push(e);
                        }
                        if let Some(kids) = self.children.get(cur) {
                            stack.extend(kids.iter());
                        }
                    }
                    hits.sort_by(|a, b| a.dn.cmp(&b.dn));
                    out.extend(hits.into_iter().filter(|e| filter.matches(e)));
                }
            }
        }
        out
    }

    /// The pre-optimization `search` (DN-cloning subtree walk), kept as
    /// the differential oracle for the fast path above.
    #[cfg(feature = "reference-kernel")]
    pub fn search_reference(&self, base: &Dn, scope: Scope, filter: &Filter) -> Vec<&Entry> {
        let mut out = Vec::new();
        match scope {
            Scope::Base | Scope::One => return self.search(base, scope, filter),
            Scope::Sub => {
                let mut stack = vec![base.clone()];
                let mut dns = Vec::new();
                while let Some(cur) = stack.pop() {
                    if self.entries.contains_key(&cur) {
                        dns.push(cur.clone());
                    }
                    if let Some(kids) = self.children.get(&cur) {
                        stack.extend(kids.iter().cloned());
                    }
                }
                dns.sort();
                for dn in dns {
                    let e = &self.entries[&dn];
                    if filter.matches(e) {
                        out.push(e);
                    }
                }
            }
        }
        out
    }

    /// Count of entries examined by a `Sub` search from the suffix — the
    /// work a filter evaluation must do (for simulated CPU cost).
    pub fn scan_size(&self) -> usize {
        self.entries.len()
    }

    /// Total wire size of all entries under `base` (Sub scope, any filter).
    pub fn subtree_wire_size(&self, base: &Dn) -> u64 {
        self.search(base, Scope::Sub, &Filter::any())
            .iter()
            .map(|e| e.wire_size())
            .sum()
    }

    /// Iterate all entries in DN order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dit() -> Dit {
        let mut d = Dit::new(Dn::parse("o=grid").unwrap());
        let mut vo = Entry::new(Dn::parse("mds-vo-name=local, o=grid").unwrap());
        vo.add("objectclass", "MdsVo");
        d.add(vo).unwrap();
        for host in ["lucky3", "lucky4", "lucky7"] {
            let mut e = Entry::new(
                Dn::parse(&format!("mds-host-hn={host}, mds-vo-name=local, o=grid")).unwrap(),
            );
            e.add("objectclass", "MdsHost").add("Mds-Host-hn", host);
            d.add(e).unwrap();
        }
        let mut cpu = Entry::new(
            Dn::parse("mds-device-group-name=cpu, mds-host-hn=lucky7, mds-vo-name=local, o=grid")
                .unwrap(),
        );
        cpu.add("objectclass", "MdsCpu")
            .add("Mds-Cpu-Total-count", "2");
        d.add(cpu).unwrap();
        d
    }

    #[test]
    fn build_and_count() {
        let d = dit();
        assert_eq!(d.len(), 6); // suffix + vo + 3 hosts + cpu
    }

    #[test]
    fn add_requires_parent() {
        let mut d = Dit::new(Dn::parse("o=grid").unwrap());
        let orphan = Entry::new(Dn::parse("a=1, b=2, o=grid").unwrap());
        assert!(matches!(d.add(orphan.clone()), Err(DitError::NoParent(_))));
        d.add_with_parents(orphan).unwrap();
        assert_eq!(d.len(), 3);
        // Outside the suffix.
        let alien = Entry::new(Dn::parse("x=1, o=elsewhere").unwrap());
        assert!(matches!(d.add(alien), Err(DitError::NotUnderSuffix(_))));
    }

    #[test]
    fn duplicate_rejected_upsert_replaces() {
        let mut d = dit();
        let dup = Entry::new(Dn::parse("mds-vo-name=local, o=grid").unwrap());
        assert!(matches!(d.add(dup.clone()), Err(DitError::Duplicate(_))));
        let mut replacement = dup;
        replacement.add("objectclass", "MdsVoUpdated");
        d.upsert(replacement).unwrap();
        assert!(d
            .get(&Dn::parse("mds-vo-name=local, o=grid").unwrap())
            .unwrap()
            .is_objectclass("MdsVoUpdated"));
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn scoped_searches() {
        let d = dit();
        let base = Dn::parse("mds-vo-name=local, o=grid").unwrap();
        let any = Filter::any();
        assert_eq!(d.search(&base, Scope::Base, &any).len(), 1);
        assert_eq!(d.search(&base, Scope::One, &any).len(), 3);
        assert_eq!(d.search(&base, Scope::Sub, &any).len(), 5); // vo + 3 hosts + cpu
        let f = Filter::parse("(objectclass=mdshost)").unwrap();
        assert_eq!(d.search(&base, Scope::Sub, &f).len(), 3);
        let f = Filter::parse("(mds-cpu-total-count>=2)").unwrap();
        assert_eq!(d.search(&base, Scope::Sub, &f).len(), 1);
    }

    #[test]
    fn search_from_missing_base_is_empty() {
        let d = dit();
        let missing = Dn::parse("mds-vo-name=nowhere, o=grid").unwrap();
        assert!(d.search(&missing, Scope::Sub, &Filter::any()).is_empty());
        assert!(d.search(&missing, Scope::Base, &Filter::any()).is_empty());
    }

    #[test]
    fn remove_subtree_cascades() {
        let mut d = dit();
        let host = Dn::parse("mds-host-hn=lucky7, mds-vo-name=local, o=grid").unwrap();
        let removed = d.remove_subtree(&host).unwrap();
        assert_eq!(removed, 2); // host + its cpu child
        assert_eq!(d.len(), 4);
        assert!(d.get(&host).is_none());
        assert!(matches!(
            d.remove_subtree(&host),
            Err(DitError::NoSuchEntry(_))
        ));
        // Sibling hosts untouched.
        let f = Filter::parse("(objectclass=mdshost)").unwrap();
        assert_eq!(d.search(d.suffix(), Scope::Sub, &f).len(), 2);
    }

    #[test]
    fn subtree_wire_size_positive() {
        let d = dit();
        let total = d.subtree_wire_size(d.suffix());
        assert!(total > 100, "wire size {total}");
        let host = Dn::parse("mds-host-hn=lucky7, mds-vo-name=local, o=grid").unwrap();
        assert!(d.subtree_wire_size(&host) < total);
    }
}
