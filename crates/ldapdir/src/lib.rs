//! # ldapdir — an in-memory LDAP directory
//!
//! The Globus MDS 2.1 is built on OpenLDAP: a GRIS is an LDAP server whose
//! entries come from information providers, and a GIIS aggregates
//! registered GRIS subtrees under its own suffix.  This crate implements
//! the data model MDS relies on:
//!
//! * [`Dn`] — distinguished names with normalised, case-insensitive RDNs;
//! * [`Entry`] — multi-valued attribute records;
//! * [`Filter`] — RFC 4515 search filters (`(&(objectclass=MdsHost)
//!   (mds-cpu-total>=2))`) with presence, substring and ordering matches;
//! * [`Dit`] — the directory information tree with `base`/`one`/`sub`
//!   scoped search and LDIF rendering (used to compute realistic wire
//!   sizes for the simulated responses).
//!
//! ```
//! use ldapdir::{Dit, Dn, Entry, Filter, Scope};
//!
//! let mut dit = Dit::new(Dn::parse("o=grid").unwrap());
//! let mut e = Entry::new(Dn::parse("Mds-Host-hn=lucky7, o=grid").unwrap());
//! e.add("objectclass", "MdsHost");
//! e.add("Mds-Cpu-Total-count", "2");
//! dit.add(e).unwrap();
//!
//! let f = Filter::parse("(&(objectclass=mdshost)(mds-cpu-total-count>=2))").unwrap();
//! let hits = dit.search(&Dn::parse("o=grid").unwrap(), Scope::Sub, &f);
//! assert_eq!(hits.len(), 1);
//! ```

pub mod dit;
pub mod dn;
pub mod entry;
pub mod filter;
pub mod ldif;
#[cfg(feature = "reference-kernel")]
pub mod reference;

pub use dit::{Dit, DitError, Scope};
pub use dn::{Dn, DnError, Rdn};
pub use entry::Entry;
pub use filter::{Filter, FilterError};
pub use ldif::{entries_to_ldif, entry_to_ldif, parse_ldif, LdifError};
