//! Distinguished names.
//!
//! A DN is a sequence of relative distinguished names (RDNs), most
//! specific first: `Mds-Host-hn=lucky7, Mds-Vo-name=local, o=grid`.
//! Attribute types and values are matched case-insensitively (LDAP
//! caseIgnoreMatch, which is what MDS schema attributes use).  Multi-valued
//! RDNs (`a=1+b=2`) are not supported — MDS does not use them.
//!
//! Both sides of every RDN are interned [`Sym`]s and the component list
//! is a shared `Rc` slice, so `Dn::clone` — which the request path runs
//! once per message and once per returned entry — performs no heap
//! allocation at all.  `Sym` comparison resolves to string comparison,
//! so DNs sort exactly as their string forms did; that ordering is
//! load-bearing (DN-ordered result assembly feeds size-capped GIIS
//! payloads and the pinned figure CSVs).

use gintern::Sym;
use std::borrow::Cow;
use std::fmt;
use std::rc::Rc;

/// Error parsing a DN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnError(pub String);

impl fmt::Display for DnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DN: {}", self.0)
    }
}

impl std::error::Error for DnError {}

/// Lowercase only when needed; DN components flowing through the query
/// path are lowercase already.
fn lc(s: &str) -> Cow<'_, str> {
    if s.bytes().any(|b| b.is_ascii_uppercase()) {
        Cow::Owned(s.to_ascii_lowercase())
    } else {
        Cow::Borrowed(s)
    }
}

/// One `type=value` component.  Both sides are lowercased interned
/// symbols: equality and hashing compare symbol ids, ordering compares
/// the resolved strings (see `gintern`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rdn {
    /// Lowercased attribute type.
    pub attr: Sym,
    /// Lowercased value (LDAP caseIgnore semantics).
    pub value: Sym,
}

impl Rdn {
    /// Intern a component, lowercasing as needed.
    pub fn new(attr: &str, value: &str) -> Rdn {
        Rdn {
            attr: gintern::intern(lc(attr).as_ref()),
            value: gintern::intern(lc(value).as_ref()),
        }
    }
}

impl PartialOrd for Rdn {
    fn partial_cmp(&self, other: &Rdn) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rdn {
    fn cmp(&self, other: &Rdn) -> std::cmp::Ordering {
        self.attr
            .cmp(&other.attr)
            .then_with(|| self.value.cmp(&other.value))
    }
}

impl fmt::Display for Rdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.attr, self.value)
    }
}

/// A distinguished name (most-specific RDN first).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Dn {
    rdns: Rc<[Rdn]>,
}

impl Dn {
    /// The empty (root) DN.
    pub fn root() -> Dn {
        Dn::default()
    }

    fn from_vec(rdns: Vec<Rdn>) -> Dn {
        Dn { rdns: rdns.into() }
    }

    /// Parse `a=x, b=y, c=z`.
    pub fn parse(s: &str) -> Result<Dn, DnError> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Dn::root());
        }
        let mut rdns = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            let Some(eq) = part.find('=') else {
                return Err(DnError(format!("RDN {part:?} lacks '='")));
            };
            let attr = part[..eq].trim();
            let value = part[eq + 1..].trim();
            if attr.is_empty() || value.is_empty() {
                return Err(DnError(format!("empty attribute or value in {part:?}")));
            }
            rdns.push(Rdn::new(attr, value));
        }
        Ok(Dn::from_vec(rdns))
    }

    /// Number of RDN components.
    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    pub fn is_root(&self) -> bool {
        self.rdns.is_empty()
    }

    /// The leading (most specific) RDN.
    pub fn rdn(&self) -> Option<&Rdn> {
        self.rdns.first()
    }

    /// Parent DN (everything but the leading RDN).
    pub fn parent(&self) -> Option<Dn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(Dn {
                rdns: self.rdns[1..].into(),
            })
        }
    }

    /// Prepend an RDN, producing a child DN.
    pub fn child(&self, attr: &str, value: &str) -> Dn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push(Rdn::new(attr, value));
        rdns.extend(self.rdns.iter().copied());
        Dn::from_vec(rdns)
    }

    /// Is `self` equal to or below `ancestor`?
    pub fn is_under(&self, ancestor: &Dn) -> bool {
        let n = ancestor.rdns.len();
        if self.rdns.len() < n {
            return false;
        }
        self.rdns[self.rdns.len() - n..] == ancestor.rdns[..]
    }

    /// Is `self` an immediate child of `parent`?
    pub fn is_child_of(&self, parent: &Dn) -> bool {
        self.rdns.len() == parent.rdns.len() + 1 && self.is_under(parent)
    }

    /// The trailing `n` RDNs of this DN (its suffix of depth `n`), or
    /// `None` when the DN is shorter.
    pub fn suffix_of_depth(&self, n: usize) -> Option<Dn> {
        Some(Dn {
            rdns: self.suffix_slice(n)?.into(),
        })
    }

    /// Borrowed view of the trailing `n` RDNs — the allocation-free
    /// counterpart of [`Dn::suffix_of_depth`] for suffix lookups on the
    /// merge hot path.
    pub fn suffix_slice(&self, n: usize) -> Option<&[Rdn]> {
        if self.rdns.len() < n {
            return None;
        }
        Some(&self.rdns[self.rdns.len() - n..])
    }

    /// The RDN components, most specific first.
    pub fn rdns(&self) -> &[Rdn] {
        &self.rdns
    }

    /// Length in bytes of the `Display` rendering, without building the
    /// string (wire-size accounting runs this once per returned entry).
    pub fn display_len(&self) -> usize {
        let seps = 2 * self.rdns.len().saturating_sub(1);
        self.rdns
            .iter()
            .map(|r| r.attr.len() + 1 + r.value.len())
            .sum::<usize>()
            + seps
    }

    /// Re-root: replace the `old_suffix` of this DN with `new_suffix`
    /// (used when a GIIS grafts a registered GRIS subtree under its own
    /// suffix).  Returns `None` when `self` is not under `old_suffix`.
    pub fn rebase(&self, old_suffix: &Dn, new_suffix: &Dn) -> Option<Dn> {
        if !self.is_under(old_suffix) {
            return None;
        }
        let keep = self.rdns.len() - old_suffix.rdns.len();
        let mut rdns = self.rdns[..keep].to_vec();
        rdns.extend(new_suffix.rdns.iter().copied());
        Some(Dn::from_vec(rdns))
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rdn) in self.rdns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{rdn}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let dn = Dn::parse("Mds-Host-hn=Lucky7, Mds-Vo-name=Local, o=Grid").unwrap();
        assert_eq!(dn.depth(), 3);
        assert_eq!(
            dn.to_string(),
            "mds-host-hn=lucky7, mds-vo-name=local, o=grid"
        );
        // Round trip.
        assert_eq!(Dn::parse(&dn.to_string()).unwrap(), dn);
    }

    #[test]
    fn case_insensitive_equality() {
        let a = Dn::parse("O=Grid").unwrap();
        let b = Dn::parse("o=grid").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parent_child_relations() {
        let root = Dn::parse("o=grid").unwrap();
        let vo = root.child("Mds-Vo-name", "local");
        let host = vo.child("Mds-Host-hn", "lucky7");
        assert_eq!(host.depth(), 3);
        assert_eq!(host.parent().unwrap(), vo);
        assert!(host.is_under(&root));
        assert!(host.is_under(&vo));
        assert!(host.is_under(&host));
        assert!(!vo.is_under(&host));
        assert!(host.is_child_of(&vo));
        assert!(!host.is_child_of(&root));
        assert_eq!(root.parent().unwrap(), Dn::root());
        assert!(Dn::root().parent().is_none());
    }

    #[test]
    fn everything_is_under_root() {
        let dn = Dn::parse("a=1, b=2").unwrap();
        assert!(dn.is_under(&Dn::root()));
    }

    #[test]
    fn rebase_moves_subtrees() {
        let gris_root = Dn::parse("Mds-Vo-name=local, o=grid").unwrap();
        let entry = Dn::parse("Mds-Host-hn=lucky7, Mds-Vo-name=local, o=grid").unwrap();
        let giis_root = Dn::parse("Mds-Vo-name=site, o=giis").unwrap();
        let rebased = entry.rebase(&gris_root, &giis_root).unwrap();
        assert_eq!(
            rebased.to_string(),
            "mds-host-hn=lucky7, mds-vo-name=site, o=giis"
        );
        // Not under the suffix -> None.
        let other = Dn::parse("x=1, o=elsewhere").unwrap();
        assert!(other.rebase(&gris_root, &giis_root).is_none());
    }

    #[test]
    fn parse_errors() {
        assert!(Dn::parse("no-equals").is_err());
        assert!(Dn::parse("=value").is_err());
        assert!(Dn::parse("attr=").is_err());
        assert!(Dn::parse("a=1,,b=2").is_err());
    }

    #[test]
    fn display_len_matches_rendering() {
        for s in [
            "",
            "o=grid",
            "a=1, b=2, o=grid",
            "Mds-Host-hn=Lucky7, o=Grid",
        ] {
            let dn = Dn::parse(s).unwrap();
            assert_eq!(dn.display_len(), dn.to_string().len(), "{s:?}");
        }
    }

    #[test]
    fn suffix_slice_mirrors_suffix_of_depth() {
        let dn = Dn::parse("a=1, b=2, o=grid").unwrap();
        for n in 0..=4 {
            assert_eq!(
                dn.suffix_slice(n).map(|s| s.to_vec()),
                dn.suffix_of_depth(n).map(|d| d.rdns.to_vec())
            );
        }
    }

    #[test]
    fn empty_is_root() {
        assert!(Dn::parse("").unwrap().is_root());
        assert!(Dn::parse("   ").unwrap().is_root());
    }

    #[test]
    fn ordering_matches_string_forms() {
        // Interning order must not leak into DN ordering: build DNs in
        // an order unrelated to their lexicographic rank.
        let raw = [
            "mds-host-hn=zz, o=grid",
            "mds-host-hn=aa, o=grid",
            "mds-vo-name=local, o=grid",
            "a=1",
            "o=grid",
        ];
        let mut dns: Vec<Dn> = raw.iter().map(|s| Dn::parse(s).unwrap()).collect();
        dns.sort();
        let mut strs: Vec<String> = raw.iter().map(|s| s.to_string()).collect();
        // The string form sorts component-wise like the structural
        // form for these single-attr-per-level DNs.
        strs.sort_by(|a, b| {
            let pa: Vec<&str> = a.split(", ").collect();
            let pb: Vec<&str> = b.split(", ").collect();
            pa.cmp(&pb)
        });
        assert_eq!(
            dns.iter().map(Dn::to_string).collect::<Vec<_>>(),
            strs,
            "DN order must match component-wise string order"
        );
    }

    #[test]
    fn clones_share_components() {
        let dn = Dn::parse("a=1, o=grid").unwrap();
        let copy = dn.clone();
        assert!(Rc::ptr_eq(&dn.rdns, &copy.rdns));
    }
}
