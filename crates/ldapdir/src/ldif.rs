//! LDIF rendering and parsing of entries and search results.

use crate::dn::Dn;
use crate::entry::Entry;
use std::fmt;
use std::fmt::Write;

/// LDIF parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdifError(pub String);

impl fmt::Display for LdifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid LDIF: {}", self.0)
    }
}

impl std::error::Error for LdifError {}

/// Render one entry in LDIF.
pub fn entry_to_ldif(e: &Entry) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "dn: {}", e.dn);
    for (attr, values) in e.iter() {
        for v in values {
            let _ = writeln!(s, "{attr}: {v}");
        }
    }
    s
}

/// Render a search result: blank-line separated entries.
pub fn entries_to_ldif<'a>(entries: impl IntoIterator<Item = &'a Entry>) -> String {
    let mut s = String::new();
    for e in entries {
        s.push_str(&entry_to_ldif(e));
        s.push('\n');
    }
    s
}

/// Parse blank-line separated LDIF entries (the subset `entry_to_ldif`
/// produces: `dn:` first, then `attr: value` lines; `#` comments allowed).
pub fn parse_ldif(input: &str) -> Result<Vec<Entry>, LdifError> {
    let mut entries = Vec::new();
    let mut current: Option<Entry> = None;
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim_end();
        if line.trim().is_empty() {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((attr, value)) = line.split_once(':') else {
            return Err(LdifError(format!("line {}: missing ':'", lineno + 1)));
        };
        let attr = attr.trim();
        let value = value.trim();
        if attr.eq_ignore_ascii_case("dn") {
            if current.is_some() {
                return Err(LdifError(format!(
                    "line {}: dn inside an entry (missing blank separator?)",
                    lineno + 1
                )));
            }
            let dn =
                Dn::parse(value).map_err(|e| LdifError(format!("line {}: {e}", lineno + 1)))?;
            current = Some(Entry::new(dn));
        } else {
            let Some(e) = current.as_mut() else {
                return Err(LdifError(format!(
                    "line {}: attribute before any dn",
                    lineno + 1
                )));
            };
            e.add(attr, value);
        }
    }
    if let Some(e) = current.take() {
        entries.push(e);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Dn;

    #[test]
    fn renders_dn_and_attrs() {
        let mut e = Entry::new(Dn::parse("a=1, o=grid").unwrap());
        e.add("objectclass", "top").add("x", "1").add("x", "2");
        let ldif = entry_to_ldif(&e);
        assert!(ldif.starts_with("dn: a=1, o=grid\n"));
        assert!(ldif.contains("objectclass: top\n"));
        assert!(ldif.contains("x: 1\n"));
        assert!(ldif.contains("x: 2\n"));
    }

    #[test]
    fn multiple_entries_blank_separated() {
        let a = Entry::new(Dn::parse("a=1").unwrap());
        let b = Entry::new(Dn::parse("b=2").unwrap());
        let out = entries_to_ldif([&a, &b]);
        assert_eq!(out.matches("dn: ").count(), 2);
        assert!(out.contains("\n\n"));
    }

    #[test]
    fn parse_round_trip() {
        let mut a = Entry::new(Dn::parse("a=1, o=grid").unwrap());
        a.add("objectclass", "top").add("x", "1").add("x", "2");
        let mut b = Entry::new(Dn::parse("b=2, o=grid").unwrap());
        b.add("objectclass", "thing");
        let text = entries_to_ldif([&a, &b]);
        let parsed = parse_ldif(&text).unwrap();
        assert_eq!(parsed, vec![a, b]);
    }

    #[test]
    fn parse_handles_comments_and_blank_runs() {
        let text = "# header


dn: x=1
attr: v


# trailing
";
        let parsed = parse_ldif(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].first("attr"), Some("v"));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_ldif(
            "attr: before-dn
"
        )
        .is_err());
        assert!(parse_ldif(
            "dn: x=1
no colon here
"
        )
        .is_err());
        assert!(parse_ldif(
            "dn: x=1
dn: y=2
"
        )
        .is_err());
        assert!(parse_ldif(
            "dn: ===
"
        )
        .is_err());
    }

    #[test]
    fn ldif_length_close_to_wire_size() {
        let mut e = Entry::new(Dn::parse("host=lucky7, o=grid").unwrap());
        for i in 0..10 {
            e.add("attr", format!("value-{i}"));
        }
        let ldif = entry_to_ldif(&e);
        let wire = e.wire_size() as usize;
        // wire_size is an estimate of the LDIF length; keep them within 20%.
        let diff = ldif.len().abs_diff(wire);
        assert!(
            diff * 5 <= ldif.len(),
            "ldif {} vs wire {}",
            ldif.len(),
            wire
        );
    }
}
