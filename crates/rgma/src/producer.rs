//! Producer definitions.
//!
//! An R-GMA *Producer* advertises one table and publishes tuples into it
//! through its hosting ProducerServlet.  The paper's deployments run "10
//! local Producers" per ProducerServlet, scaled up to 90 in Experiment
//! Set 3.

use simcore::SimDuration;

/// Definition of one producer.
pub struct ProducerSpec {
    /// The advertised table.
    pub table: String,
    /// Fixed-attribute predicate stored in the Registry (e.g.
    /// `site='anl'`).
    pub predicate: String,
    /// How often a fresh tuple is published.
    pub publish_period: SimDuration,
    /// Number of distinct entities (rows) this producer maintains — a
    /// LatestProducer keeps one current row per entity.
    pub entities: usize,
}

/// Build `n` producers in the spirit of an R-GMA site install: host-level
/// metric tables, one per producer.
pub fn default_producers(site: &str, n: usize) -> Vec<ProducerSpec> {
    let kinds = [
        "cpuload",
        "memory",
        "disk",
        "network",
        "processes",
        "jobs",
        "queue",
        "bandwidth",
        "latency",
        "services",
    ];
    (0..n)
        .map(|i| {
            let kind: String = if i < kinds.len() {
                kinds[i].to_string()
            } else {
                format!("metric{i}")
            };
            ProducerSpec {
                table: kind,
                predicate: format!("site='{site}'"),
                publish_period: SimDuration::from_secs(30),
                entities: 8,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_distinct_tables() {
        let ps = default_producers("anl", 10);
        assert_eq!(ps.len(), 10);
        let tables: std::collections::BTreeSet<_> = ps.iter().map(|p| p.table.clone()).collect();
        assert_eq!(tables.len(), 10);
        let ps90 = default_producers("anl", 90);
        assert_eq!(ps90.len(), 90);
        assert_eq!(ps90[89].table, "metric89");
    }
}
