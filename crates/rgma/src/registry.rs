//! The R-GMA Registry.
//!
//! "The RDBMS holds the information for all the Producers (the registered
//! table name, the identity, and the values of those fixed attributes)."
//! The Registry is a Java servlet in front of that RDBMS; consumers'
//! servlets ask it which producers can answer a table, producers register
//! through their servlet.  The whole database sits behind one connection
//! lock, and every request pays the JVM dispatch cost — R-GMA's
//! scalability profile in the paper's Experiment Set 2.

use crate::proto::{ProducerList, RgmaMsg};
use crate::{DB_FIXED_CPU_US, JVM_DISPATCH_CPU_US, ROW_SCAN_CPU_US, SQL_PARSE_CPU_US};
use relsql::{Database, SqlValue};
use simnet::{LockKey, Payload, Plan, Service, SvcCx, SvcKey};
use std::collections::HashMap;

/// The Registry service.
pub struct Registry {
    db: Database,
    /// Registered servlet keys by numeric id (SQL stores the id).
    servlets: HashMap<i64, SvcKey>,
    /// Existing registrations by (servlet, table), so a producer that
    /// re-registers after a crash/restart refreshes its row instead of
    /// accumulating duplicates (consumers would double-count it).
    by_owner: HashMap<(SvcKey, String), i64>,
    /// Lookup SQL per table name: consumers ask for the same handful of
    /// tables over and over, and a stable text also hits the relsql
    /// statement cache.
    lookup_sql: HashMap<String, String>,
    next_id: i64,
    /// The RDBMS connection lock (registered with the world at deploy
    /// time).
    pub db_lock: Option<LockKey>,
    /// Counters.
    pub lookups: u64,
    pub registrations: u64,
}

impl Registry {
    pub fn new() -> Registry {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE producers (id INT PRIMARY KEY, servlet INT, tablename TEXT, predicate TEXT)",
        )
        .expect("schema");
        Registry {
            db,
            servlets: HashMap::new(),
            by_owner: HashMap::new(),
            lookup_sql: HashMap::new(),
            next_id: 1,
            db_lock: None,
            lookups: 0,
            registrations: 0,
        }
    }

    /// Number of registered producers.
    pub fn producer_count(&mut self) -> usize {
        self.db
            .execute("SELECT COUNT(*) FROM producers")
            .map(|r| match r.rows[0][0] {
                SqlValue::Int(n) => n as usize,
                _ => 0,
            })
            .unwrap_or(0)
    }

    fn locked(&self, inner: Plan) -> Plan {
        match self.db_lock {
            Some(l) => {
                let mut p = Plan::new().lock(l);
                p.steps.extend(inner.steps);
                // Insert unlock before the final Reply/Done.
                let at = p
                    .steps
                    .iter()
                    .position(|s| matches!(s, simnet::Step::Reply { .. }))
                    .unwrap_or(p.steps.len());
                p.steps.insert(at, simnet::Step::Unlock(l));
                p
            }
            None => inner,
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Service for Registry {
    fn handle(&mut self, req: Payload, _cx: &mut SvcCx) -> Plan {
        let msg = req.downcast::<RgmaMsg>().expect("Registry expects RgmaMsg");
        match *msg {
            RgmaMsg::RegistryRegister {
                servlet,
                table,
                predicate,
            } => {
                self.registrations += 1;
                if let Some(&id) = self.by_owner.get(&(servlet, table.clone())) {
                    // Idempotent re-registration (producer restart): the
                    // row is already there; just make sure the servlet key
                    // is current.  Costs the same DB access.
                    self.servlets.insert(id, servlet);
                } else {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.servlets.insert(id, servlet);
                    self.by_owner.insert((servlet, table.clone()), id);
                    let table = table.replace('\'', "''");
                    let predicate = predicate.replace('\'', "''");
                    self.db
                        .execute(&format!(
                            "INSERT INTO producers VALUES ({id}, {}, '{table}', '{predicate}')",
                            id // servlet id stands in for the URL
                        ))
                        .expect("insert registration");
                }
                // The JVM/servlet work is parallel; only the RDBMS access
                // serialises.
                let inner = Plan::new().cpu(DB_FIXED_CPU_US).reply((), 300);
                let mut plan = Plan::new().cpu(JVM_DISPATCH_CPU_US);
                plan.steps.extend(self.locked(inner).steps);
                plan
            }
            RgmaMsg::RegistryLookup { table } => {
                self.lookups += 1;
                _cx.obs.incr("rgma.registry_lookups", 1);
                let sql = self.lookup_sql.entry(table).or_insert_with_key(|t| {
                    let esc = t.replace('\'', "''");
                    format!("SELECT id FROM producers WHERE tablename = '{esc}'")
                });
                let r = self.db.execute(sql).expect("lookup");
                let producers: Vec<SvcKey> = r
                    .rows
                    .iter()
                    .filter_map(|row| match row[0] {
                        SqlValue::Int(id) => self.servlets.get(&id).copied(),
                        _ => None,
                    })
                    .collect();
                let bytes = 300 + producers.len() as u64 * 80;
                let scan_cost = DB_FIXED_CPU_US + ROW_SCAN_CPU_US * r.scanned as f64;
                let inner = Plan::new()
                    .cpu(scan_cost)
                    .reply(ProducerList { producers, bytes }, bytes);
                let mut plan = Plan::new().cpu(JVM_DISPATCH_CPU_US + SQL_PARSE_CPU_US);
                plan.steps.extend(self.locked(inner).steps);
                plan
            }
            other => {
                debug_assert!(false, "unexpected message ({} bytes)", other.wire_size());
                Plan::reply_empty()
            }
        }
    }

    fn name(&self) -> &str {
        "rgma-registry"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_then_lookup() {
        let mut reg = Registry::new();
        // Drive handle() directly through a fake context-free path: use
        // the service API via a minimal world in servlets.rs tests; here
        // exercise the DB logic synchronously.
        let dummy = simcore::slab::SlabKey { index: 7, gen: 0 };
        let mut actions = Vec::new();
        let mut rng = simcore::SimRng::new(1);
        let mut obs = simnet::Obs::off();
        let mut cx = make_cx(&mut actions, &mut rng, &mut obs);
        let plan = reg.handle(
            Box::new(RgmaMsg::RegistryRegister {
                servlet: dummy,
                table: "cpuload".into(),
                predicate: "site='anl'".into(),
            }),
            &mut cx,
        );
        assert!(!plan.steps.is_empty());
        assert_eq!(reg.producer_count(), 1);
        let plan = reg.handle(
            Box::new(RgmaMsg::RegistryLookup {
                table: "cpuload".into(),
            }),
            &mut cx,
        );
        // Reply carries the producer list.
        let reply = plan
            .steps
            .into_iter()
            .find_map(|s| match s {
                simnet::Step::Reply { payload, .. } => Some(payload),
                _ => None,
            })
            .expect("reply");
        let list = reply.downcast::<ProducerList>().unwrap();
        assert_eq!(list.producers, vec![dummy]);
        // Unknown table -> empty list.
        let plan = reg.handle(
            Box::new(RgmaMsg::RegistryLookup {
                table: "nope".into(),
            }),
            &mut cx,
        );
        let reply = plan
            .steps
            .into_iter()
            .find_map(|s| match s {
                simnet::Step::Reply { payload, .. } => Some(payload),
                _ => None,
            })
            .unwrap();
        assert!(reply
            .downcast::<ProducerList>()
            .unwrap()
            .producers
            .is_empty());
        assert_eq!(reg.lookups, 2);
    }

    #[test]
    fn reregistration_is_idempotent() {
        let mut reg = Registry::new();
        let dummy = simcore::slab::SlabKey { index: 7, gen: 0 };
        let mut actions = Vec::new();
        let mut rng = simcore::SimRng::new(1);
        let mut obs = simnet::Obs::off();
        let mut cx = make_cx(&mut actions, &mut rng, &mut obs);
        for _ in 0..3 {
            reg.handle(
                Box::new(RgmaMsg::RegistryRegister {
                    servlet: dummy,
                    table: "cpuload".into(),
                    predicate: "site='anl'".into(),
                }),
                &mut cx,
            );
        }
        // Three heartbeats, one row: lookups must not double-count the
        // producer after a restart.
        assert_eq!(reg.registrations, 3);
        assert_eq!(reg.producer_count(), 1);
        let plan = reg.handle(
            Box::new(RgmaMsg::RegistryLookup {
                table: "cpuload".into(),
            }),
            &mut cx,
        );
        let reply = plan
            .steps
            .into_iter()
            .find_map(|s| match s {
                simnet::Step::Reply { payload, .. } => Some(payload),
                _ => None,
            })
            .expect("reply");
        assert_eq!(reply.downcast::<ProducerList>().unwrap().producers.len(), 1);
        // A different table from the same servlet is a separate row.
        reg.handle(
            Box::new(RgmaMsg::RegistryRegister {
                servlet: dummy,
                table: "memfree".into(),
                predicate: String::new(),
            }),
            &mut cx,
        );
        assert_eq!(reg.producer_count(), 2);
    }

    fn make_cx<'a>(
        actions: &'a mut Vec<simnet::SvcAction>,
        rng: &'a mut simcore::SimRng,
        obs: &'a mut simnet::Obs,
    ) -> SvcCx<'a> {
        // SvcCx fields are crate-private in simnet; go through the public
        // test constructor.
        SvcCx::for_tests(
            simcore::SimTime::ZERO,
            simcore::slab::SlabKey::NULL,
            rng,
            obs,
            actions,
        )
    }
}
