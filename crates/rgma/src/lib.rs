//! # rgma — the Relational Grid Monitoring Architecture (R-GMA 1.18)
//!
//! R-GMA implements the GGF Grid Monitoring Architecture with a
//! relational twist: the whole Grid is presented as one virtual database.
//! The components, all modelled as [`simnet`] services over the
//! [`relsql`] substrate:
//!
//! * **Producers** ([`producer`]): data sources that advertise a table
//!   (name + fixed-attribute predicate) and publish tuples into it.
//! * **ProducerServlet** ([`servlets::ProducerServlet`]): the Java
//!   servlet hosting producers' tuple stores; answers SQL queries against
//!   them and streams tuples to subscribed consumers (the push mode).
//! * **Registry** ([`registry`]): the RDBMS holding every producer's
//!   registration; consumers' servlets consult it to locate producers
//!   for a table.
//! * **ConsumerServlet** ([`servlets::ConsumerServlet`]): executes a
//!   consumer's SQL query by looking up matching producers in the
//!   Registry and merging their answers.
//!
//! Being servlet-based, every request pays a JVM dispatch cost, and the
//! tuple stores sit behind a per-servlet database lock — together these
//! reproduce the linear response-time growth and the modest throughput
//! ceiling the paper measures for R-GMA.

pub mod composite;
pub mod producer;
pub mod proto;
pub mod registry;
pub mod servlets;

pub use composite::CompositeProducer;
pub use producer::ProducerSpec;
pub use proto::{ProducerList, RgmaMsg, SqlResultMsg};
pub use registry::Registry;
pub use servlets::{ConsumerServlet, ProducerServlet, TupleSink};

/// CPU cost of the servlet container dispatching one request (thread
/// allocation, HTTP parsing, JVM overhead) on the reference CPU.
pub const JVM_DISPATCH_CPU_US: f64 = 30_000.0;

/// CPU cost of parsing an SQL statement in the servlet.
pub const SQL_PARSE_CPU_US: f64 = 3_000.0;

/// CPU cost per row examined while executing a query.
pub const ROW_SCAN_CPU_US: f64 = 500.0;

/// Fixed CPU of touching the tuple-store / registry database.
pub const DB_FIXED_CPU_US: f64 = 20_000.0;
